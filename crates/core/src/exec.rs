//! Candidate executions of enhanced litmus tests (ELTs).
//!
//! A [`Execution`] is the paper's *candidate execution*: a program —
//! events placed in program order with ghost attachments — plus the
//! communication choices (`rf`, `co`, and optionally `co_pa`) that pick one
//! dynamic outcome. Everything else in Table I (`fr`, `rf_ptw`, `rf_pa`,
//! `fr_pa`, `fr_va`, `po_loc`, `ppo`, `com`, `ptw_source`, …) is *derived*;
//! see [`crate::derive`].
//!
//! Executions are built with [`EltBuilder`], which enforces the ghost
//! invariants of §III-A at construction time (every write gets its
//! dirty-bit update; walks attach to the access that missed the TLB).

use crate::event::{Event, EventKind};
use crate::ids::{EventId, Pa, ThreadId, Va};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A set of directed event pairs — the concrete value of a relation.
pub type PairSet = BTreeSet<(EventId, EventId)>;

/// A candidate execution of an enhanced litmus test.
///
/// # Examples
///
/// ```
/// use transform_core::exec::EltBuilder;
/// use transform_core::ids::Va;
///
/// // A single-core coherence test: W x = 1; R x = 0 (reads stale).
/// let mut b = EltBuilder::new();
/// let t = b.thread();
/// let (w, _wdb, _ptw) = b.write_walk(t, Va(0));
/// let r = b.read(t, Va(0)); // TLB hit: reuses the walk above
/// let exec = b.build();
/// assert_eq!(exec.events().len(), 4);
/// let _ = (w, r);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Execution {
    pub(crate) events: Vec<Event>,
    pub(crate) num_threads: usize,
    pub(crate) num_vas: usize,
    pub(crate) num_pas: usize,
    /// Per-thread program order over non-ghost events.
    pub(crate) po: Vec<Vec<EventId>>,
    /// ghost → invoker.
    pub(crate) ghost_invoker: BTreeMap<EventId, EventId>,
    /// read → sourcing write (absent ⇒ reads the initial state).
    pub(crate) rf: BTreeMap<EventId, EventId>,
    /// Strict total order per physical location over writes (all pairs).
    pub(crate) co: PairSet,
    /// Read → write pairs of read-modify-write operations.
    pub(crate) rmw: PairSet,
    /// PTE write → the INVLPGs it invokes (one per core).
    pub(crate) remap: PairSet,
    /// Optional explicit alias-creation order (all pairs, per target PA).
    /// When absent, a deterministic default is derived; see
    /// [`crate::derive`].
    pub(crate) co_pa: Option<PairSet>,
}

impl Execution {
    /// All events, indexed by [`EventId`].
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Number of threads (cores).
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Number of distinct VAs referenced.
    pub fn num_vas(&self) -> usize {
        self.num_vas
    }

    /// Number of distinct PAs referenced.
    pub fn num_pas(&self) -> usize {
        self.num_pas
    }

    /// Program order (non-ghost events) of one thread.
    pub fn po_of(&self, t: ThreadId) -> &[EventId] {
        &self.po[t.0]
    }

    /// The initial VA → PA mapping: VA *i* maps to PA *i* (simplifying
    /// assumption 2 of §III-C — each VA starts at a unique PA).
    pub fn initial_pa(&self, va: Va) -> Pa {
        Pa(va.0)
    }

    /// The invoker of a ghost instruction, if `e` is a ghost.
    pub fn invoker(&self, e: EventId) -> Option<EventId> {
        self.ghost_invoker.get(&e).copied()
    }

    /// The ghost instructions invoked by `e`.
    pub fn ghosts_of(&self, e: EventId) -> Vec<EventId> {
        self.ghost_invoker
            .iter()
            .filter(|&(_, &inv)| inv == e)
            .map(|(&g, _)| g)
            .collect()
    }

    /// The write sourcing read `r`, or `None` when `r` reads the initial
    /// state.
    pub fn rf_source(&self, r: EventId) -> Option<EventId> {
        self.rf.get(&r).copied()
    }

    /// The raw `rf` pairs (write → read).
    pub fn rf_pairs(&self) -> PairSet {
        self.rf.iter().map(|(&r, &w)| (w, r)).collect()
    }

    /// The coherence-order pairs.
    pub fn co_pairs(&self) -> &PairSet {
        &self.co
    }

    /// The `rmw` dependency pairs.
    pub fn rmw_pairs(&self) -> &PairSet {
        &self.rmw
    }

    /// The `remap` pairs (PTE write → INVLPG).
    pub fn remap_pairs(&self) -> &PairSet {
        &self.remap
    }

    /// Total number of events — the paper's instruction bound counts every
    /// event including ghosts (Fig. 10a is a 4-instruction ELT).
    pub fn size(&self) -> usize {
        self.events.len()
    }

    /// Events of the given kind.
    pub fn events_of_kind(&self, pred: impl Fn(EventKind) -> bool) -> Vec<EventId> {
        self.events
            .iter()
            .filter(|e| pred(e.kind))
            .map(|e| e.id)
            .collect()
    }

    /// `true` when the execution contains at least one write of any stratum
    /// — the first spanning-set criterion of §IV-B.
    pub fn has_write(&self) -> bool {
        self.events.iter().any(|e| e.kind.is_write())
    }
}

/// The raw fields of an [`Execution`], for tools (such as the synthesis
/// engine's relaxation machinery) that construct or rewrite executions
/// wholesale. Obtained with [`Execution::to_parts`] and turned back with
/// [`Execution::from_parts`]; the result is validated lazily by
/// [`Execution::analyze`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecParts {
    /// All events; ids must be dense and match positions.
    pub events: Vec<Event>,
    /// Number of threads.
    pub num_threads: usize,
    /// Number of VAs.
    pub num_vas: usize,
    /// Number of PAs (at least `num_vas`).
    pub num_pas: usize,
    /// Per-thread program order over non-ghost events.
    pub po: Vec<Vec<EventId>>,
    /// ghost → invoker.
    pub ghost_invoker: BTreeMap<EventId, EventId>,
    /// read → sourcing write.
    pub rf: BTreeMap<EventId, EventId>,
    /// Coherence order (all pairs).
    pub co: PairSet,
    /// RMW pairs.
    pub rmw: PairSet,
    /// remap pairs.
    pub remap: PairSet,
    /// Optional explicit alias-creation order.
    pub co_pa: Option<PairSet>,
}

impl Execution {
    /// Decomposes into raw parts.
    pub fn to_parts(&self) -> ExecParts {
        ExecParts {
            events: self.events.clone(),
            num_threads: self.num_threads,
            num_vas: self.num_vas,
            num_pas: self.num_pas,
            po: self.po.clone(),
            ghost_invoker: self.ghost_invoker.clone(),
            rf: self.rf.clone(),
            co: self.co.clone(),
            rmw: self.rmw.clone(),
            remap: self.remap.clone(),
            co_pa: self.co_pa.clone(),
        }
    }

    /// Reassembles an execution from raw parts (unvalidated; run
    /// [`Execution::analyze`] to check well-formedness).
    pub fn from_parts(parts: ExecParts) -> Execution {
        Execution {
            events: parts.events,
            num_threads: parts.num_threads,
            num_vas: parts.num_vas,
            num_pas: parts.num_pas,
            po: parts.po,
            ghost_invoker: parts.ghost_invoker,
            rf: parts.rf,
            co: parts.co,
            rmw: parts.rmw,
            remap: parts.remap,
            co_pa: parts.co_pa,
        }
    }
}

/// Builder for [`Execution`]s.
///
/// The builder enforces the construction-time ghost rules: user writes
/// always carry a dirty-bit update (§III-A2), and walks are attached to the
/// access that invokes them. Communication (`rf`, `co`) is added after the
/// events.
#[derive(Clone, Debug, Default)]
pub struct EltBuilder {
    events: Vec<Event>,
    po: Vec<Vec<EventId>>,
    ghost_invoker: BTreeMap<EventId, EventId>,
    rf: BTreeMap<EventId, EventId>,
    co_groups: Vec<Vec<EventId>>,
    co_pa_groups: Vec<Vec<EventId>>,
    rmw: PairSet,
    remap: PairSet,
}

impl EltBuilder {
    /// Creates an empty builder.
    pub fn new() -> EltBuilder {
        EltBuilder::default()
    }

    /// Adds a new thread (core).
    pub fn thread(&mut self) -> ThreadId {
        self.po.push(Vec::new());
        ThreadId(self.po.len() - 1)
    }

    fn push(&mut self, thread: ThreadId, kind: EventKind, va: Option<Va>) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(Event {
            id,
            thread,
            kind,
            va,
        });
        if !kind.is_ghost() {
            self.po[thread.0].push(id);
        }
        id
    }

    /// A user read with a TLB hit (no walk of its own).
    pub fn read(&mut self, t: ThreadId, va: Va) -> EventId {
        self.push(t, EventKind::Read, Some(va))
    }

    /// A user read that misses the TLB: returns `(read, walk)`.
    pub fn read_walk(&mut self, t: ThreadId, va: Va) -> (EventId, EventId) {
        let r = self.push(t, EventKind::Read, Some(va));
        let p = self.push(t, EventKind::Ptw, Some(va));
        self.ghost_invoker.insert(p, r);
        (r, p)
    }

    /// A user write with a TLB hit: returns `(write, dirty-bit write)`.
    pub fn write(&mut self, t: ThreadId, va: Va) -> (EventId, EventId) {
        let w = self.push(t, EventKind::Write, Some(va));
        let d = self.push(t, EventKind::DirtyBitWrite, Some(va));
        self.ghost_invoker.insert(d, w);
        (w, d)
    }

    /// A user write that misses the TLB: returns
    /// `(write, dirty-bit write, walk)`.
    pub fn write_walk(&mut self, t: ThreadId, va: Va) -> (EventId, EventId, EventId) {
        let (w, d) = self.write(t, va);
        let p = self.push(t, EventKind::Ptw, Some(va));
        self.ghost_invoker.insert(p, w);
        (w, d, p)
    }

    /// An `MFENCE`.
    pub fn fence(&mut self, t: ThreadId) -> EventId {
        self.push(t, EventKind::Fence, None)
    }

    /// A support PTE write remapping `va` to `new_pa`.
    pub fn pte_write(&mut self, t: ThreadId, va: Va, new_pa: Pa) -> EventId {
        self.push(t, EventKind::PteWrite { new_pa }, Some(va))
    }

    /// A support `INVLPG` evicting `va`'s TLB entry on thread `t`.
    pub fn invlpg(&mut self, t: ThreadId, va: Va) -> EventId {
        self.push(t, EventKind::Invlpg, Some(va))
    }

    /// A support full TLB flush on thread `t` (the extended IPI type,
    /// §III-B2 future work).
    pub fn tlb_flush(&mut self, t: ThreadId) -> EventId {
        self.push(t, EventKind::TlbFlush, None)
    }

    /// Marks `(r, w)` as the read and write of an RMW operation.
    pub fn rmw(&mut self, r: EventId, w: EventId) {
        self.rmw.insert((r, w));
    }

    /// Records that `wpte` invokes `inv` (a `remap` edge).
    pub fn remap(&mut self, wpte: EventId, inv: EventId) {
        self.remap.insert((wpte, inv));
    }

    /// Records that read `r` reads from write `w`.
    pub fn rf(&mut self, w: EventId, r: EventId) {
        self.rf.insert(r, w);
    }

    /// Appends a coherence order over same-location writes, earliest first.
    /// All ordered pairs implied by the sequence are added.
    pub fn co<I: IntoIterator<Item = EventId>>(&mut self, order: I) {
        self.co_groups.push(order.into_iter().collect());
    }

    /// Appends an explicit alias-creation (`co_pa`) order for one PA.
    pub fn co_pa<I: IntoIterator<Item = EventId>>(&mut self, order: I) {
        self.co_pa_groups.push(order.into_iter().collect());
    }

    /// Finalizes the execution.
    pub fn build(self) -> Execution {
        let mut num_vas = 0;
        let mut num_pas = 0;
        for e in &self.events {
            if let Some(va) = e.va {
                num_vas = num_vas.max(va.0 + 1);
            }
            if let EventKind::PteWrite { new_pa } = e.kind {
                num_pas = num_pas.max(new_pa.0 + 1);
            }
        }
        // Every VA has an initial PA (VA i ↦ PA i).
        num_pas = num_pas.max(num_vas);
        let co = expand_groups(&self.co_groups);
        let co_pa = if self.co_pa_groups.is_empty() {
            None
        } else {
            Some(expand_groups(&self.co_pa_groups))
        };
        Execution {
            num_threads: self.po.len(),
            num_vas,
            num_pas,
            events: self.events,
            po: self.po,
            ghost_invoker: self.ghost_invoker,
            rf: self.rf,
            co,
            rmw: self.rmw,
            remap: self.remap,
            co_pa,
        }
    }
}

fn expand_groups(groups: &[Vec<EventId>]) -> PairSet {
    let mut out = PairSet::new();
    for g in groups {
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                out.insert((g[i], g[j]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_attaches_ghosts() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, d, p) = b.write_walk(t, Va(0));
        let x = b.build();
        assert_eq!(x.invoker(d), Some(w));
        assert_eq!(x.invoker(p), Some(w));
        assert_eq!(x.ghosts_of(w).len(), 2);
        assert_eq!(x.po_of(t), &[w]); // ghosts are not in po
        assert!(x.has_write());
        assert_eq!(x.size(), 3);
    }

    #[test]
    fn co_groups_expand_to_all_pairs() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w1, _) = b.write(t, Va(0));
        let (w2, _) = b.write(t, Va(0));
        let (w3, _) = b.write(t, Va(0));
        b.co([w1, w2, w3]);
        let x = b.build();
        assert_eq!(x.co_pairs().len(), 3);
        assert!(x.co_pairs().contains(&(w1, w3)));
    }

    #[test]
    fn initial_mapping_is_identity() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.read_walk(t, Va(1));
        let x = b.build();
        assert_eq!(x.initial_pa(Va(1)), Pa(1));
        assert_eq!(x.num_vas(), 2);
        assert!(x.num_pas() >= 2);
    }

    #[test]
    fn reads_default_to_initial_state() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (r, _) = b.read_walk(t, Va(0));
        let x = b.build();
        assert_eq!(x.rf_source(r), None);
        assert!(!x.has_write());
    }
}
