//! Events — the micro-operations of an enhanced litmus test.
//!
//! TransForm distinguishes three strata of events (§III of the paper):
//!
//! * **user-facing** instructions fetched from the program stream
//!   (`Read`, `Write`, `Fence`);
//! * **support** instructions issued by the OS on the program's behalf
//!   (`PteWrite` from remapping system calls, `Invlpg` TLB invalidations);
//! * **ghost** instructions executed by hardware on behalf of a user
//!   instruction (`Ptw` page-table walks, `DirtyBitWrite` updates). Ghosts
//!   are *not* in program order; they attach to their invoker through the
//!   `ghost` relation.

use crate::ids::{EventId, Pa, ThreadId, Va};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operation an event performs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// User-facing load from a virtual address.
    Read,
    /// User-facing store to a virtual address.
    Write,
    /// `MFENCE` — orders everything across it.
    Fence,
    /// Support instruction: a system call rewrites the PTE of the event's
    /// VA, remapping it to `new_pa` (§III-B1).
    PteWrite {
        /// The PA the VA is remapped to.
        new_pa: Pa,
    },
    /// Support instruction: evict the TLB entry for the event's VA on this
    /// event's core (§III-B2).
    Invlpg,
    /// Support instruction: evict *every* TLB entry on this event's core —
    /// a full TLB flush, the x86 effect of reloading CR3. The paper names
    /// additional IPI types as a future TransForm extension (§III-B2);
    /// this is the first one. Like `INVLPG` it can be remap-invoked (a
    /// shootdown handler that flushes instead of invalidating one page) or
    /// spurious.
    TlbFlush,
    /// Ghost instruction: a hardware page-table walk reading the PTE of the
    /// event's VA into the local TLB (§III-A1).
    Ptw,
    /// Ghost instruction: the dirty-bit update a user-facing write performs
    /// on the PTE of its effective VA, modeled as a plain write (§III-A2).
    DirtyBitWrite,
}

impl EventKind {
    /// `true` for ghost instructions (not in program order).
    pub fn is_ghost(self) -> bool {
        matches!(self, EventKind::Ptw | EventKind::DirtyBitWrite)
    }

    /// `true` for OS support instructions.
    pub fn is_support(self) -> bool {
        matches!(
            self,
            EventKind::PteWrite { .. } | EventKind::Invlpg | EventKind::TlbFlush
        )
    }

    /// `true` for the TLB-eviction support instructions (`INVLPG` and the
    /// full flush) that a PTE write may remap-invoke.
    pub fn is_tlb_eviction(self) -> bool {
        matches!(self, EventKind::Invlpg | EventKind::TlbFlush)
    }

    /// `true` for user-facing instructions.
    pub fn is_user(self) -> bool {
        matches!(self, EventKind::Read | EventKind::Write | EventKind::Fence)
    }

    /// `true` when the event reads shared memory (user read or PT walk).
    pub fn is_read(self) -> bool {
        matches!(self, EventKind::Read | EventKind::Ptw)
    }

    /// `true` when the event writes shared memory (user write, PTE write,
    /// or dirty-bit write).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            EventKind::Write | EventKind::PteWrite { .. } | EventKind::DirtyBitWrite
        )
    }

    /// `true` when the event accesses shared memory at all.
    pub fn is_memory(self) -> bool {
        self.is_read() || self.is_write()
    }

    /// `true` for user-facing `MemoryEvent`s in the paper's sense: the
    /// loads and stores of the user program.
    pub fn is_user_memory(self) -> bool {
        matches!(self, EventKind::Read | EventKind::Write)
    }
}

/// One event of a candidate execution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Event {
    /// Dense id within the owning execution.
    pub id: EventId,
    /// The core the event executes on.
    pub thread: ThreadId,
    /// What the event does.
    pub kind: EventKind,
    /// The effective VA, for every kind except `Fence`.
    pub va: Option<Va>,
}

impl Event {
    /// The VA of a non-fence event.
    ///
    /// # Panics
    ///
    /// Panics when called on a fence.
    pub fn va_unwrap(&self) -> Va {
        self.va.expect("fence events have no VA")
    }

    /// The label prefix used in the paper's figures.
    pub fn mnemonic(&self) -> &'static str {
        match self.kind {
            EventKind::Read => "R",
            EventKind::Write => "W",
            EventKind::Fence => "MFENCE",
            EventKind::PteWrite { .. } => "WPTE",
            EventKind::Invlpg => "INVLPG",
            EventKind::TlbFlush => "FLUSH",
            EventKind::Ptw => "Rptw",
            EventKind::DirtyBitWrite => "Wdb",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.va {
            Some(va) => write!(f, "{}{} {}", self.mnemonic(), self.id.0, va),
            None => write!(f, "{}{}", self.mnemonic(), self.id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strata_are_partition() {
        let all = [
            EventKind::Read,
            EventKind::Write,
            EventKind::Fence,
            EventKind::PteWrite { new_pa: Pa(0) },
            EventKind::Invlpg,
            EventKind::TlbFlush,
            EventKind::Ptw,
            EventKind::DirtyBitWrite,
        ];
        for k in all {
            let strata = [k.is_user(), k.is_support(), k.is_ghost()];
            assert_eq!(
                strata.iter().filter(|&&b| b).count(),
                1,
                "{k:?} must belong to exactly one stratum"
            );
        }
    }

    #[test]
    fn read_write_classification() {
        assert!(EventKind::Ptw.is_read());
        assert!(!EventKind::Ptw.is_write());
        assert!(EventKind::DirtyBitWrite.is_write());
        assert!(EventKind::PteWrite { new_pa: Pa(1) }.is_write());
        assert!(!EventKind::Fence.is_memory());
        assert!(!EventKind::Invlpg.is_memory());
        assert!(EventKind::Read.is_user_memory());
        assert!(!EventKind::Ptw.is_user_memory());
    }
}
