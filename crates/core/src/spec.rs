//! A textual DSL for MTM specifications.
//!
//! The paper specifies MTMs in Alloy; this module provides the equivalent
//! surface syntax for this reproduction, so models can be written, stored,
//! and diffed as text:
//!
//! ```text
//! mtm x86t_elt {
//!   axiom sc_per_loc:     acyclic(rf | co | fr | po_loc)
//!   axiom rmw_atomicity:  empty(rmw & (fr ; co))
//!   axiom causality:      acyclic(rfe | co | fr | ppo | fence)
//!   axiom invlpg:         acyclic(fr_va | ^po | remap)
//!   axiom tlb_causality:  acyclic(ptw_source | com)
//! }
//! ```
//!
//! Operator precedence, loosest to tightest: `|`, `\`, `&`, `;`; the unary
//! prefixes `~` (inverse) and `^` (transitive closure) bind tightest.
//! `#`-comments run to end of line.

use crate::axiom::{Axiom, Mtm, RelExpr};
use crate::derive::BaseRel;
use std::error::Error;
use std::fmt;

/// A parse failure, with a byte offset into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpecError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseSpecError {}

/// Parses an MTM specification.
///
/// # Errors
///
/// Returns a [`ParseSpecError`] describing the first syntax problem.
///
/// # Examples
///
/// ```
/// use transform_core::spec::parse_mtm;
/// let mtm = parse_mtm("mtm demo { axiom coh: acyclic(rf | co | fr | po_loc) }")?;
/// assert_eq!(mtm.name(), "demo");
/// # Ok::<(), transform_core::spec::ParseSpecError>(())
/// ```
pub fn parse_mtm(src: &str) -> Result<Mtm, ParseSpecError> {
    let mut p = Parser::new(src);
    let mtm = p.mtm()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after mtm block"));
    }
    Ok(mtm)
}

struct Parser<'s> {
    src: &'s str,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn new(src: &'s str) -> Parser<'s> {
        Parser { src, pos: 0 }
    }

    fn err(&self, message: &str) -> ParseSpecError {
        ParseSpecError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn rest(&self) -> &'s str {
        &self.src[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseSpecError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{tok}`")))
        }
    }

    fn ident(&mut self) -> Result<&'s str, ParseSpecError> {
        self.skip_ws();
        let r = self.rest();
        let end = r
            .char_indices()
            .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected an identifier"));
        }
        let id = &r[..end];
        self.pos += end;
        Ok(id)
    }

    fn mtm(&mut self) -> Result<Mtm, ParseSpecError> {
        self.expect("mtm")?;
        let name = self.ident()?.to_string();
        self.expect("{")?;
        let mut mtm = Mtm::new(&name);
        loop {
            self.skip_ws();
            if self.eat("}") {
                return Ok(mtm);
            }
            self.expect("axiom")?;
            let ax_name = self.ident()?.to_string();
            self.expect(":")?;
            let shape = self.ident()?.to_string();
            self.expect("(")?;
            let expr = self.expr()?;
            self.expect(")")?;
            let axiom = match shape.as_str() {
                "acyclic" => Axiom::Acyclic(expr),
                "irreflexive" => Axiom::Irreflexive(expr),
                "empty" => Axiom::Empty(expr),
                other => {
                    return Err(self.err(&format!(
                        "unknown axiom shape `{other}` (expected acyclic, irreflexive, or empty)"
                    )))
                }
            };
            mtm.add_axiom(&ax_name, axiom);
        }
    }

    /// expr := diff ('|' diff)*
    fn expr(&mut self) -> Result<RelExpr, ParseSpecError> {
        let mut e = self.diff()?;
        while self.eat("|") {
            e = e.union(self.diff()?);
        }
        Ok(e)
    }

    /// diff := inter ('\' inter)*
    fn diff(&mut self) -> Result<RelExpr, ParseSpecError> {
        let mut e = self.inter()?;
        while self.eat("\\") {
            e = e.diff(self.inter()?);
        }
        Ok(e)
    }

    /// inter := seq ('&' seq)*
    fn inter(&mut self) -> Result<RelExpr, ParseSpecError> {
        let mut e = self.seq()?;
        while self.eat("&") {
            e = e.inter(self.seq()?);
        }
        Ok(e)
    }

    /// seq := unary (';' unary)*
    fn seq(&mut self) -> Result<RelExpr, ParseSpecError> {
        let mut e = self.unary()?;
        while self.eat(";") {
            e = e.seq(self.unary()?);
        }
        Ok(e)
    }

    /// unary := '~' unary | '^' unary | '(' expr ')' | base
    fn unary(&mut self) -> Result<RelExpr, ParseSpecError> {
        if self.eat("~") {
            return Ok(self.unary()?.inverse());
        }
        if self.eat("^") {
            return Ok(self.unary()?.closure());
        }
        if self.eat("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        let name = self.ident()?;
        match BaseRel::parse(name) {
            Some(r) => Ok(RelExpr::base(r)),
            None => Err(self.err(&format!("unknown relation `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::RelExpr;

    #[test]
    fn parses_the_x86t_elt_surface_syntax() {
        let src = r"
            # the estimated Intel x86 MTM of §V
            mtm x86t_elt {
              axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
              axiom rmw_atomicity: empty(rmw & (fr ; co))
              axiom causality:     acyclic(rfe | co | fr | ppo | fence)
              axiom invlpg:        acyclic(fr_va | ^po | remap)
              axiom tlb_causality: acyclic(ptw_source | com)
            }
        ";
        let mtm = parse_mtm(src).expect("parses");
        assert_eq!(mtm.name(), "x86t_elt");
        assert_eq!(mtm.axioms().len(), 5);
        assert!(mtm.axiom("invlpg").is_some());
        assert!(mtm.mentions(BaseRel::Remap));
        assert!(!mtm.mentions(BaseRel::CoPa));
    }

    #[test]
    fn precedence_binds_seq_tighter_than_union() {
        let m = parse_mtm("mtm m { axiom a: empty(rf | fr ; co) }").expect("parses");
        let expected = RelExpr::base(BaseRel::Rf)
            .union(RelExpr::base(BaseRel::Fr).seq(RelExpr::base(BaseRel::Co)));
        assert_eq!(m.axioms()[0].axiom.expr(), &expected);
    }

    #[test]
    fn closure_is_prefix() {
        let m = parse_mtm("mtm m { axiom a: acyclic(^po | remap) }").expect("parses");
        let expected = RelExpr::base(BaseRel::Po)
            .closure()
            .union(RelExpr::base(BaseRel::Remap));
        assert_eq!(m.axioms()[0].axiom.expr(), &expected);
    }

    #[test]
    fn rejects_unknown_relation() {
        let e = parse_mtm("mtm m { axiom a: acyclic(bogus) }").unwrap_err();
        assert!(e.message.contains("bogus"), "{e}");
    }

    #[test]
    fn rejects_unknown_shape() {
        let e = parse_mtm("mtm m { axiom a: total(po) }").unwrap_err();
        assert!(e.message.contains("total"), "{e}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_mtm("mtm m { } extra").is_err());
    }

    #[test]
    fn display_of_parsed_model_reparses() {
        let src =
            "mtm m { axiom a: acyclic(rf | co | fr | po_loc) axiom b: empty(rmw & (fr ; co)) }";
        let m1 = parse_mtm(src).expect("parses");
        let m2 = parse_mtm(&m1.to_string()).expect("round-trips");
        assert_eq!(m1, m2);
    }
}
