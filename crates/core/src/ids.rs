//! Identifier newtypes for the MTM vocabulary.
//!
//! TransForm represents all values symbolically (§II-A of the paper);
//! virtual addresses, physical addresses, threads, and events are dense
//! indices wrapped in newtypes so they cannot be confused.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware thread (core). The paper assumes one thread per core
/// (simplifying assumption 1, §III-C), so `ThreadId` doubles as a core id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ThreadId(pub usize);

/// A virtual address. The paper names these `x, y, u, …`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Va(pub usize);

/// A physical address. The paper names these `a, b, c, …`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Pa(pub usize);

/// An event in a candidate execution, densely numbered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl EventId {
    /// The dense index of this event.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A physical shared-memory location, the granularity at which coherence
/// (`rf`/`co`/`fr`) is defined.
///
/// Data locations are *physical* addresses — two user accesses communicate
/// exactly when their effective PAs coincide (§III-B1). Page-table entries
/// live in their own namespace, keyed by the VA they translate (the paper
/// stores the PTE for VA `x` at VA `z`; we identify that location as
/// `Pte(x)`). The two namespaces never overlap (no recursive page tables,
/// simplifying assumption 3, §III-C).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Location {
    /// A data location, identified by physical address.
    Data(Pa),
    /// The page-table entry holding the mapping for a VA.
    Pte(Va),
}

/// A virtual-to-physical address mapping, as stored in a PTE.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Mapping {
    /// The virtual address being translated.
    pub va: Va,
    /// The physical address it maps to.
    pub pa: Pa,
}

/// Conventional display names matching the paper's figures.
pub mod names {
    /// VA names: `x, y, u, s, t, …`.
    pub fn va(i: usize) -> String {
        const NAMES: [&str; 5] = ["x", "y", "u", "s", "t"];
        NAMES
            .get(i)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("va{i}"))
    }

    /// PTE-location names: `z, v, w, …` (the paper stores the PTE for `x`
    /// at `z` and for `y` at `v`).
    pub fn pte(i: usize) -> String {
        const NAMES: [&str; 5] = ["z", "v", "w", "q", "r"];
        NAMES
            .get(i)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("pte{i}"))
    }

    /// PA names: `a, b, c, …`.
    pub fn pa(i: usize) -> String {
        const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
        NAMES
            .get(i)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("pa{i}"))
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for Va {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", names::va(self.0))
    }
}

impl fmt::Display for Pa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", names::pa(self.0))
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA {} → PA {}", self.va, self.pa)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Data(pa) => write!(f, "PA {pa}"),
            Location::Pte(va) => write!(f, "{}", names::pte(va.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper_conventions() {
        assert_eq!(Va(0).to_string(), "x");
        assert_eq!(Va(1).to_string(), "y");
        assert_eq!(Pa(0).to_string(), "a");
        assert_eq!(names::pte(0), "z");
        assert_eq!(names::pte(1), "v");
        assert_eq!(ThreadId(1).to_string(), "C1");
        assert_eq!(
            Mapping {
                va: Va(0),
                pa: Pa(0)
            }
            .to_string(),
            "VA x → PA a"
        );
    }

    #[test]
    fn names_degrade_gracefully_past_the_alphabet() {
        assert_eq!(names::va(7), "va7");
        assert_eq!(names::pa(9), "pa9");
    }

    #[test]
    fn locations_are_distinct_namespaces() {
        assert_ne!(Location::Data(Pa(0)), Location::Pte(Va(0)));
    }
}
