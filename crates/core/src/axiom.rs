//! Axiomatic MTM specifications and their evaluation.
//!
//! An [`Mtm`] is a named conjunction of [`Axiom`]s over relational
//! expressions built from the vocabulary of Table I. Evaluating the
//! *transistency predicate* against a candidate execution classifies the
//! execution as **permitted** (all axioms hold) or **forbidden** (§II-B).

use crate::derive::{is_acyclic, Analysis, BaseRel};
use crate::exec::{Execution, PairSet};
use crate::wellformed::WellformedError;
use std::fmt;
use std::sync::Arc;

/// A relational expression over the MTM vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelExpr {
    /// A base relation from Table I.
    Base(BaseRel),
    /// Union `a | b` (the paper writes `+`).
    Union(Arc<RelExpr>, Arc<RelExpr>),
    /// Intersection `a & b`.
    Inter(Arc<RelExpr>, Arc<RelExpr>),
    /// Difference `a \ b`.
    Diff(Arc<RelExpr>, Arc<RelExpr>),
    /// Relational composition `a ; b` (the paper's join operator `.`).
    Seq(Arc<RelExpr>, Arc<RelExpr>),
    /// Inverse `~a`.
    Inverse(Arc<RelExpr>),
    /// Transitive closure `^a`.
    Closure(Arc<RelExpr>),
}

impl RelExpr {
    /// A base relation.
    pub fn base(r: BaseRel) -> RelExpr {
        RelExpr::Base(r)
    }

    /// `self | other`.
    pub fn union(self, other: RelExpr) -> RelExpr {
        RelExpr::Union(Arc::new(self), Arc::new(other))
    }

    /// `self & other`.
    pub fn inter(self, other: RelExpr) -> RelExpr {
        RelExpr::Inter(Arc::new(self), Arc::new(other))
    }

    /// `self \ other`.
    pub fn diff(self, other: RelExpr) -> RelExpr {
        RelExpr::Diff(Arc::new(self), Arc::new(other))
    }

    /// `self ; other`.
    pub fn seq(self, other: RelExpr) -> RelExpr {
        RelExpr::Seq(Arc::new(self), Arc::new(other))
    }

    /// `~self`.
    pub fn inverse(self) -> RelExpr {
        RelExpr::Inverse(Arc::new(self))
    }

    /// `^self`.
    pub fn closure(self) -> RelExpr {
        RelExpr::Closure(Arc::new(self))
    }

    /// Union of several expressions.
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator.
    pub fn union_all<I: IntoIterator<Item = RelExpr>>(exprs: I) -> RelExpr {
        let mut it = exprs.into_iter();
        let first = it.next().expect("union_all of nothing");
        it.fold(first, RelExpr::union)
    }

    /// Evaluates to the concrete pair set under `a`.
    pub fn eval(&self, a: &Analysis<'_>) -> PairSet {
        match self {
            RelExpr::Base(r) => a.relation(*r).clone(),
            RelExpr::Union(l, r) => l.eval(a).union(&r.eval(a)).copied().collect(),
            RelExpr::Inter(l, r) => l.eval(a).intersection(&r.eval(a)).copied().collect(),
            RelExpr::Diff(l, r) => l.eval(a).difference(&r.eval(a)).copied().collect(),
            RelExpr::Seq(l, r) => {
                let lv = l.eval(a);
                let rv = r.eval(a);
                let mut out = PairSet::new();
                for &(x, y) in &lv {
                    for &(y2, z) in &rv {
                        if y == y2 {
                            out.insert((x, z));
                        }
                    }
                }
                out
            }
            RelExpr::Inverse(e) => e.eval(a).iter().map(|&(x, y)| (y, x)).collect(),
            RelExpr::Closure(e) => {
                let mut out = e.eval(a);
                loop {
                    let mut step = PairSet::new();
                    for &(x, y) in &out {
                        for &(y2, z) in &out {
                            if y == y2 {
                                step.insert((x, z));
                            }
                        }
                    }
                    let before = out.len();
                    out.extend(step);
                    if out.len() == before {
                        return out;
                    }
                }
            }
        }
    }

    /// `true` when the expression mentions `rel` anywhere.
    ///
    /// The synthesis engine uses this to branch on execution choices (e.g.
    /// the alias-creation order `co_pa`) only when the MTM can observe
    /// them.
    pub fn mentions(&self, rel: BaseRel) -> bool {
        match self {
            RelExpr::Base(r) => *r == rel,
            RelExpr::Union(l, r)
            | RelExpr::Inter(l, r)
            | RelExpr::Diff(l, r)
            | RelExpr::Seq(l, r) => l.mentions(rel) || r.mentions(rel),
            RelExpr::Inverse(e) | RelExpr::Closure(e) => e.mentions(rel),
        }
    }
}

impl fmt::Display for RelExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelExpr::Base(r) => write!(f, "{}", r.name()),
            RelExpr::Union(l, r) => write!(f, "({l} | {r})"),
            RelExpr::Inter(l, r) => write!(f, "({l} & {r})"),
            RelExpr::Diff(l, r) => write!(f, "({l} \\ {r})"),
            RelExpr::Seq(l, r) => write!(f, "({l} ; {r})"),
            RelExpr::Inverse(e) => write!(f, "~{e}"),
            RelExpr::Closure(e) => write!(f, "^{e}"),
        }
    }
}

/// One axiom of a transistency predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Axiom {
    /// The expression must have no cycle.
    Acyclic(RelExpr),
    /// The expression must relate no event to itself.
    Irreflexive(RelExpr),
    /// The expression must be empty.
    Empty(RelExpr),
}

impl Axiom {
    /// Whether the axiom holds in the analyzed execution.
    pub fn holds(&self, a: &Analysis<'_>) -> bool {
        match self {
            Axiom::Acyclic(e) => is_acyclic(&e.eval(a)),
            Axiom::Irreflexive(e) => e.eval(a).iter().all(|&(x, y)| x != y),
            Axiom::Empty(e) => e.eval(a).is_empty(),
        }
    }

    /// The expression the axiom constrains.
    pub fn expr(&self) -> &RelExpr {
        match self {
            Axiom::Acyclic(e) | Axiom::Irreflexive(e) | Axiom::Empty(e) => e,
        }
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axiom::Acyclic(e) => write!(f, "acyclic({e})"),
            Axiom::Irreflexive(e) => write!(f, "irreflexive({e})"),
            Axiom::Empty(e) => write!(f, "empty({e})"),
        }
    }
}

/// A named axiom within an MTM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedAxiom {
    /// The axiom's name (e.g. `sc_per_loc`).
    pub name: String,
    /// The constraint itself.
    pub axiom: Axiom,
}

/// A memory transistency model: a named transistency predicate given as a
/// conjunction of axioms.
///
/// # Examples
///
/// ```
/// use transform_core::axiom::{Axiom, Mtm, RelExpr};
/// use transform_core::derive::BaseRel;
///
/// let mut mtm = Mtm::new("sc_only");
/// mtm.add_axiom(
///     "sc_per_loc",
///     Axiom::Acyclic(RelExpr::union_all([
///         RelExpr::base(BaseRel::Rf),
///         RelExpr::base(BaseRel::Co),
///         RelExpr::base(BaseRel::Fr),
///         RelExpr::base(BaseRel::PoLoc),
///     ])),
/// );
/// assert_eq!(mtm.axioms().len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mtm {
    name: String,
    axioms: Vec<NamedAxiom>,
}

/// The result of evaluating a transistency predicate on one execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Names of violated axioms (empty ⇒ permitted).
    pub violated: Vec<String>,
}

impl Verdict {
    /// `true` when every axiom held.
    pub fn is_permitted(&self) -> bool {
        self.violated.is_empty()
    }

    /// `true` when the named axiom was violated.
    pub fn violates(&self, axiom: &str) -> bool {
        self.violated.iter().any(|v| v == axiom)
    }
}

impl Mtm {
    /// Creates an MTM with no axioms (which permits everything).
    pub fn new(name: &str) -> Mtm {
        Mtm {
            name: name.to_string(),
            axioms: Vec::new(),
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a named axiom to the predicate.
    pub fn add_axiom(&mut self, name: &str, axiom: Axiom) -> &mut Mtm {
        self.axioms.push(NamedAxiom {
            name: name.to_string(),
            axiom,
        });
        self
    }

    /// The axioms, in insertion order.
    pub fn axioms(&self) -> &[NamedAxiom] {
        &self.axioms
    }

    /// Looks up an axiom by name.
    pub fn axiom(&self, name: &str) -> Option<&NamedAxiom> {
        self.axioms.iter().find(|a| a.name == name)
    }

    /// Evaluates the transistency predicate on an analyzed execution.
    pub fn evaluate(&self, a: &Analysis<'_>) -> Verdict {
        Verdict {
            violated: self
                .axioms
                .iter()
                .filter(|ax| !ax.axiom.holds(a))
                .map(|ax| ax.name.clone())
                .collect(),
        }
    }

    /// Analyzes and evaluates an execution in one step.
    ///
    /// # Panics
    ///
    /// Panics if the execution is not well-formed; use
    /// [`Mtm::try_permits`] to handle malformed executions.
    pub fn permits(&self, x: &Execution) -> Verdict {
        self.try_permits(x).expect("execution must be well-formed")
    }

    /// Analyzes and evaluates, reporting well-formedness failures.
    ///
    /// # Errors
    ///
    /// Returns the placement-rule violation if the execution is malformed.
    pub fn try_permits(&self, x: &Execution) -> Result<Verdict, WellformedError> {
        Ok(self.evaluate(&x.analyze()?))
    }

    /// `true` when any axiom mentions the given base relation.
    pub fn mentions(&self, rel: BaseRel) -> bool {
        self.axioms.iter().any(|a| a.axiom.expr().mentions(rel))
    }
}

impl fmt::Display for Mtm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mtm {} {{", self.name)?;
        for a in &self.axioms {
            writeln!(f, "  axiom {}: {}", a.name, a.axiom)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::EltBuilder;
    use crate::ids::Va;

    fn sc_per_loc() -> Axiom {
        Axiom::Acyclic(RelExpr::union_all([
            RelExpr::base(BaseRel::Rf),
            RelExpr::base(BaseRel::Co),
            RelExpr::base(BaseRel::Fr),
            RelExpr::base(BaseRel::PoLoc),
        ]))
    }

    #[test]
    fn coherence_violation_detected() {
        // W x = 1; R x = 0 on one thread: R reads initial despite the
        // program-earlier write → sc_per_loc cycle.
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (_w, _, _) = b.write_walk(t, Va(0));
        let _r = b.read(t, Va(0)); // reads initial: no rf edge
        let x = b.build();
        let mut mtm = Mtm::new("m");
        mtm.add_axiom("sc_per_loc", sc_per_loc());
        let v = mtm.permits(&x);
        assert!(!v.is_permitted());
        assert!(v.violates("sc_per_loc"));
    }

    #[test]
    fn coherent_execution_permitted() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, _, _) = b.write_walk(t, Va(0));
        let r = b.read(t, Va(0));
        b.rf(w, r);
        let x = b.build();
        let mut mtm = Mtm::new("m");
        mtm.add_axiom("sc_per_loc", sc_per_loc());
        assert!(mtm.permits(&x).is_permitted());
    }

    #[test]
    fn seq_and_inverse_and_closure_eval() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, _, _) = b.write_walk(t, Va(0));
        let r = b.read(t, Va(0));
        b.rf(w, r);
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        let rf = RelExpr::base(BaseRel::Rf);
        assert_eq!(rf.clone().inverse().eval(&a).len(), rf.eval(&a).len());
        let po = RelExpr::base(BaseRel::Po);
        assert_eq!(po.clone().closure().eval(&a), po.eval(&a));
        // rf ; ~rf relates the write to itself.
        let roundtrip = RelExpr::base(BaseRel::Rf).seq(RelExpr::base(BaseRel::Rf).inverse());
        assert!(roundtrip.eval(&a).contains(&(w, w)));
    }

    #[test]
    fn mentions_traverses_structure() {
        let e = RelExpr::base(BaseRel::Rf)
            .union(RelExpr::base(BaseRel::CoPa).closure())
            .seq(RelExpr::base(BaseRel::Po));
        assert!(e.mentions(BaseRel::CoPa));
        assert!(e.mentions(BaseRel::Po));
        assert!(!e.mentions(BaseRel::FrVa));
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = RelExpr::base(BaseRel::FrVa)
            .union(RelExpr::base(BaseRel::Po).closure())
            .union(RelExpr::base(BaseRel::Remap));
        let ax = Axiom::Acyclic(e);
        assert_eq!(ax.to_string(), "acyclic(((fr_va | ^po) | remap))");
    }

    #[test]
    fn empty_mtm_permits_anything_well_formed() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.read_walk(t, Va(0));
        let x = b.build();
        let mtm = Mtm::new("empty");
        assert!(mtm.permits(&x).is_permitted());
    }
}
