//! Derived relations and execution analysis.
//!
//! [`Execution::analyze`] validates the placement rules of §III–§IV and
//! materializes every relation of the paper's Table I (plus the auxiliary
//! relations used by the `x86t_elt` axioms). The result, an [`Analysis`],
//! is what MTM predicates are evaluated against.

use crate::event::EventKind;
use crate::exec::{Execution, PairSet};
use crate::ids::{EventId, Location, Mapping, ThreadId};
use crate::wellformed::WellformedError;
use std::collections::BTreeMap;

/// The base relations of the MTM vocabulary (Table I of the paper, plus
/// the derived helpers used by the `x86t_elt` axioms).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BaseRel {
    /// Program order (transitive, per thread, non-ghost events).
    Po,
    /// Program order lifted to ghosts: a ghost is anchored at its invoker's
    /// slot (walk before the access, dirty-bit write after).
    Apo,
    /// `apo` restricted to same-physical-location memory events.
    PoLoc,
    /// Preserved program order under TSO: `apo` over memory events minus
    /// write→read pairs (store buffering).
    Ppo,
    /// Pairs of memory events separated by an `MFENCE`.
    Fence,
    /// Reads-from.
    Rf,
    /// Reads-from external (different threads).
    Rfe,
    /// Coherence order.
    Co,
    /// From-reads.
    Fr,
    /// `rf ∪ co ∪ fr`.
    Com,
    /// User-facing instruction → the ghosts it invokes.
    Ghost,
    /// PT walk → the user-facing accesses reading the TLB entry it loaded.
    RfPtw,
    /// PTE write → the user-facing accesses using its mapping.
    RfPa,
    /// Alias-creation order on PTE writes mapping to one PA.
    CoPa,
    /// User access → `co_pa`-successors of the PTE write it read.
    FrPa,
    /// User access → later PTE writes remapping its effective VA.
    FrVa,
    /// PTE write → the INVLPGs it invokes.
    Remap,
    /// Read → write of a read-modify-write.
    Rmw,
    /// Invoker of a walk → other accesses sourced by that walk.
    PtwSource,
}

impl BaseRel {
    /// All base relations.
    pub fn all() -> &'static [BaseRel] {
        use BaseRel::*;
        &[
            Po, Apo, PoLoc, Ppo, Fence, Rf, Rfe, Co, Fr, Com, Ghost, RfPtw, RfPa, CoPa, FrPa, FrVa,
            Remap, Rmw, PtwSource,
        ]
    }

    /// The spelling used by the MTM spec DSL and the paper.
    pub fn name(self) -> &'static str {
        use BaseRel::*;
        match self {
            Po => "po",
            Apo => "apo",
            PoLoc => "po_loc",
            Ppo => "ppo",
            Fence => "fence",
            Rf => "rf",
            Rfe => "rfe",
            Co => "co",
            Fr => "fr",
            Com => "com",
            Ghost => "ghost",
            RfPtw => "rf_ptw",
            RfPa => "rf_pa",
            CoPa => "co_pa",
            FrPa => "fr_pa",
            FrVa => "fr_va",
            Remap => "remap",
            Rmw => "rmw",
            PtwSource => "ptw_source",
        }
    }

    /// Parses a relation name as used in the spec DSL.
    pub fn parse(s: &str) -> Option<BaseRel> {
        BaseRel::all().iter().copied().find(|r| r.name() == s)
    }
}

/// Fully derived view of a well-formed candidate execution.
#[derive(Clone, Debug)]
pub struct Analysis<'x> {
    exec: &'x Execution,
    /// (thread, slot, rank) anchor per event.
    anchor: Vec<(usize, usize, u8)>,
    /// Mapping used (memory events) or written (PTE/dirty-bit writes).
    mapping: Vec<Option<Mapping>>,
    /// PTE-write origin of that mapping; `None` = initial mapping.
    origin: Vec<Option<EventId>>,
    /// Physical location of each memory event.
    location: Vec<Option<Location>>,
    /// The walk whose TLB entry each user memory event reads.
    tlb_src: Vec<Option<EventId>>,
    rels: BTreeMap<BaseRel, PairSet>,
}

impl Execution {
    /// Validates the execution against the placement rules and derives all
    /// relations.
    ///
    /// # Errors
    ///
    /// Returns the first [`WellformedError`] encountered; see that type for
    /// the complete rule list.
    pub fn analyze(&self) -> Result<Analysis<'_>, WellformedError> {
        Analysis::build(self)
    }

    /// `true` when the execution satisfies every placement rule.
    pub fn is_well_formed(&self) -> bool {
        self.analyze().is_ok()
    }
}

impl<'x> Analysis<'x> {
    /// The underlying execution.
    pub fn exec(&self) -> &'x Execution {
        self.exec
    }

    /// The concrete pairs of a base relation.
    pub fn relation(&self, r: BaseRel) -> &PairSet {
        &self.rels[&r]
    }

    /// The mapping used by (or written by) a memory event.
    pub fn mapping(&self, e: EventId) -> Option<Mapping> {
        self.mapping[e.index()]
    }

    /// The PTE write a memory event's mapping originates from (`None` =
    /// initial mapping or not a memory event).
    pub fn mapping_origin(&self, e: EventId) -> Option<EventId> {
        self.origin[e.index()]
    }

    /// The physical location a memory event accesses.
    pub fn location(&self, e: EventId) -> Option<Location> {
        self.location[e.index()]
    }

    /// The walk sourcing a user access's translation.
    pub fn tlb_source(&self, e: EventId) -> Option<EventId> {
        self.tlb_src[e.index()]
    }

    /// The `(thread, slot, rank)` anchor used for `apo`.
    pub fn anchor(&self, e: EventId) -> (usize, usize, u8) {
        self.anchor[e.index()]
    }

    fn build(x: &'x Execution) -> Result<Analysis<'x>, WellformedError> {
        let n = x.events.len();
        // --- structural checks ---
        for (i, e) in x.events.iter().enumerate() {
            if e.id.index() != i {
                return Err(WellformedError::CorruptEventTable);
            }
            let needs_va = !matches!(e.kind, EventKind::Fence | EventKind::TlbFlush);
            if e.va.is_some() != needs_va {
                return Err(WellformedError::BadVa(e.id));
            }
            if e.thread.0 >= x.num_threads {
                return Err(WellformedError::CorruptEventTable);
            }
        }

        // Program order covers exactly the non-ghost events of each thread.
        let mut slot = vec![usize::MAX; n];
        for (t, list) in x.po.iter().enumerate() {
            for (s, &e) in list.iter().enumerate() {
                let ev = x
                    .events
                    .get(e.index())
                    .ok_or(WellformedError::CorruptProgramOrder(ThreadId(t)))?;
                if ev.thread.0 != t || ev.kind.is_ghost() || slot[e.index()] != usize::MAX {
                    return Err(WellformedError::CorruptProgramOrder(ThreadId(t)));
                }
                slot[e.index()] = s;
            }
        }
        for e in &x.events {
            if !e.kind.is_ghost() && slot[e.id.index()] == usize::MAX {
                return Err(WellformedError::CorruptProgramOrder(e.thread));
            }
        }

        // Ghost bookkeeping.
        for e in &x.events {
            let inv = x.ghost_invoker.get(&e.id);
            match (e.kind.is_ghost(), inv) {
                (true, Some(&invoker)) => {
                    let iv = x
                        .events
                        .get(invoker.index())
                        .ok_or(WellformedError::OrphanGhost(e.id))?;
                    let ok = !iv.kind.is_ghost()
                        && iv.thread == e.thread
                        && iv.va == e.va
                        && match e.kind {
                            EventKind::Ptw => iv.kind.is_user_memory(),
                            EventKind::DirtyBitWrite => iv.kind == EventKind::Write,
                            _ => false,
                        };
                    if !ok {
                        return Err(WellformedError::BadInvoker {
                            ghost: e.id,
                            invoker,
                        });
                    }
                }
                (true, None) | (false, Some(_)) => return Err(WellformedError::OrphanGhost(e.id)),
                (false, None) => {}
            }
        }
        // Every write has exactly one dirty-bit update; ≤ 1 walk per access.
        for e in &x.events {
            if e.kind == EventKind::Write {
                let dbs = x
                    .ghost_invoker
                    .iter()
                    .filter(|&(&g, &i)| {
                        i == e.id && x.events[g.index()].kind == EventKind::DirtyBitWrite
                    })
                    .count();
                if dbs != 1 {
                    return Err(WellformedError::DirtyBitCount(e.id));
                }
            }
            if e.kind.is_user_memory() {
                let walks = x
                    .ghost_invoker
                    .iter()
                    .filter(|&(&g, &i)| i == e.id && x.events[g.index()].kind == EventKind::Ptw)
                    .count();
                if walks > 1 {
                    return Err(WellformedError::WalkCount(e.id));
                }
            }
        }

        // Anchors: ghosts take the invoker's slot; walks sort before it,
        // dirty-bit updates after.
        let mut anchor = vec![(0usize, 0usize, 1u8); n];
        for e in &x.events {
            let (s, rank) = match e.kind {
                EventKind::Ptw => (slot[x.ghost_invoker[&e.id].index()], 0),
                EventKind::DirtyBitWrite => (slot[x.ghost_invoker[&e.id].index()], 2),
                _ => (slot[e.id.index()], 1),
            };
            anchor[e.id.index()] = (e.thread.0, s, rank);
        }

        // RMW pairs: adjacent same-VA read/write on one thread.
        for &(r, w) in &x.rmw {
            let (re, we) = match (x.events.get(r.index()), x.events.get(w.index())) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(WellformedError::BadRmw(r, w)),
            };
            let ok = re.kind == EventKind::Read
                && we.kind == EventKind::Write
                && re.thread == we.thread
                && re.va == we.va
                && slot[w.index()] == slot[r.index()] + 1;
            if !ok {
                return Err(WellformedError::BadRmw(r, w));
            }
        }

        // --- TLB sourcing (rf_ptw) ---
        // A user access reads its own walk if it has one; otherwise the
        // latest same-VA walk earlier on its core, provided no INVLPG for
        // that VA intervenes (§III-A1, §III-B2).
        let mut tlb_src: Vec<Option<EventId>> = vec![None; n];
        for e in &x.events {
            if !e.kind.is_user_memory() {
                continue;
            }
            let own = x
                .ghost_invoker
                .iter()
                .find(|&(&g, &i)| i == e.id && x.events[g.index()].kind == EventKind::Ptw)
                .map(|(&g, _)| g);
            let src = match own {
                Some(p) => p,
                None => {
                    let e_slot = slot[e.id.index()];
                    let best = x
                        .events
                        .iter()
                        .filter(|p| {
                            p.kind == EventKind::Ptw
                                && p.thread == e.thread
                                && p.va == e.va
                                && slot[x.ghost_invoker[&p.id].index()] < e_slot
                        })
                        .max_by_key(|p| slot[x.ghost_invoker[&p.id].index()]);
                    match best {
                        Some(p) => p.id,
                        None => return Err(WellformedError::MissingPtWalk(e.id)),
                    }
                }
            };
            // No eviction of this VA's entry strictly between the walk and
            // the use: neither an INVLPG for the VA nor a full TLB flush.
            let w_slot = slot[x.ghost_invoker[&src].index()];
            let e_slot = slot[e.id.index()];
            if let Some(inv) = x.events.iter().find(|i| {
                (i.kind == EventKind::Invlpg && i.va == e.va || i.kind == EventKind::TlbFlush)
                    && i.thread == e.thread
                    && slot[i.id.index()] > w_slot
                    && slot[i.id.index()] < e_slot
            }) {
                return Err(WellformedError::StaleTlbEntry {
                    event: e.id,
                    invlpg: inv.id,
                });
            }
            tlb_src[e.id.index()] = Some(src);
        }

        // --- mapping provenance ---
        let mut mapping: Vec<Option<Mapping>> = vec![None; n];
        let mut origin: Vec<Option<EventId>> = vec![None; n];
        {
            #[derive(Clone, Copy, PartialEq)]
            enum Mark {
                White,
                Grey,
                Black,
            }
            let mut mark = vec![Mark::White; n];

            fn resolve(
                x: &Execution,
                tlb_src: &[Option<EventId>],
                mapping: &mut Vec<Option<Mapping>>,
                origin: &mut Vec<Option<EventId>>,
                mark: &mut Vec<Mark>,
                e: EventId,
            ) -> Result<(), WellformedError> {
                match mark[e.index()] {
                    Mark::Black => return Ok(()),
                    Mark::Grey => return Err(WellformedError::CyclicProvenance(e)),
                    Mark::White => {}
                }
                mark[e.index()] = Mark::Grey;
                let ev = x.events[e.index()];
                let (m, o) = match ev.kind {
                    EventKind::PteWrite { new_pa } => (
                        Some(Mapping {
                            va: ev.va_unwrap(),
                            pa: new_pa,
                        }),
                        Some(e),
                    ),
                    EventKind::Ptw => match x.rf.get(&e) {
                        None => (
                            Some(Mapping {
                                va: ev.va_unwrap(),
                                pa: x.initial_pa(ev.va_unwrap()),
                            }),
                            None,
                        ),
                        Some(&w) => {
                            let wk = x.events[w.index()].kind;
                            if !matches!(wk, EventKind::PteWrite { .. } | EventKind::DirtyBitWrite)
                            {
                                return Err(WellformedError::RfKindMismatch(w, e));
                            }
                            resolve(x, tlb_src, mapping, origin, mark, w)?;
                            (mapping[w.index()], origin[w.index()])
                        }
                    },
                    EventKind::Read | EventKind::Write => {
                        let p = tlb_src[e.index()].expect("tlb sources resolved above");
                        resolve(x, tlb_src, mapping, origin, mark, p)?;
                        (mapping[p.index()], origin[p.index()])
                    }
                    EventKind::DirtyBitWrite => {
                        let inv = x.ghost_invoker[&e];
                        resolve(x, tlb_src, mapping, origin, mark, inv)?;
                        (mapping[inv.index()], origin[inv.index()])
                    }
                    EventKind::Fence | EventKind::Invlpg | EventKind::TlbFlush => (None, None),
                };
                mapping[e.index()] = m;
                origin[e.index()] = o;
                mark[e.index()] = Mark::Black;
                Ok(())
            }

            for e in &x.events {
                resolve(x, &tlb_src, &mut mapping, &mut origin, &mut mark, e.id)?;
            }
        }

        // --- physical locations ---
        let mut location: Vec<Option<Location>> = vec![None; n];
        for e in &x.events {
            location[e.id.index()] = match e.kind {
                EventKind::Read | EventKind::Write => {
                    Some(Location::Data(mapping[e.id.index()].expect("mapped").pa))
                }
                EventKind::Ptw | EventKind::DirtyBitWrite | EventKind::PteWrite { .. } => {
                    Some(Location::Pte(e.va_unwrap()))
                }
                EventKind::Fence | EventKind::Invlpg | EventKind::TlbFlush => None,
            };
        }

        // --- rf validation ---
        for (&r, &w) in &x.rf {
            let (re, we) = match (x.events.get(r.index()), x.events.get(w.index())) {
                (Some(a), Some(b)) => (*a, *b),
                _ => return Err(WellformedError::RfKindMismatch(w, r)),
            };
            let strata_ok = match re.kind {
                EventKind::Read => we.kind == EventKind::Write,
                EventKind::Ptw => matches!(
                    we.kind,
                    EventKind::PteWrite { .. } | EventKind::DirtyBitWrite
                ),
                _ => false,
            };
            if !strata_ok {
                return Err(WellformedError::RfKindMismatch(w, r));
            }
            if location[r.index()] != location[w.index()] {
                return Err(WellformedError::RfLocationMismatch(w, r));
            }
        }

        // --- co validation: strict total order per location ---
        for &(a, b) in &x.co {
            let ok = a != b
                && x.events.get(a.index()).is_some_and(|e| e.kind.is_write())
                && x.events.get(b.index()).is_some_and(|e| e.kind.is_write())
                && location[a.index()] == location[b.index()];
            if !ok {
                return Err(WellformedError::BadCoPair(a, b));
            }
        }
        let writes: Vec<EventId> = x
            .events
            .iter()
            .filter(|e| e.kind.is_write())
            .map(|e| e.id)
            .collect();
        check_total_order_per_group(
            &writes,
            |e| location[e.index()],
            &x.co,
            WellformedError::CoNotTotalOrder,
        )?;

        // --- co_pa: explicit or derived alias-creation order ---
        let pte_writes: Vec<EventId> = x
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PteWrite { .. }))
            .map(|e| e.id)
            .collect();
        let target_pa = |e: EventId| match x.events[e.index()].kind {
            EventKind::PteWrite { new_pa } => Some(new_pa),
            _ => None,
        };
        let co_pa: PairSet = match &x.co_pa {
            Some(explicit) => {
                for &(a, b) in explicit {
                    let ok = a != b && target_pa(a).is_some() && target_pa(a) == target_pa(b);
                    if !ok {
                        return Err(WellformedError::BadCoPaPair(a, b));
                    }
                }
                check_total_order_per_group(
                    &pte_writes,
                    target_pa,
                    explicit,
                    WellformedError::CoPaNotTotalOrder,
                )?;
                explicit.clone()
            }
            None => {
                // Default linearization: event-creation order.
                let mut out = PairSet::new();
                for (i, &a) in pte_writes.iter().enumerate() {
                    for &b in &pte_writes[i + 1..] {
                        if target_pa(a) == target_pa(b) {
                            out.insert((a, b));
                        }
                    }
                }
                out
            }
        };

        // --- remap validation ---
        let mut invlpg_owner: BTreeMap<EventId, EventId> = BTreeMap::new();
        for &(w, i) in &x.remap {
            let (we, ie) = match (x.events.get(w.index()), x.events.get(i.index())) {
                (Some(a), Some(b)) => (*a, *b),
                _ => return Err(WellformedError::BadRemap(w, i)),
            };
            let ok = matches!(we.kind, EventKind::PteWrite { .. })
                && match ie.kind {
                    EventKind::Invlpg => we.va == ie.va,
                    // A full flush invalidates every entry, so it may stand
                    // in for the per-VA invalidation of any PTE write.
                    EventKind::TlbFlush => true,
                    _ => false,
                };
            if !ok {
                return Err(WellformedError::BadRemap(w, i));
            }
            if invlpg_owner.insert(i, w).is_some() {
                return Err(WellformedError::SharedInvlpg(i));
            }
            if ie.thread == we.thread && slot[i.index()] <= slot[w.index()] {
                return Err(WellformedError::RemapOrder(w, i));
            }
        }
        for &w in &pte_writes {
            for t in 0..x.num_threads {
                let count = x
                    .remap
                    .iter()
                    .filter(|&&(rw, ri)| rw == w && x.events[ri.index()].thread.0 == t)
                    .count();
                if count != 1 {
                    return Err(WellformedError::RemapCoverage(w, ThreadId(t)));
                }
            }
        }

        // --- relation materialization ---
        let mut rels: BTreeMap<BaseRel, PairSet> = BTreeMap::new();
        let same_thread =
            |a: EventId, b: EventId| x.events[a.index()].thread == x.events[b.index()].thread;

        // po: transitive order on non-ghost events per thread.
        let mut po = PairSet::new();
        for list in &x.po {
            for i in 0..list.len() {
                for j in (i + 1)..list.len() {
                    po.insert((list[i], list[j]));
                }
            }
        }

        // apo: anchored program order over all events.
        let mut apo = PairSet::new();
        for a in &x.events {
            for b in &x.events {
                if a.id != b.id
                    && a.thread == b.thread
                    && anchor[a.id.index()] < anchor[b.id.index()]
                {
                    apo.insert((a.id, b.id));
                }
            }
        }

        let mem = |e: EventId| x.events[e.index()].kind.is_memory();
        // Ghost instructions are never fetched or issued (§III-A), so the
        // architecture promises them no program-order guarantees: they are
        // excluded from ppo and fence. (Hardware page walkers may read
        // stale PTEs — that is exactly what the invlpg axiom polices.)
        // They do participate in po_loc: coherence is per location,
        // whatever the stratum of the access.
        let issued_mem = |e: EventId| mem(e) && !x.events[e.index()].kind.is_ghost();
        let mut po_loc = PairSet::new();
        let mut ppo = PairSet::new();
        for &(a, b) in &apo {
            if mem(a) && mem(b) && location[a.index()] == location[b.index()] {
                po_loc.insert((a, b));
            }
            if issued_mem(a) && issued_mem(b) {
                let wr = x.events[a.index()].kind.is_write() && x.events[b.index()].kind.is_read();
                if !wr {
                    ppo.insert((a, b));
                }
            }
        }

        // fence: issued memory events separated by an MFENCE in apo.
        let mut fence = PairSet::new();
        for f in x.events.iter().filter(|e| e.kind == EventKind::Fence) {
            for &(a, fb) in apo.iter().filter(|&&(_, t)| t == f.id) {
                debug_assert_eq!(fb, f.id);
                if !issued_mem(a) {
                    continue;
                }
                for &(fa, b) in apo.iter().filter(|&&(s, _)| s == f.id) {
                    debug_assert_eq!(fa, f.id);
                    if issued_mem(b) {
                        fence.insert((a, b));
                    }
                }
            }
        }

        let rf: PairSet = x.rf.iter().map(|(&r, &w)| (w, r)).collect();
        let rfe: PairSet = rf
            .iter()
            .copied()
            .filter(|&(w, r)| !same_thread(w, r))
            .collect();
        let co = x.co.clone();

        // fr: reads before the writes that overwrite what they read.
        let mut fr = PairSet::new();
        for r in x.events.iter().filter(|e| e.kind.is_read()) {
            match x.rf.get(&r.id) {
                Some(&w0) => {
                    for &(a, b) in &co {
                        if a == w0 {
                            fr.insert((r.id, b));
                        }
                    }
                }
                None => {
                    // Reads the initial state: before every write there.
                    for &w in &writes {
                        if location[w.index()] == location[r.id.index()] {
                            fr.insert((r.id, w));
                        }
                    }
                }
            }
        }

        let mut com = PairSet::new();
        com.extend(rf.iter().copied());
        com.extend(co.iter().copied());
        com.extend(fr.iter().copied());

        let ghost: PairSet = x.ghost_invoker.iter().map(|(&g, &i)| (i, g)).collect();
        let rf_ptw: PairSet = x
            .events
            .iter()
            .filter_map(|e| tlb_src[e.id.index()].map(|p| (p, e.id)))
            .collect();

        // rf_pa / fr_pa / fr_va over user-facing memory events.
        let mut rf_pa = PairSet::new();
        let mut fr_pa = PairSet::new();
        let mut fr_va = PairSet::new();
        for e in x.events.iter().filter(|e| e.kind.is_user_memory()) {
            let m = mapping[e.id.index()].expect("user access is mapped");
            match origin[e.id.index()] {
                Some(w0) => {
                    rf_pa.insert((w0, e.id));
                    for &(a, b) in &co_pa {
                        if a == w0 {
                            fr_pa.insert((e.id, b));
                        }
                    }
                    for &(a, b) in &co {
                        if a == w0 && matches!(x.events[b.index()].kind, EventKind::PteWrite { .. })
                        {
                            fr_va.insert((e.id, b));
                        }
                    }
                }
                None => {
                    for &w in &pte_writes {
                        if target_pa(w) == Some(m.pa) {
                            fr_pa.insert((e.id, w));
                        }
                        if x.events[w.index()].va == e.va {
                            fr_va.insert((e.id, w));
                        }
                    }
                }
            }
        }

        // ptw_source: walk invoker → other accesses using that walk.
        let mut ptw_source = PairSet::new();
        for e in x.events.iter().filter(|e| e.kind.is_user_memory()) {
            let Some(p) = tlb_src[e.id.index()] else {
                continue;
            };
            if x.ghost_invoker[&p] != e.id {
                continue;
            }
            for e2 in x.events.iter().filter(|e2| e2.kind.is_user_memory()) {
                if e2.id != e.id && tlb_src[e2.id.index()] == Some(p) {
                    ptw_source.insert((e.id, e2.id));
                }
            }
        }

        rels.insert(BaseRel::Po, po);
        rels.insert(BaseRel::Apo, apo);
        rels.insert(BaseRel::PoLoc, po_loc);
        rels.insert(BaseRel::Ppo, ppo);
        rels.insert(BaseRel::Fence, fence);
        rels.insert(BaseRel::Rf, rf);
        rels.insert(BaseRel::Rfe, rfe);
        rels.insert(BaseRel::Co, co);
        rels.insert(BaseRel::Fr, fr);
        rels.insert(BaseRel::Com, com);
        rels.insert(BaseRel::Ghost, ghost);
        rels.insert(BaseRel::RfPtw, rf_ptw);
        rels.insert(BaseRel::RfPa, rf_pa);
        rels.insert(BaseRel::CoPa, co_pa);
        rels.insert(BaseRel::FrPa, fr_pa);
        rels.insert(BaseRel::FrVa, fr_va);
        rels.insert(BaseRel::Remap, x.remap.clone());
        rels.insert(BaseRel::Rmw, x.rmw.clone());
        rels.insert(BaseRel::PtwSource, ptw_source);

        Ok(Analysis {
            exec: x,
            anchor,
            mapping,
            origin,
            location,
            tlb_src,
            rels,
        })
    }
}

/// Checks that `pairs` restricted to each group (events with equal non-None
/// keys) forms a strict total order covering every pair.
fn check_total_order_per_group<K: PartialEq + Copy>(
    events: &[EventId],
    key: impl Fn(EventId) -> Option<K>,
    pairs: &PairSet,
    err: impl Fn(EventId, EventId) -> WellformedError,
) -> Result<(), WellformedError> {
    for (i, &a) in events.iter().enumerate() {
        let Some(ka) = key(a) else { continue };
        for &b in &events[i + 1..] {
            let Some(kb) = key(b) else { continue };
            if ka != kb {
                continue;
            }
            let fwd = pairs.contains(&(a, b));
            let bwd = pairs.contains(&(b, a));
            if fwd == bwd {
                return Err(err(a, b));
            }
        }
    }
    // Totality plus asymmetry on a finite set guarantees a tournament; we
    // additionally demand transitivity so the order is linear.
    for &(a, b) in pairs {
        for &(c, d) in pairs {
            if b == c && a != d && !pairs.contains(&(a, d)) {
                return Err(err(a, d));
            }
        }
    }
    Ok(())
}

/// Computes the walk each user access reads its translation from, using
/// only the program structure (placement of walks and INVLPGs) — the
/// communication relations play no role. Used by the synthesis engine to
/// derive `rf_ptw` for program skeletons before any `rf`/`co` choice is
/// made.
///
/// # Errors
///
/// Fails with [`WellformedError::MissingPtWalk`] or
/// [`WellformedError::StaleTlbEntry`] when the placement rules of §III-A1
/// and §III-B2 are violated.
pub fn static_tlb_sources(x: &Execution) -> Result<Vec<Option<EventId>>, WellformedError> {
    let n = x.events().len();
    let mut slot = vec![usize::MAX; n];
    for t in 0..x.num_threads() {
        for (s, &e) in x.po_of(ThreadId(t)).iter().enumerate() {
            slot[e.index()] = s;
        }
    }
    let ghost_slot = |g: EventId| {
        let inv = x.invoker(g).expect("ghost has invoker");
        slot[inv.index()]
    };
    let mut out = vec![None; n];
    for e in x.events() {
        if !e.kind.is_user_memory() {
            continue;
        }
        let own = x
            .ghosts_of(e.id)
            .into_iter()
            .find(|&g| x.event(g).kind == EventKind::Ptw);
        let src = match own {
            Some(p) => p,
            None => {
                let e_slot = slot[e.id.index()];
                let best = x
                    .events()
                    .iter()
                    .filter(|p| {
                        p.kind == EventKind::Ptw
                            && p.thread == e.thread
                            && p.va == e.va
                            && ghost_slot(p.id) < e_slot
                    })
                    .max_by_key(|p| ghost_slot(p.id));
                match best {
                    Some(p) => p.id,
                    None => return Err(WellformedError::MissingPtWalk(e.id)),
                }
            }
        };
        let w_slot = ghost_slot(src);
        let e_slot = slot[e.id.index()];
        if let Some(inv) = x.events().iter().find(|i| {
            (i.kind == EventKind::Invlpg && i.va == e.va || i.kind == EventKind::TlbFlush)
                && i.thread == e.thread
                && slot[i.id.index()] > w_slot
                && slot[i.id.index()] < e_slot
        }) {
            return Err(WellformedError::StaleTlbEntry {
                event: e.id,
                invlpg: inv.id,
            });
        }
        out[e.id.index()] = Some(src);
    }
    Ok(out)
}

/// Acyclicity of a pair set (used by axiom evaluation and tests).
pub fn is_acyclic(pairs: &PairSet) -> bool {
    // Kahn-style cycle detection over the event graph.
    use std::collections::{BTreeMap, BTreeSet};
    let mut succs: BTreeMap<EventId, Vec<EventId>> = BTreeMap::new();
    let mut indeg: BTreeMap<EventId, usize> = BTreeMap::new();
    let mut nodes: BTreeSet<EventId> = BTreeSet::new();
    for &(a, b) in pairs {
        succs.entry(a).or_default().push(b);
        *indeg.entry(b).or_insert(0) += 1;
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut queue: Vec<EventId> = nodes
        .iter()
        .copied()
        .filter(|e| !indeg.contains_key(e))
        .collect();
    let mut seen = 0usize;
    while let Some(e) = queue.pop() {
        seen += 1;
        for &s in succs.get(&e).into_iter().flatten() {
            let d = indeg.get_mut(&s).expect("edge target has indegree");
            *d -= 1;
            if *d == 0 {
                indeg.remove(&s);
                queue.push(s);
            }
        }
    }
    seen == nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::EltBuilder;
    use crate::ids::{Pa, Va};

    #[test]
    fn single_write_read_derives_rf_ptw_and_locations() {
        // Fig. 3b style: W x (+wdb, +ptw); then a same-VA read hits the TLB.
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, d, p) = b.write_walk(t, Va(0));
        let r = b.read(t, Va(0));
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        assert_eq!(a.tlb_source(r), Some(p));
        assert_eq!(a.tlb_source(w), Some(p));
        assert_eq!(a.location(w), Some(Location::Data(Pa(0))));
        assert_eq!(a.location(d), Some(Location::Pte(Va(0))));
        assert!(a.relation(BaseRel::RfPtw).contains(&(p, r)));
        assert!(a.relation(BaseRel::Ghost).contains(&(w, d)));
        // ptw_source: w invoked the walk that r reads.
        assert!(a.relation(BaseRel::PtwSource).contains(&(w, r)));
    }

    #[test]
    fn missing_walk_is_rejected() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.read(t, Va(0)); // no walk anywhere: TLB starts empty
        let x = b.build();
        assert_eq!(
            x.analyze().unwrap_err(),
            WellformedError::MissingPtWalk(EventId(0))
        );
    }

    #[test]
    fn invlpg_between_walk_and_use_is_rejected() {
        // Fig. 5b without the second walk: illegal.
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.read_walk(t, Va(0));
        let i = b.invlpg(t, Va(0));
        let r2 = b.read(t, Va(0));
        let x = b.build();
        assert_eq!(
            x.analyze().unwrap_err(),
            WellformedError::StaleTlbEntry {
                event: r2,
                invlpg: i
            }
        );
    }

    #[test]
    fn invlpg_with_new_walk_is_accepted() {
        // Fig. 5b: the second read re-walks.
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (_, p0) = b.read_walk(t, Va(0));
        b.invlpg(t, Va(0));
        let (r2, p2) = b.read_walk(t, Va(0));
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        assert_eq!(a.tlb_source(r2), Some(p2));
        assert_ne!(a.tlb_source(r2), Some(p0));
    }

    #[test]
    fn remap_must_cover_every_core() {
        let mut b = EltBuilder::new();
        let t0 = b.thread();
        let t1 = b.thread();
        let w = b.pte_write(t0, Va(0), Pa(1));
        let i0 = b.invlpg(t0, Va(0));
        b.remap(w, i0);
        // No INVLPG on t1 → ill-formed.
        let x = b.build();
        assert_eq!(
            x.analyze().unwrap_err(),
            WellformedError::RemapCoverage(w, t1)
        );
    }

    #[test]
    fn remapped_access_changes_location() {
        // WPTE x → PA b; INVLPG; R x via new mapping reads PA b.
        let mut b = EltBuilder::new();
        let t = b.thread();
        let w = b.pte_write(t, Va(0), Pa(1));
        let i = b.invlpg(t, Va(0));
        b.remap(w, i);
        let (r, p) = b.read_walk(t, Va(0));
        b.rf(w, p); // the walk reads the new PTE value
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        assert_eq!(a.location(r), Some(Location::Data(Pa(1))));
        assert!(a.relation(BaseRel::RfPa).contains(&(w, r)));
        assert!(a.relation(BaseRel::FrVa).is_empty());
    }

    #[test]
    fn stale_read_after_remap_has_fr_va() {
        // Fig. 10a (ptwalk2): the walk reads the *initial* mapping.
        let mut b = EltBuilder::new();
        let t = b.thread();
        let w = b.pte_write(t, Va(0), Pa(1));
        let i = b.invlpg(t, Va(0));
        b.remap(w, i);
        let (r, _p) = b.read_walk(t, Va(0));
        // No rf for the walk: it reads the initial PTE.
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        assert_eq!(a.location(r), Some(Location::Data(Pa(0))));
        assert!(a.relation(BaseRel::FrVa).contains(&(r, w)));
        // The walk reads-before the PTE write on the PTE location.
        let ptw = x.ghosts_of(r)[0];
        assert!(a.relation(BaseRel::Fr).contains(&(ptw, w)));
    }

    #[test]
    fn co_must_be_total() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w1, _, _) = b.write_walk(t, Va(0));
        let (w2, _) = b.write(t, Va(0));
        // Two same-location writes with no co order.
        let x = b.build();
        assert!(matches!(
            x.analyze().unwrap_err(),
            WellformedError::CoNotTotalOrder(_, _)
        ));
        let _ = (w1, w2);
    }

    #[test]
    fn dirty_bit_writes_are_coherence_ordered_with_pte_writes() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, d, p) = b.write_walk(t, Va(0));
        let wp = b.pte_write(t, Va(0), Pa(1));
        let i = b.invlpg(t, Va(0));
        b.remap(wp, i);
        b.co([d, wp]);
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        assert!(a.relation(BaseRel::Co).contains(&(d, wp)));
        // The walk read the initial PTE, so it reads-before both PTE-loc
        // writes.
        assert!(a.relation(BaseRel::Fr).contains(&(p, d)));
        assert!(a.relation(BaseRel::Fr).contains(&(p, wp)));
        let _ = w;
    }

    #[test]
    fn acyclicity_helper() {
        let mut s = PairSet::new();
        s.insert((EventId(0), EventId(1)));
        s.insert((EventId(1), EventId(2)));
        assert!(is_acyclic(&s));
        s.insert((EventId(2), EventId(0)));
        assert!(!is_acyclic(&s));
    }

    #[test]
    fn ppo_relaxes_write_to_read() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, _, _) = b.write_walk(t, Va(0));
        let (r, _) = b.read_walk(t, Va(1));
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        assert!(!a.relation(BaseRel::Ppo).contains(&(w, r)));
        assert!(a.relation(BaseRel::Apo).contains(&(w, r)));
    }

    #[test]
    fn fence_restores_order() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, _, _) = b.write_walk(t, Va(0));
        b.fence(t);
        let (r, _) = b.read_walk(t, Va(1));
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        assert!(a.relation(BaseRel::Fence).contains(&(w, r)));
    }

    #[test]
    fn rmw_must_be_adjacent() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (r, _) = b.read_walk(t, Va(0));
        b.fence(t);
        let (w, _) = b.write(t, Va(0));
        b.rmw(r, w);
        let x = b.build();
        assert!(matches!(
            x.analyze().unwrap_err(),
            WellformedError::BadRmw(_, _)
        ));
    }
}
