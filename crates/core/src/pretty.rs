//! Rendering candidate executions in the paper's figure style.

use crate::derive::{Analysis, BaseRel};
use crate::event::EventKind;
use crate::exec::Execution;
use crate::ids::{names, EventId};

/// Paper-style labels: user/support instructions numbered in `(thread,
/// slot)` order; ghosts share their invoker's subscript (Fig. 3).
pub fn labels(x: &Execution) -> Vec<String> {
    let mut number = vec![usize::MAX; x.events().len()];
    let mut next = 0usize;
    for t in 0..x.num_threads() {
        for &e in x.po_of(crate::ids::ThreadId(t)) {
            number[e.index()] = next;
            next += 1;
        }
    }
    for e in x.events() {
        if let Some(inv) = x.invoker(e.id) {
            number[e.id.index()] = number[inv.index()];
        }
    }
    x.events()
        .iter()
        .map(|e| format!("{}{}", e.mnemonic(), number[e.id.index()]))
        .collect()
}

/// One line of an event listing, e.g. `Rptw0 z = VA x → PA a`.
fn event_line(a: &Analysis<'_>, labels: &[String], e: EventId) -> String {
    let x = a.exec();
    let ev = x.event(e);
    let label = &labels[e.index()];
    match ev.kind {
        EventKind::Read => match x.rf_source(e) {
            Some(w) => format!("{label} {} = v({})", ev.va_unwrap(), labels[w.index()]),
            None => format!("{label} {} = 0", ev.va_unwrap()),
        },
        EventKind::Write => format!("{label} {} = new", ev.va_unwrap()),
        EventKind::Fence | EventKind::TlbFlush => label.clone(),
        EventKind::Invlpg => format!("{label} {}", ev.va_unwrap()),
        EventKind::PteWrite { .. } | EventKind::Ptw | EventKind::DirtyBitWrite => {
            let m = a.mapping(e).expect("pte accesses carry mappings");
            format!("{label} {} = {m}", names::pte(ev.va_unwrap().0))
        }
    }
}

/// Renders the execution as per-thread columns followed by the non-empty
/// MTM relations — the textual analogue of the paper's figures.
pub fn render(a: &Analysis<'_>) -> String {
    let x = a.exec();
    let labels = labels(x);

    // Events per thread in anchored order.
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); x.num_threads()];
    let mut order: Vec<EventId> = x.events().iter().map(|e| e.id).collect();
    order.sort_by_key(|&e| a.anchor(e));
    for e in order {
        let t = x.event(e).thread.0;
        columns[t].push(event_line(a, &labels, e));
    }

    let width = columns
        .iter()
        .flatten()
        .map(|l| l.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let rows = columns.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = String::new();
    for t in 0..x.num_threads() {
        if t > 0 {
            out.push_str(" | ");
        }
        out.push_str(&format!("{:width$}", format!("C{t}")));
    }
    out.push('\n');
    for r in 0..rows {
        for (t, col) in columns.iter().enumerate() {
            if t > 0 {
                out.push_str(" | ");
            }
            let cell = col.get(r).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{cell:width$}"));
        }
        out.push('\n');
    }

    // Relations of Table I that are non-empty and not fully derived noise.
    let shown = [
        BaseRel::Rf,
        BaseRel::Co,
        BaseRel::Fr,
        BaseRel::RfPtw,
        BaseRel::RfPa,
        BaseRel::CoPa,
        BaseRel::FrPa,
        BaseRel::FrVa,
        BaseRel::Remap,
        BaseRel::Rmw,
    ];
    for rel in shown {
        let pairs = a.relation(rel);
        if pairs.is_empty() {
            continue;
        }
        let body: Vec<String> = pairs
            .iter()
            .map(|&(p, q)| format!("{} → {}", labels[p.index()], labels[q.index()]))
            .collect();
        out.push_str(&format!("{}: {}\n", rel.name(), body.join(", ")));
    }
    out
}

/// Renders the execution as a Graphviz `dot` digraph in the style of the
/// paper's figures: one cluster per core (events in anchored order), one
/// styled edge set per relation.
///
/// Derived transitive edges are reduced for readability: `po` is drawn as
/// the per-thread successor chain, `co`/`co_pa` as their covering chains.
pub fn dot(a: &Analysis<'_>) -> String {
    let x = a.exec();
    let labels = labels(x);
    let node = |e: EventId| format!("e{}", e.0);
    let mut out =
        String::from("digraph elt {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");

    for t in 0..x.num_threads() {
        out.push_str(&format!(
            "  subgraph cluster_c{t} {{\n    label=\"C{t}\";\n"
        ));
        let mut order: Vec<EventId> = x
            .events()
            .iter()
            .filter(|e| e.thread.0 == t)
            .map(|e| e.id)
            .collect();
        order.sort_by_key(|&e| a.anchor(e));
        for e in order {
            let ghost = if x.event(e).kind.is_ghost() {
                ", style=dashed, color=gray40"
            } else {
                ""
            };
            out.push_str(&format!(
                "    {} [label=\"{}\"{}];\n",
                node(e),
                event_line(a, &labels, e),
                ghost
            ));
        }
        out.push_str("  }\n");
    }

    // po as the successor chain.
    for t in 0..x.num_threads() {
        let row = x.po_of(crate::ids::ThreadId(t));
        for pair in row.windows(2) {
            out.push_str(&format!(
                "  {} -> {} [label=\"po\", color=black];\n",
                node(pair[0]),
                node(pair[1])
            ));
        }
    }

    let styled = [
        (BaseRel::Rf, "red", false),
        (BaseRel::Fr, "orange", true),
        (BaseRel::Ghost, "gray50", true),
        (BaseRel::RfPtw, "purple", false),
        (BaseRel::RfPa, "darkgreen", false),
        (BaseRel::FrVa, "brown", true),
        (BaseRel::FrPa, "sienna", true),
        (BaseRel::Remap, "magenta", false),
        (BaseRel::Rmw, "blue4", false),
    ];
    for (rel, color, dashed) in styled {
        let style = if dashed { ", style=dashed" } else { "" };
        for &(p, q) in a.relation(rel) {
            out.push_str(&format!(
                "  {} -> {} [label=\"{}\", color={color}, fontcolor={color}{style}];\n",
                node(p),
                node(q),
                rel.name()
            ));
        }
    }
    // co / co_pa as covering chains.
    for (rel, color) in [(BaseRel::Co, "blue"), (BaseRel::CoPa, "cyan4")] {
        let pairs = a.relation(rel);
        for &(p, q) in pairs {
            // Covering edge: no intermediate element.
            let covered = pairs
                .iter()
                .any(|&(p2, m)| p2 == p && pairs.contains(&(m, q)));
            if !covered {
                out.push_str(&format!(
                    "  {} -> {} [label=\"{}\", color={color}, fontcolor={color}];\n",
                    node(p),
                    node(q),
                    rel.name()
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::EltBuilder;
    use crate::ids::{Pa, Va};

    #[test]
    fn labels_follow_paper_numbering() {
        // Fig. 10a: WPTE0, INVLPG1, R2 with ghost Rptw2.
        let mut b = EltBuilder::new();
        let t = b.thread();
        let w = b.pte_write(t, Va(0), Pa(1));
        let i = b.invlpg(t, Va(0));
        b.remap(w, i);
        let (r, p) = b.read_walk(t, Va(0));
        let x = b.build();
        let l = labels(&x);
        assert_eq!(l[w.index()], "WPTE0");
        assert_eq!(l[i.index()], "INVLPG1");
        assert_eq!(l[r.index()], "R2");
        assert_eq!(l[p.index()], "Rptw2"); // ghost shares subscript
    }

    #[test]
    fn render_mentions_every_event_and_key_relations() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let w = b.pte_write(t, Va(0), Pa(1));
        let i = b.invlpg(t, Va(0));
        b.remap(w, i);
        b.read_walk(t, Va(0));
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        let s = render(&a);
        assert!(s.contains("WPTE0"), "{s}");
        assert!(s.contains("Rptw2"), "{s}");
        assert!(s.contains("remap:"), "{s}");
        assert!(s.contains("fr_va:"), "{s}");
        assert!(s.contains("VA x → PA a"), "{s}");
    }

    #[test]
    fn dot_emits_clusters_and_styled_edges() {
        let x = crate::figures::fig10a_ptwalk2();
        let a = x.analyze().expect("well-formed");
        let g = dot(&a);
        assert!(g.starts_with("digraph elt {"), "{g}");
        assert!(g.contains("cluster_c0"), "{g}");
        assert!(g.contains("label=\"remap\""), "{g}");
        assert!(g.contains("label=\"fr_va\""), "{g}");
        assert!(g.contains("style=dashed"), "{g}");
        assert!(g.ends_with("}\n"), "{g}");
    }

    #[test]
    fn dot_reduces_coherence_to_covering_chain() {
        // Three same-location writes: 3 co pairs, only 2 covering edges.
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w1, _, _) = b.write_walk(t, Va(0));
        let (w2, _) = b.write(t, Va(0));
        let (w3, _) = b.write(t, Va(0));
        b.co([w1, w2, w3]);
        // Dirty-bit updates share the PTE location: order them too.
        let dbs: Vec<_> = [w1, w2, w3]
            .iter()
            .flat_map(|&w| b.clone().build().ghosts_of(w))
            .collect();
        let _ = dbs;
        let mut b2 = EltBuilder::new();
        let t = b2.thread();
        let (w1, d1, _) = b2.write_walk(t, Va(0));
        let (w2, d2) = b2.write(t, Va(0));
        let (w3, d3) = b2.write(t, Va(0));
        b2.co([w1, w2, w3]);
        b2.co([d1, d2, d3]);
        let x = b2.build();
        let a = x.analyze().expect("well-formed");
        let g = dot(&a);
        let co_edges = g.matches("label=\"co\"").count();
        assert_eq!(
            co_edges, 4,
            "two chains of three → four covering edges\n{g}"
        );
    }

    #[test]
    fn multi_thread_render_has_columns() {
        let mut b = EltBuilder::new();
        let t0 = b.thread();
        let t1 = b.thread();
        b.write_walk(t0, Va(0));
        b.read_walk(t1, Va(0));
        let x = b.build();
        let a = x.analyze().expect("well-formed");
        let s = render(&a);
        assert!(s.contains("C0"));
        assert!(s.contains("C1"));
        assert!(s.contains(" | "));
    }
}
