//! The paper's figure ELTs, reconstructed as candidate executions.
//!
//! Each constructor returns the candidate execution drawn in the
//! corresponding figure of the paper, with the same events, communication
//! choices, and (consequently) permitted/forbidden status under
//! `x86t_elt`. These are used throughout the test suites and examples.

use crate::exec::{EltBuilder, Execution};
use crate::ids::{Pa, Va};

const X: Va = Va(0);
const Y: Va = Va(1);
const A: Pa = Pa(0);
const B: Pa = Pa(1);
const C: Pa = Pa(2);

/// Fig. 2b — the store-buffering (sb) test mapped to an ELT where the
/// outcome `R1 y = 2, R3 x = 1` (the sequentially consistent outcome)
/// remains **permitted**. Ten events: four user instructions plus their
/// walks and dirty-bit updates.
pub fn fig2b_sb_elt() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let (w0, _db0, _p0) = b.write_walk(c0, X);
    let (r1, _p1) = b.read_walk(c0, Y);
    let (w2, _db2, _p2) = b.write_walk(c1, Y);
    let (r3, _p3) = b.read_walk(c1, X);
    b.rf(w2, r1); // R1 y reads W2
    b.rf(w0, r3); // R3 x reads W0
    b.build()
}

/// Fig. 2c — sb mapped to an ELT where a PTE write on C1 remaps `y` to
/// alias `x`'s physical page, making the outcome a **forbidden** coherence
/// violation (`sc_per_loc`).
pub fn fig2c_sb_elt_aliased() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    // C0: W0 x; INVLPG1 y; R2 y.
    let (w0, _db0, _p0) = b.write_walk(c0, X);
    let i1 = b.invlpg(c0, Y);
    let (r2, p2) = b.read_walk(c0, Y);
    // C1: WPTE3 v = y → a; INVLPG4 y; W5 y; R6 x.
    let wpte3 = b.pte_write(c1, Y, A);
    let i4 = b.invlpg(c1, Y);
    let (w5, db5, p5) = b.write_walk(c1, Y);
    let (r6, _p6) = b.read_walk(c1, X);
    b.remap(wpte3, i1);
    b.remap(wpte3, i4);
    // Both post-remap walks load the new mapping y → a.
    b.rf(wpte3, p2);
    b.rf(wpte3, p5);
    // Data: everything is now PA a. R2 reads W5; R6 reads W0.
    b.rf(w5, r2);
    b.rf(w0, r6);
    b.co([w0, w5]);
    // PTE location v coherence: the remap, then W5's dirty-bit update.
    b.co([wpte3, db5]);
    b.build()
}

/// Fig. 3a — a user read invoking a PT walk.
pub fn fig3a_read_walk() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    b.read_walk(c0, X);
    b.build()
}

/// Fig. 3b — a user write invoking a PT walk and a dirty-bit update.
pub fn fig3b_write_walk() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    b.write_walk(c0, X);
    b.build()
}

/// Fig. 4 — both `x` and `y` are remapped to alias PA `c`; the reads
/// before and after each remap exercise every `pa` edge (`rf_pa`, `co_pa`,
/// `fr_pa`, `fr_va`). Permitted.
pub fn fig4_remap_chain() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    b.read_walk(c0, X); // R0 x = 0 (via x → a)
    b.read_walk(c0, Y); // R1 y = 0 (via y → b)
    let wpte2 = b.pte_write(c0, Y, C);
    let i3 = b.invlpg(c0, Y);
    b.remap(wpte2, i3);
    let (_r4, p4) = b.read_walk(c0, Y); // R4 y via y → c
    b.rf(wpte2, p4);
    let wpte5 = b.pte_write(c0, X, C);
    let i6 = b.invlpg(c0, X);
    b.remap(wpte5, i6);
    let (_r7, p7) = b.read_walk(c0, X); // R7 x via x → c
    b.rf(wpte5, p7);
    // Alias-creation order on PA c: y first, then x (as drawn).
    b.co_pa([wpte2, wpte5]);
    b.build()
}

/// Fig. 5a — two reads sharing the TLB entry of one walk.
pub fn fig5a_tlb_hit() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    b.read_walk(c0, X);
    b.read(c0, X);
    b.build()
}

/// Fig. 5b — a spurious `INVLPG` between same-VA reads forces a re-walk.
pub fn fig5b_spurious_invlpg() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    b.read_walk(c0, X);
    b.invlpg(c0, X); // spurious: no remap edge
    b.read_walk(c0, X);
    b.build()
}

/// Fig. 6c/6d — the remap test whose MCM rendering (Fig. 6b) is ambiguous
/// about which write `R4`/`R6` reads; the ELT disambiguates it. Permitted.
pub fn fig6_remap_disambiguated() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    // C0: R0 x (via x → a); WPTE1 z = x → b; INVLPG2 x; W3 x (via x → b).
    b.read_walk(c0, X);
    let wpte1 = b.pte_write(c0, X, B);
    let i2 = b.invlpg(c0, X);
    let (w3, db3, p3) = b.write_walk(c0, X);
    // C1: W4 x (via x → a); INVLPG5 x; R6 x (via x → b).
    let (_w4, db4, _p4) = b.write_walk(c1, X);
    let i5 = b.invlpg(c1, X);
    let (r6, p6) = b.read_walk(c1, X);
    b.remap(wpte1, i2);
    b.remap(wpte1, i5);
    b.rf(wpte1, p3);
    b.rf(wpte1, p6);
    b.rf(w3, r6); // disambiguated: R6 reads W3 (both via x → b)
                  // PTE-location z coherence: W4's dirty bit (old mapping), the remap,
                  // then W3's dirty bit (new mapping).
    b.co([db4, wpte1, db3]);
    b.build()
}

/// Fig. 10a — the COATCheck `ptwalk2` ELT, synthesized verbatim by
/// TransForm. The walk reads the *stale* mapping despite the preceding
/// remap and INVLPG: **forbidden** (violates both `sc_per_loc` and
/// `invlpg`).
pub fn fig10a_ptwalk2() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let wpte0 = b.pte_write(c0, X, B);
    let i1 = b.invlpg(c0, X);
    b.remap(wpte0, i1);
    b.read_walk(c0, X); // walk reads the initial PTE (no rf): stale
    b.build()
}

/// Fig. 10b — the COATCheck `dirtybit3` ELT: **permitted**, and not
/// minimal (removing `{W3}` exposes the `ptwalk2` program).
pub fn fig10b_dirtybit3() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let wpte0 = b.pte_write(c0, X, B);
    let i1 = b.invlpg(c0, X);
    b.remap(wpte0, i1);
    let (_r2, p2) = b.read_walk(c0, X);
    b.rf(wpte0, p2); // reads the fresh mapping x → b
    let (_w3, db3, p3) = b.write_walk(c0, X); // capacity-evicted: re-walks
    b.rf(wpte0, p3);
    b.co([wpte0, db3]);
    b.build()
}

/// Fig. 11 — a newly synthesized ELT: the remap's INVLPG on the *other*
/// core precedes a read that still uses the stale mapping. **Forbidden**
/// (violates `invlpg` only — the cycle crosses cores through `remap`).
pub fn fig11_cross_core_invlpg() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let wpte0 = b.pte_write(c0, X, B);
    let i1 = b.invlpg(c0, X);
    let i2 = b.invlpg(c1, X);
    b.remap(wpte0, i1);
    b.remap(wpte0, i2);
    b.read_walk(c1, X); // stale walk: reads the initial PTE
    b.build()
}

/// Extension (§III-B2 future work) — Fig. 11 with the remote `INVLPG`
/// replaced by a full TLB flush: the remap's flush on the other core
/// precedes a read that still walks to the stale mapping. **Forbidden**
/// (violates `invlpg`) for exactly the same `fr_va + remap + ^po` cycle —
/// the coarser IPI provides no weaker guarantee.
pub fn ext_cross_core_flush() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let c1 = b.thread();
    let wpte0 = b.pte_write(c0, X, B);
    let i1 = b.invlpg(c0, X);
    let f2 = b.tlb_flush(c1);
    b.remap(wpte0, i1);
    b.remap(wpte0, f2);
    b.read_walk(c1, X); // stale walk: reads the initial PTE
    b.build()
}

/// Extension (§III-B2 future work) — a spurious full flush forces the
/// next access to re-walk (the flush analogue of Fig. 5b): **permitted**.
pub fn ext_spurious_flush() -> Execution {
    let mut b = EltBuilder::new();
    let c0 = b.thread();
    let (_r0, p0) = b.read_walk(c0, X);
    b.tlb_flush(c0);
    let (_r2, p2) = b.read_walk(c0, X);
    let _ = (p0, p2);
    b.build()
}

/// Every figure execution, with its name and expected `x86t_elt` status —
/// used by the integration tests and by EXPERIMENTS.md generation.
pub fn all_figures() -> Vec<(&'static str, Execution, bool)> {
    vec![
        ("fig2b_sb_elt", fig2b_sb_elt(), true),
        ("fig2c_sb_elt_aliased", fig2c_sb_elt_aliased(), false),
        ("fig3a_read_walk", fig3a_read_walk(), true),
        ("fig3b_write_walk", fig3b_write_walk(), true),
        ("fig4_remap_chain", fig4_remap_chain(), true),
        ("fig5a_tlb_hit", fig5a_tlb_hit(), true),
        ("fig5b_spurious_invlpg", fig5b_spurious_invlpg(), true),
        ("fig6_remap_disambiguated", fig6_remap_disambiguated(), true),
        ("fig10a_ptwalk2", fig10a_ptwalk2(), false),
        ("fig10b_dirtybit3", fig10b_dirtybit3(), true),
        ("fig11_cross_core_invlpg", fig11_cross_core_invlpg(), false),
        ("ext_cross_core_flush", ext_cross_core_flush(), false),
        ("ext_spurious_flush", ext_spurious_flush(), true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_is_well_formed() {
        for (name, x, _) in all_figures() {
            assert!(x.is_well_formed(), "{name}: {:?}", x.analyze().err());
        }
    }

    #[test]
    fn event_counts_match_the_paper() {
        assert_eq!(fig2b_sb_elt().size(), 10);
        assert_eq!(fig2c_sb_elt_aliased().size(), 13);
        assert_eq!(fig3a_read_walk().size(), 2);
        assert_eq!(fig3b_write_walk().size(), 3);
        assert_eq!(fig10a_ptwalk2().size(), 4);
        assert_eq!(fig11_cross_core_invlpg().size(), 5);
    }

    #[test]
    fn flush_evicts_everything_placement_rules() {
        // A hit across a full flush is rejected just like a hit across a
        // same-VA INVLPG (Fig. 5b's rule, lifted to the coarser IPI).
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.read_walk(t, X);
        b.tlb_flush(t);
        b.read(t, X); // claims a TLB hit across the flush
        let x = b.build();
        assert!(!x.is_well_formed());
        assert!(matches!(
            x.analyze().unwrap_err(),
            crate::wellformed::WellformedError::StaleTlbEntry { .. }
        ));
    }

    #[test]
    fn flush_may_serve_as_remap_invalidation_for_any_va() {
        // The remap edge to a full flush carries no VA constraint.
        let x = ext_cross_core_flush();
        assert!(x.is_well_formed(), "{:?}", x.analyze().err());
        assert_eq!(x.size(), 5);
    }

    #[test]
    fn fig10a_has_the_fr_va_remap_po_cycle() {
        use crate::derive::BaseRel;
        let x = fig10a_ptwalk2();
        let a = x.analyze().expect("well-formed");
        let fr_va = a.relation(BaseRel::FrVa);
        let remap = a.relation(BaseRel::Remap);
        let po = a.relation(BaseRel::Po);
        // R2 -fr_va-> WPTE0 -remap-> INVLPG1 -po-> R2.
        assert_eq!(fr_va.len(), 1);
        assert_eq!(remap.len(), 1);
        let (r, wpte) = *fr_va.iter().next().expect("one fr_va edge");
        let (wpte2, inv) = *remap.iter().next().expect("one remap edge");
        assert_eq!(wpte, wpte2);
        assert!(po.contains(&(inv, r)));
    }
}
