//! Well-formedness of candidate executions — the paper's *placement rules*.
//!
//! §IV-A: "synthesizing candidate ELTs requires a more complex set of
//! axioms to describe a legal program execution". Those legality rules are
//! enforced here (the checks themselves run inside
//! [`crate::exec::Execution::analyze`]); this module defines the error
//! vocabulary describing every way an ELT can be malformed.

use crate::ids::{EventId, ThreadId};
use std::error::Error;
use std::fmt;

/// Why a candidate execution is not a legal ELT.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WellformedError {
    /// Event ids are not dense/consistent with their position.
    CorruptEventTable,
    /// A fence carries a VA, or a non-fence lacks one.
    BadVa(EventId),
    /// A thread's program order mentions a missing or foreign event.
    CorruptProgramOrder(ThreadId),
    /// A ghost-relation entry whose target is not a ghost instruction, or a
    /// ghost instruction with no invoker.
    OrphanGhost(EventId),
    /// A ghost's invoker is missing, itself a ghost, on another thread, or
    /// of the wrong kind (walks attach to loads/stores, dirty-bit writes to
    /// stores), or disagrees on the VA.
    BadInvoker {
        /// The ghost instruction.
        ghost: EventId,
        /// The claimed invoker.
        invoker: EventId,
    },
    /// A user write without exactly one dirty-bit update (§III-A2).
    DirtyBitCount(EventId),
    /// A user memory event with more than one page-table walk.
    WalkCount(EventId),
    /// An `rmw` pair that is not an adjacent same-VA read/write pair.
    BadRmw(EventId, EventId),
    /// A user memory event with no TLB entry to read: no walk for its VA
    /// precedes it on its core (§III-A1 — TLBs start empty).
    MissingPtWalk(EventId),
    /// A user memory event whose only candidate TLB entry was evicted by an
    /// intervening `INVLPG` (§III-B2, Fig. 5b).
    StaleTlbEntry {
        /// The access that needed the mapping.
        event: EventId,
        /// The INVLPG that evicted it.
        invlpg: EventId,
    },
    /// The address-mapping provenance chain is circular (a dirty-bit write
    /// feeding the walk that defines its own mapping).
    CyclicProvenance(EventId),
    /// An `rf` edge whose endpoints are not a write sourcing a read of the
    /// compatible stratum (user write → user read; PTE/dirty-bit write →
    /// walk).
    RfKindMismatch(EventId, EventId),
    /// An `rf` edge between accesses to different physical locations.
    RfLocationMismatch(EventId, EventId),
    /// `co` relates events that are not two distinct writes to one
    /// location.
    BadCoPair(EventId, EventId),
    /// `co` is not a strict total order per location.
    CoNotTotalOrder(EventId, EventId),
    /// `co_pa` relates events that are not two distinct PTE writes mapping
    /// to one PA.
    BadCoPaPair(EventId, EventId),
    /// `co_pa` is not a strict total order per target PA.
    CoPaNotTotalOrder(EventId, EventId),
    /// A `remap` edge whose endpoints are not a PTE write and a same-VA
    /// `INVLPG`.
    BadRemap(EventId, EventId),
    /// A PTE write lacking exactly one remap-invoked `INVLPG` on some core
    /// (§III-B2: mappings must be invalidated in the TLBs of all cores).
    RemapCoverage(EventId, ThreadId),
    /// An `INVLPG` invoked by two different PTE writes.
    SharedInvlpg(EventId),
    /// A PTE write whose same-core `INVLPG` does not follow it in program
    /// order.
    RemapOrder(EventId, EventId),
}

impl fmt::Display for WellformedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use WellformedError::*;
        match self {
            CorruptEventTable => write!(f, "event ids are not dense"),
            BadVa(e) => write!(f, "event {} has a malformed VA field", e.0),
            CorruptProgramOrder(t) => write!(f, "program order of {t} is corrupt"),
            OrphanGhost(e) => write!(f, "ghost bookkeeping for event {} is wrong", e.0),
            BadInvoker { ghost, invoker } => {
                write!(f, "ghost {} has illegal invoker {}", ghost.0, invoker.0)
            }
            DirtyBitCount(e) => write!(f, "write {} must invoke exactly one dirty-bit update", e.0),
            WalkCount(e) => write!(f, "event {} invokes more than one PT walk", e.0),
            BadRmw(r, w) => write!(f, "({}, {}) is not a legal rmw pair", r.0, w.0),
            MissingPtWalk(e) => write!(f, "event {} has no TLB entry to read", e.0),
            StaleTlbEntry { event, invlpg } => write!(
                f,
                "event {} uses a TLB entry evicted by INVLPG {}",
                event.0, invlpg.0
            ),
            CyclicProvenance(e) => {
                write!(f, "address-mapping provenance of event {} is circular", e.0)
            }
            RfKindMismatch(w, r) => {
                write!(f, "rf edge {} -> {} mixes event strata", w.0, r.0)
            }
            RfLocationMismatch(w, r) => {
                write!(f, "rf edge {} -> {} crosses locations", w.0, r.0)
            }
            BadCoPair(a, b) => write!(f, "co pair ({}, {}) is malformed", a.0, b.0),
            CoNotTotalOrder(a, b) => write!(
                f,
                "co does not totally order same-location writes {} and {}",
                a.0, b.0
            ),
            BadCoPaPair(a, b) => write!(f, "co_pa pair ({}, {}) is malformed", a.0, b.0),
            CoPaNotTotalOrder(a, b) => write!(
                f,
                "co_pa does not totally order PTE writes {} and {}",
                a.0, b.0
            ),
            BadRemap(w, i) => write!(f, "remap edge {} -> {} is malformed", w.0, i.0),
            RemapCoverage(w, t) => write!(f, "PTE write {} needs exactly one INVLPG on {t}", w.0),
            SharedInvlpg(i) => write!(f, "INVLPG {} serves two PTE writes", i.0),
            RemapOrder(w, i) => write!(
                f,
                "same-core INVLPG {} must follow PTE write {} in po",
                i.0, w.0
            ),
        }
    }
}

impl Error for WellformedError {}
