//! Crate-level tests: model-finding examples plus randomized cross-checks
//! between the SAT translation and the ground evaluator.

use crate::{Expr, Formula, Problem, TupleSet, Universe};
use proptest::prelude::*;

fn u3() -> Universe {
    Universe::new(["a", "b", "c"])
}

#[test]
fn unconstrained_binary_relation_has_all_models() {
    let u = Universe::new(["a", "b"]);
    let mut p = Problem::new(u);
    p.declare_free("r", 2);
    // 2^(2*2) = 16 subsets.
    assert_eq!(p.solutions().count(), 16);
}

#[test]
fn bounds_are_respected() {
    let u = u3();
    let mut p = Problem::new(u);
    let lower = TupleSet::from_pairs([(0, 1)]);
    let upper = TupleSet::from_pairs([(0, 1), (1, 2)]);
    let r = p.declare("r", 2, lower, upper);
    let models: Vec<_> = p.solutions().collect();
    assert_eq!(models.len(), 2);
    for m in &models {
        assert!(m.get(r).contains(&[0, 1]));
        for t in m.get(r).iter() {
            assert!(t == &vec![0, 1] || t == &vec![1, 2]);
        }
    }
}

#[test]
fn acyclic_total_orders_count_factorial() {
    for n in 2..=4usize {
        let names: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let u = Universe::new(names);
        let mut p = Problem::new(u.clone());
        let r = p.declare_free("lt", 2);
        let lt = Expr::rel(r);
        p.require(Formula::acyclic(lt.clone()));
        p.require(Formula::subset(
            Expr::univ(1).product(Expr::univ(1)).diff(Expr::iden()),
            lt.clone().union(lt.transpose()),
        ));
        let fact: usize = (1..=n).product();
        assert_eq!(p.solutions().count(), fact, "n = {n}");
    }
}

#[test]
fn functional_relation_via_one() {
    // f: each atom maps to exactly one atom => n^n models.
    let u = u3();
    let mut p = Problem::new(u.clone());
    let f = p.declare_free("f", 2);
    for a in u.atoms() {
        p.require(Formula::one(Expr::atom(a).join(Expr::rel(f))));
    }
    assert_eq!(p.solutions().count(), 27);
}

#[test]
fn unsat_when_contradictory() {
    let u = u3();
    let mut p = Problem::new(u);
    let r = p.declare_free("r", 2);
    p.require(Formula::some(Expr::rel(r)));
    p.require(Formula::no(Expr::rel(r)));
    assert!(p.solve().is_none());
}

#[test]
fn closure_constraint_forces_path() {
    // r is a subset of a 3-chain; require (a, c) reachable => both edges in.
    let u = u3();
    let mut p = Problem::new(u);
    let upper = TupleSet::from_pairs([(0, 1), (1, 2)]);
    let r = p.declare("r", 2, TupleSet::empty(2), upper);
    p.require(Formula::subset(Expr::pair(0, 2), Expr::rel(r).closure()));
    let models: Vec<_> = p.solutions().collect();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].get(r).len(), 2);
}

#[test]
fn transpose_and_symmetry() {
    let u = Universe::new(["a", "b"]);
    let mut p = Problem::new(u);
    let r = p.declare_free("r", 2);
    // Symmetric and irreflexive over two atoms.
    p.require(Formula::equal(Expr::rel(r), Expr::rel(r).transpose()));
    p.require(Formula::irreflexive(Expr::rel(r)));
    // Models: {} and {(a,b),(b,a)}.
    assert_eq!(p.solutions().count(), 2);
}

#[test]
fn lone_counts_correctly() {
    let u = u3();
    let mut p = Problem::new(u);
    let s = p.declare_free("s", 1);
    p.require(Formula::lone(Expr::rel(s)));
    // {} plus three singletons.
    assert_eq!(p.solutions().count(), 4);
}

#[test]
fn instance_eval_matches_construction() {
    let u = u3();
    let mut p = Problem::new(u);
    let r = p.declare_exact("r", TupleSet::from_pairs([(0, 1), (1, 2)]));
    let inst = p.solve().expect("exact bounds are satisfiable");
    let closure = inst.eval(&Expr::rel(r).closure());
    assert!(closure.contains(&[0, 2]));
    assert!(inst.holds(&Formula::acyclic(Expr::rel(r))));
    assert!(!inst.holds(&Formula::no(Expr::rel(r))));
}

#[test]
fn get_by_name_finds_relations() {
    let u = u3();
    let mut p = Problem::new(u);
    p.declare_exact("edges", TupleSet::from_pairs([(0, 1)]));
    let inst = p.solve().expect("satisfiable");
    assert!(inst.get_by_name("edges").is_some());
    assert!(inst.get_by_name("missing").is_none());
}

// --- randomized cross-checks ---

/// A small random formula AST over two binary and one unary relation.
#[derive(Clone, Debug)]
enum RandExpr {
    R0,
    R1,
    S0,
    Iden,
    Union(Box<RandExpr>, Box<RandExpr>),
    Inter(Box<RandExpr>, Box<RandExpr>),
    Diff(Box<RandExpr>, Box<RandExpr>),
    Join(Box<RandExpr>, Box<RandExpr>),
    Transpose(Box<RandExpr>),
    Closure(Box<RandExpr>),
}

impl RandExpr {
    fn arity(&self) -> usize {
        match self {
            RandExpr::R0 | RandExpr::R1 | RandExpr::Iden => 2,
            RandExpr::S0 => 1,
            RandExpr::Union(a, _) | RandExpr::Inter(a, _) | RandExpr::Diff(a, _) => a.arity(),
            RandExpr::Join(a, b) => a.arity() + b.arity() - 2,
            RandExpr::Transpose(_) | RandExpr::Closure(_) => 2,
        }
    }

    fn to_expr(&self, rels: &[crate::RelId; 3]) -> Expr {
        match self {
            RandExpr::R0 => Expr::rel(rels[0]),
            RandExpr::R1 => Expr::rel(rels[1]),
            RandExpr::S0 => Expr::rel(rels[2]),
            RandExpr::Iden => Expr::iden(),
            RandExpr::Union(a, b) => a.to_expr(rels).union(b.to_expr(rels)),
            RandExpr::Inter(a, b) => a.to_expr(rels).inter(b.to_expr(rels)),
            RandExpr::Diff(a, b) => a.to_expr(rels).diff(b.to_expr(rels)),
            RandExpr::Join(a, b) => a.to_expr(rels).join(b.to_expr(rels)),
            RandExpr::Transpose(a) => a.to_expr(rels).transpose(),
            RandExpr::Closure(a) => a.to_expr(rels).closure(),
        }
    }
}

fn rand_expr() -> impl Strategy<Value = RandExpr> {
    let leaf = prop_oneof![
        Just(RandExpr::R0),
        Just(RandExpr::R1),
        Just(RandExpr::S0),
        Just(RandExpr::Iden),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { RandExpr::Union(Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { RandExpr::Inter(Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { RandExpr::Diff(Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { RandExpr::Join(Box::new(a), Box::new(b)) }),
            inner.clone().prop_map(|a| RandExpr::Transpose(Box::new(a))),
            inner.prop_map(|a| RandExpr::Closure(Box::new(a))),
        ]
    })
}

/// Repairs a random expression so every operator is applied at legal
/// arities (binary-only transpose/closure, matching set ops, join ≥ 1).
fn legalize(e: RandExpr) -> RandExpr {
    match e {
        RandExpr::Union(a, b) | RandExpr::Inter(a, b) | RandExpr::Diff(a, b) => {
            let (a, b) = (legalize(*a), legalize(*b));
            let (a, b) = if a.arity() == b.arity() {
                (a, b)
            } else {
                (a.clone(), a)
            };
            RandExpr::Union(Box::new(a), Box::new(b))
        }
        RandExpr::Join(a, b) => {
            let (a, b) = (legalize(*a), legalize(*b));
            if a.arity() + b.arity() - 2 >= 1 && a.arity() + b.arity() - 2 <= 2 {
                RandExpr::Join(Box::new(a), Box::new(b))
            } else {
                a
            }
        }
        RandExpr::Transpose(a) => {
            let a = legalize(*a);
            if a.arity() == 2 {
                RandExpr::Transpose(Box::new(a))
            } else {
                RandExpr::Iden
            }
        }
        RandExpr::Closure(a) => {
            let a = legalize(*a);
            if a.arity() == 2 {
                RandExpr::Closure(Box::new(a))
            } else {
                RandExpr::Iden
            }
        }
        leaf => leaf,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every SAT model satisfies the formula under ground evaluation, and
    /// the model count matches a brute-force count over the free tuples.
    #[test]
    fn sat_models_agree_with_ground_eval(e in rand_expr(), nonempty in any::<bool>()) {
        let e = legalize(e);
        let u = Universe::new(["a", "b"]);
        let mut p = Problem::new(u.clone());
        let r0 = p.declare_free("r0", 2);
        // Keep the search space small: r1 and s0 are fixed.
        let r1 = p.declare_exact("r1", TupleSet::from_pairs([(0, 1)]));
        let s0 = p.declare_exact("s0", TupleSet::from_atoms([0]));
        let rels = [r0, r1, s0];
        let expr = e.to_expr(&rels);
        let formula = if nonempty {
            Formula::some(expr)
        } else {
            Formula::no(expr)
        };
        p.require(formula.clone());

        let mut count = 0usize;
        for inst in p.solutions() {
            prop_assert!(inst.holds(&formula), "model violates formula: {inst:?}");
            count += 1;
            prop_assert!(count <= 16);
        }

        // Brute force over all 16 values of r0.
        let mut expected = 0usize;
        for mask in 0u32..16 {
            let mut ts = TupleSet::empty(2);
            for (bit, pair) in [(0, (0, 0)), (1, (0, 1)), (2, (1, 0)), (3, (1, 1))] {
                if (mask >> bit) & 1 == 1 {
                    ts.insert(vec![pair.0, pair.1]);
                }
            }
            let inst = crate::Instance::from_values(
                u.clone(),
                vec!["r0".into(), "r1".into(), "s0".into()],
                vec![ts, TupleSet::from_pairs([(0, 1)]), TupleSet::from_atoms([0])],
            );
            if inst.holds(&formula) {
                expected += 1;
            }
        }
        prop_assert_eq!(count, expected);
    }

    /// Ground-evaluator algebra sanity: closure is a fixpoint containing
    /// the relation, transpose is an involution.
    #[test]
    fn ground_algebra_laws(pairs in proptest::collection::vec((0usize..3, 0usize..3), 0..6)) {
        let r = TupleSet::from_pairs(pairs);
        let c = r.closure();
        prop_assert!(r.is_subset(&c));
        prop_assert_eq!(c.join(&c).union(&c), c.clone());
        prop_assert_eq!(r.transpose().transpose(), r);
    }

    /// A shared-solver session enumerates exactly the model sets that
    /// fresh per-problem solvers do, for an arbitrary problem sequence.
    #[test]
    fn session_matches_fresh_solvers(
        exprs in proptest::collection::vec(rand_expr(), 1..5),
        nonempty in any::<bool>(),
    ) {
        let u = Universe::new(["a", "b"]);
        let mut session = crate::Session::new();
        for e in exprs {
            let e = legalize(e);
            let mut p = Problem::new(u.clone());
            let r0 = p.declare_free("r0", 2);
            let r1 = p.declare_exact("r1", TupleSet::from_pairs([(0, 1)]));
            let s0 = p.declare_exact("s0", TupleSet::from_atoms([0]));
            let expr = e.to_expr(&[r0, r1, s0]);
            p.require(if nonempty {
                Formula::some(expr)
            } else {
                Formula::no(expr)
            });

            let fresh: std::collections::BTreeSet<Vec<Vec<usize>>> = p
                .solutions()
                .map(|i| i.get(r0).iter().cloned().collect())
                .collect();
            let shared: std::collections::BTreeSet<Vec<Vec<usize>>> = session
                .solve_all(&p, usize::MAX)
                .iter()
                .map(|i| i.get(r0).iter().cloned().collect())
                .collect();
            prop_assert_eq!(fresh, shared);
        }
    }
}

#[test]
fn session_retires_problems_and_retains_learning() {
    // Solving the same factorial-count problem repeatedly on one session
    // must keep producing exactly n! models — retired activation groups
    // may not leak constraints into later problems.
    let names: Vec<String> = (0..4).map(|i| format!("a{i}")).collect();
    let u = Universe::new(names);
    let mut session = crate::Session::new();
    for round in 0..3 {
        let mut p = Problem::new(u.clone());
        let r = p.declare_free("lt", 2);
        let lt = Expr::rel(r);
        p.require(Formula::acyclic(lt.clone()));
        p.require(Formula::subset(
            Expr::univ(1).product(Expr::univ(1)).diff(Expr::iden()),
            lt.clone().union(lt.transpose()),
        ));
        assert_eq!(session.solve_all(&p, usize::MAX).len(), 24, "round {round}");
    }
    assert_eq!(session.problems_solved(), 3);
    // One solver served every call.
    assert!(session.solver_stats().solve_calls >= 3 * 24);
}

#[test]
fn session_respects_limits_and_unsat() {
    let u = u3();
    let mut session = crate::Session::new();
    let mut p = Problem::new(u.clone());
    p.declare_free("r", 2);
    assert_eq!(session.solve_all(&p, 5).len(), 5);

    let mut contradictory = Problem::new(u);
    let r = contradictory.declare_free("r", 1);
    contradictory.require(Formula::some(Expr::rel(r)));
    contradictory.require(Formula::no(Expr::rel(r)));
    assert!(session.solve_all(&contradictory, usize::MAX).is_empty());
    // The session survives an unsat problem.
    let mut p2 = Problem::new(u3());
    p2.declare_free("r", 1);
    assert_eq!(session.solve_all(&p2, usize::MAX).len(), 8);
}

#[test]
fn session_survives_tautological_constraints() {
    // Regression: a tautology that is not structurally folded to true
    // (r ⊆ r ∪ s) forces its Tseitin root true in every model. Retiring
    // that problem must not unsatisfy the shared solver for good.
    let u = u3();
    let mut session = crate::Session::new();
    let mut taut = Problem::new(u.clone());
    let r = taut.declare_free("r", 2);
    let s = taut.declare_free("s", 2);
    taut.require(Formula::subset(
        Expr::rel(r),
        Expr::rel(r).union(Expr::rel(s)),
    ));
    // 2^9 subsets for each of r and s over 3 atoms, capped by the limit.
    assert_eq!(session.solve_all(&taut, 600).len(), 600);

    // The next problem on the same session must still enumerate fully.
    let mut p = Problem::new(u);
    p.declare_free("r", 1);
    assert_eq!(session.solve_all(&p, usize::MAX).len(), 8);
}
