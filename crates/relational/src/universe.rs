//! The finite universe of atoms.

use std::fmt;
use std::sync::Arc;

/// An ordered, finite set of named atoms.
///
/// Atom indices are dense (`0..size`), and all tuple sets and relation
/// bounds of a [`crate::Problem`] range over one universe. Cloning is cheap
/// (the name table is shared).
///
/// # Examples
///
/// ```
/// use relational::Universe;
/// let u = Universe::new(["e0", "e1", "e2"]);
/// assert_eq!(u.size(), 3);
/// assert_eq!(u.atom("e1"), Some(1));
/// assert_eq!(u.name(2), "e2");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Universe {
    names: Arc<Vec<String>>,
}

impl Universe {
    /// Creates a universe from atom names, indexed in order.
    ///
    /// # Panics
    ///
    /// Panics if two atoms share a name.
    pub fn new<I, S>(names: I) -> Universe
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate atom names");
        Universe {
            names: Arc::new(names),
        }
    }

    /// Number of atoms.
    pub fn size(&self) -> usize {
        self.names.len()
    }

    /// Index of the atom called `name`, if present.
    pub fn atom(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Name of atom `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Iterates over all atom indices.
    pub fn atoms(&self) -> impl Iterator<Item = usize> {
        0..self.size()
    }
}

impl fmt::Debug for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Universe{:?}", self.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_iteration() {
        let u = Universe::new(["x", "y"]);
        assert_eq!(u.size(), 2);
        assert_eq!(u.atom("y"), Some(1));
        assert_eq!(u.atom("z"), None);
        assert_eq!(u.atoms().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let _ = Universe::new(["x", "x"]);
    }
}
