//! A tiny Tseitin circuit layer over the `tsat` solver.

use tsat::{Lit, Solver};

/// A boolean value in the circuit: constant or literal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum B {
    T,
    F,
    L(Lit),
}

/// Builds Tseitin-encoded gates directly into a [`Solver`].
pub(crate) struct Circuit {
    pub(crate) solver: Solver,
}

impl Circuit {
    pub(crate) fn new() -> Circuit {
        Circuit {
            solver: Solver::new(),
        }
    }

    pub(crate) fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    pub(crate) fn not(&self, a: B) -> B {
        match a {
            B::T => B::F,
            B::F => B::T,
            B::L(l) => B::L(!l),
        }
    }

    pub(crate) fn and2(&mut self, a: B, b: B) -> B {
        match (a, b) {
            (B::F, _) | (_, B::F) => B::F,
            (B::T, x) | (x, B::T) => x,
            (B::L(x), B::L(y)) => {
                if x == y {
                    return B::L(x);
                }
                if x == !y {
                    return B::F;
                }
                let g = self.fresh();
                self.solver.add_clause([!g, x]);
                self.solver.add_clause([!g, y]);
                self.solver.add_clause([g, !x, !y]);
                B::L(g)
            }
        }
    }

    pub(crate) fn or2(&mut self, a: B, b: B) -> B {
        let na = self.not(a);
        let nb = self.not(b);
        let n = self.and2(na, nb);
        self.not(n)
    }

    pub(crate) fn and_all<I: IntoIterator<Item = B>>(&mut self, items: I) -> B {
        let mut lits = Vec::new();
        for x in items {
            match x {
                B::F => return B::F,
                B::T => {}
                B::L(l) => lits.push(l),
            }
        }
        lits.sort_unstable();
        lits.dedup();
        if lits.iter().any(|&l| lits.binary_search(&!l).is_ok()) {
            return B::F;
        }
        match lits.len() {
            0 => B::T,
            1 => B::L(lits[0]),
            _ => {
                let g = self.fresh();
                for &l in &lits {
                    self.solver.add_clause([!g, l]);
                }
                let mut long: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                long.push(g);
                self.solver.add_clause(long);
                B::L(g)
            }
        }
    }

    pub(crate) fn or_all<I: IntoIterator<Item = B>>(&mut self, items: I) -> B {
        let negated: Vec<B> = items.into_iter().map(|x| self.not(x)).collect();
        let n = self.and_all(negated);
        self.not(n)
    }

    /// At most one of `items` is true (pairwise encoding).
    pub(crate) fn at_most_one(&mut self, items: &[B]) -> B {
        let mut constraints = Vec::new();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let ni = self.not(items[i]);
                let nj = self.not(items[j]);
                constraints.push(self.or2(ni, nj));
            }
        }
        self.and_all(constraints)
    }

    /// Asserts that `b` holds.
    pub(crate) fn assert_true(&mut self, b: B) {
        match b {
            B::T => {}
            B::F => {
                // An unsatisfiable assertion: add the empty clause.
                self.solver.add_clause([]);
            }
            B::L(l) => {
                self.solver.add_clause([l]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let x = B::L(c.fresh());
        assert_eq!(c.and2(B::T, x), x);
        assert_eq!(c.and2(B::F, x), B::F);
        assert_eq!(c.or2(B::T, x), B::T);
        assert_eq!(c.or2(B::F, x), x);
        assert_eq!(c.not(B::T), B::F);
        assert_eq!(c.and_all([]), B::T);
        assert_eq!(c.or_all([]), B::F);
    }

    #[test]
    fn contradictory_conjunction_folds_to_false() {
        let mut c = Circuit::new();
        let x = c.fresh();
        assert_eq!(c.and_all([B::L(x), B::L(!x)]), B::F);
        assert_eq!(c.and2(B::L(x), B::L(!x)), B::F);
        assert_eq!(c.and2(B::L(x), B::L(x)), B::L(x));
    }

    #[test]
    fn gate_semantics() {
        let mut c = Circuit::new();
        let x = c.fresh();
        let y = c.fresh();
        let g = c.and2(B::L(x), B::L(y));
        let B::L(gl) = g else {
            panic!("expected literal")
        };
        c.assert_true(B::L(gl));
        assert!(c.solver.solve().is_sat());
        assert_eq!(c.solver.value(x.var()), Some(true));
        assert_eq!(c.solver.value(y.var()), Some(true));
    }
}
