//! `relational` — a bounded relational model finder in the style of Kodkod.
//!
//! The TransForm paper encodes memory transistency models in Alloy, whose
//! backend (Kodkod) translates bounded relational logic to SAT. This crate
//! reproduces that substrate: you declare relations over a finite
//! [`Universe`] with lower/upper [`TupleSet`] bounds, constrain them with
//! relational [`Formula`]s, and enumerate satisfying [`Instance`]s.
//!
//! Quantifiers are grounded by the host program (exactly what Kodkod does
//! internally before hitting SAT): build conjunctions/disjunctions over
//! [`Expr::atom`] singletons with ordinary Rust iteration.
//!
//! Relations of arity 1 and 2 are supported in the SAT translation — the
//! entire TransForm vocabulary (Table I of the paper) is unary/binary.
//!
//! # Examples
//!
//! Find a strict total order on three atoms:
//!
//! ```
//! use relational::{Problem, Universe, Expr, Formula, TupleSet};
//!
//! let u = Universe::new(["a", "b", "c"]);
//! let mut p = Problem::new(u.clone());
//! let r = p.declare("lt", 2, TupleSet::empty(2), TupleSet::full(&u, 2));
//! let lt = Expr::rel(r);
//! p.require(Formula::acyclic(lt.clone()));
//! p.require(Formula::subset(
//!     Expr::univ(1).product(Expr::univ(1)).diff(Expr::iden()),
//!     lt.clone().union(lt.transpose()),
//! ));
//! // Exactly 3! = 6 strict total orders.
//! assert_eq!(p.solutions().count(), 6);
//! ```

mod circuit;
mod eval;
mod expr;
mod problem;
mod session;
mod translate;
mod tuples;
mod universe;

pub use expr::{Expr, Formula};
pub use problem::{Instance, Problem, RelDecl, RelId, Solutions};
pub use session::Session;
pub use tuples::{Tuple, TupleSet};
pub use universe::Universe;

#[cfg(test)]
mod tests;
