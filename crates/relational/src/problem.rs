//! Problems, relation declarations, instances, and solution enumeration.

use crate::expr::Formula;
use crate::translate::Translation;
use crate::tuples::{Tuple, TupleSet};
use crate::universe::Universe;
use std::fmt;

/// Identifier of a declared relation within one [`Problem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub(crate) usize);

/// A relation declaration: name, arity, and lower/upper tuple-set bounds.
///
/// Tuples in `lower` are in every solution; tuples outside `upper` are in
/// none. Everything in between is a SAT decision — exactly Kodkod's bounds.
#[derive(Clone, Debug)]
pub struct RelDecl {
    /// Human-readable name, used in [`Instance`] display.
    pub name: String,
    /// Arity (1 or 2 supported by the SAT translation).
    pub arity: usize,
    /// Tuples guaranteed present.
    pub lower: TupleSet,
    /// Tuples allowed to be present.
    pub upper: TupleSet,
}

/// A bounded relational satisfiability problem.
///
/// See the crate documentation for an end-to-end example.
pub struct Problem {
    universe: Universe,
    decls: Vec<RelDecl>,
    constraints: Vec<Formula>,
}

impl Problem {
    /// Creates an empty problem over `universe`.
    pub fn new(universe: Universe) -> Problem {
        Problem {
            universe,
            decls: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The universe of this problem.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Declares a relation with the given bounds and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the bounds have the wrong arity, if `lower ⊄ upper`, or if
    /// `arity` is not 1 or 2 (the SAT translation supports unary and binary
    /// relations — all of the TransForm vocabulary).
    pub fn declare(&mut self, name: &str, arity: usize, lower: TupleSet, upper: TupleSet) -> RelId {
        assert!(arity == 1 || arity == 2, "supported arities are 1 and 2");
        assert_eq!(lower.arity(), arity, "lower bound arity mismatch");
        assert_eq!(upper.arity(), arity, "upper bound arity mismatch");
        assert!(lower.is_subset(&upper), "lower bound must be within upper");
        let id = RelId(self.decls.len());
        self.decls.push(RelDecl {
            name: name.to_string(),
            arity,
            lower,
            upper,
        });
        id
    }

    /// Declares a relation with a fixed, constant value.
    pub fn declare_exact(&mut self, name: &str, value: TupleSet) -> RelId {
        let arity = value.arity();
        self.declare(name, arity, value.clone(), value)
    }

    /// Declares a free relation bounded only by the universe.
    pub fn declare_free(&mut self, name: &str, arity: usize) -> RelId {
        self.declare(
            name,
            arity,
            TupleSet::empty(arity),
            TupleSet::full(&self.universe, arity),
        )
    }

    /// The declaration for `rel`.
    pub fn decl(&self, rel: RelId) -> &RelDecl {
        &self.decls[rel.0]
    }

    /// All declarations, in declaration order.
    pub fn decls(&self) -> &[RelDecl] {
        &self.decls
    }

    /// Adds a constraint that every solution must satisfy.
    pub fn require(&mut self, f: Formula) {
        self.constraints.push(f);
    }

    /// The conjunction of all added constraints.
    pub fn formula(&self) -> Formula {
        Formula::and(self.constraints.iter().cloned())
    }

    /// Finds one satisfying instance, if any.
    pub fn solve(&self) -> Option<Instance> {
        self.solutions().next()
    }

    /// Enumerates all satisfying instances.
    ///
    /// Two instances are distinct when any declared relation differs. The
    /// iterator is lazy; each `next` is one incremental SAT call.
    pub fn solutions(&self) -> Solutions<'_> {
        Solutions {
            translation: Translation::build(self),
            problem: self,
            done: false,
        }
    }
}

impl fmt::Debug for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Problem({} atoms, {} relations, {} constraints)",
            self.universe.size(),
            self.decls.len(),
            self.constraints.len()
        )
    }
}

/// A satisfying assignment of tuple sets to declared relations.
#[derive(Clone, PartialEq, Eq)]
pub struct Instance {
    pub(crate) names: Vec<String>,
    pub(crate) universe: Universe,
    pub(crate) values: Vec<TupleSet>,
}

impl Instance {
    /// Builds an instance directly from relation values (used mainly by the
    /// ground evaluator in tests).
    pub fn from_values(universe: Universe, names: Vec<String>, values: Vec<TupleSet>) -> Instance {
        assert_eq!(names.len(), values.len());
        Instance {
            names,
            universe,
            values,
        }
    }

    /// The universe this instance ranges over.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The value of a declared relation.
    pub fn get(&self, rel: RelId) -> &TupleSet {
        &self.values[rel.0]
    }

    /// The value of the relation called `name`, if declared.
    pub fn get_by_name(&self, name: &str) -> Option<&TupleSet> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.values[i])
    }

    /// All tuples of `rel` as `(a, b)` pairs (binary relations only).
    ///
    /// # Panics
    ///
    /// Panics if `rel` is not binary.
    pub fn pairs(&self, rel: RelId) -> Vec<(usize, usize)> {
        let ts = self.get(rel);
        assert_eq!(ts.arity(), 2);
        ts.iter().map(|t| (t[0], t[1])).collect()
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance {{")?;
        for (name, value) in self.names.iter().zip(&self.values) {
            let tuples: Vec<Vec<&str>> = value
                .iter()
                .map(|t: &Tuple| t.iter().map(|&a| self.universe.name(a)).collect())
                .collect();
            writeln!(f, "  {name} = {tuples:?}")?;
        }
        write!(f, "}}")
    }
}

/// Lazy iterator over all satisfying [`Instance`]s of a [`Problem`].
pub struct Solutions<'p> {
    translation: Translation,
    problem: &'p Problem,
    done: bool,
}

impl Iterator for Solutions<'_> {
    type Item = Instance;

    fn next(&mut self) -> Option<Instance> {
        if self.done {
            return None;
        }
        if !self.translation.solve() {
            self.done = true;
            return None;
        }
        let inst = self.translation.extract(self.problem);
        if !self.translation.block_current() {
            self.done = true;
        }
        Some(inst)
    }
}
