//! Incremental model finding: one SAT solver shared across many problems.
//!
//! [`Problem::solutions`] builds a fresh solver per problem — the right
//! call for isolated queries, but wasteful for a *shard* of related
//! problems (TransForm solves thousands of structurally similar
//! candidate-execution queries per synthesis run). A [`Session`] keeps a
//! single [`tsat::Solver`] alive across problems:
//!
//! * each problem's constraints are translated under a fresh *activation
//!   literal* and solved with [`tsat::Solver::solve_with`] assumptions;
//! * model-enumeration blocking clauses are gated by the same literal;
//! * finishing a problem retires the literal with a unit clause, which
//!   deactivates all its clauses for good;
//! * clauses *learnt* while solving stay behind, as do variable
//!   activities and saved phases — later problems in the shard start
//!   from everything earlier ones discovered.

use crate::circuit::Circuit;
use crate::problem::{Instance, Problem};
use crate::translate::Translation;

/// A shared incremental solver for a sequence of [`Problem`]s.
///
/// # Examples
///
/// ```
/// use relational::{Expr, Formula, Problem, Session, TupleSet, Universe};
///
/// let u = Universe::new(["a", "b"]);
/// let mut session = Session::new();
/// let mut counts = Vec::new();
/// for require_some in [false, true] {
///     let mut p = Problem::new(u.clone());
///     let r = p.declare("r", 1, TupleSet::empty(1), TupleSet::full(&u, 1));
///     if require_some {
///         p.require(Formula::some(Expr::rel(r)));
///     }
///     counts.push(session.solve_all(&p, usize::MAX).len());
/// }
/// assert_eq!(counts, vec![4, 3]); // all subsets vs. non-empty subsets
/// assert!(session.solver_stats().solve_calls >= 2);
/// ```
pub struct Session {
    circuit: Option<Circuit>,
    problems: usize,
}

impl Session {
    /// Creates a session with an empty solver.
    pub fn new() -> Session {
        Session {
            circuit: Some(Circuit::new()),
            problems: 0,
        }
    }

    /// Enumerates up to `limit` satisfying instances of `problem` on the
    /// shared solver, then retires the problem's constraints.
    pub fn solve_all(&mut self, problem: &Problem, limit: usize) -> Vec<Instance> {
        let circuit = self.circuit.take().expect("session circuit is present");
        let mut translation = Translation::build_shared(circuit, problem);
        self.problems += 1;
        let mut out = Vec::new();
        while out.len() < limit && translation.solve() {
            out.push(translation.extract(problem));
            if !translation.block_current() {
                break;
            }
        }
        self.circuit = Some(translation.retire());
        out
    }

    /// The number of problems this session has solved.
    pub fn problems_solved(&self) -> usize {
        self.problems
    }

    /// Cumulative solver statistics across all problems in the session.
    pub fn solver_stats(&self) -> tsat::SolverStats {
        self.circuit
            .as_ref()
            .expect("session circuit is present")
            .solver
            .stats()
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}
