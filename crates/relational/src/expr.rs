//! Relational expressions and formulas — the bounded relational logic AST.

use crate::problem::RelId;
use crate::tuples::TupleSet;
use std::sync::Arc;

/// A relational expression denoting a tuple set.
///
/// Expressions are immutable trees; the combinator methods consume `self`
/// and share subtrees via [`Arc`], so cloning is cheap.
///
/// # Examples
///
/// ```
/// use relational::{Expr, Formula};
/// // rf ∪ co ∪ fr must be acyclic:
/// # let (rf, co, fr) = (Expr::none(2), Expr::none(2), Expr::none(2));
/// let f = Formula::acyclic(rf.union(co).union(fr));
/// ```
#[derive(Clone, Debug)]
pub enum Expr {
    /// A declared relation variable.
    Rel(RelId),
    /// A constant tuple set.
    Const(Arc<TupleSet>),
    /// The identity relation over the universe.
    Iden,
    /// The empty relation of the given arity.
    None(usize),
    /// Every tuple of the given arity over the universe.
    Univ(usize),
    /// Set union.
    Union(Arc<Expr>, Arc<Expr>),
    /// Set intersection.
    Inter(Arc<Expr>, Arc<Expr>),
    /// Set difference.
    Diff(Arc<Expr>, Arc<Expr>),
    /// Relational join (`.` in Alloy).
    Join(Arc<Expr>, Arc<Expr>),
    /// Cartesian product (`->` in Alloy).
    Product(Arc<Expr>, Arc<Expr>),
    /// Transpose (`~` in Alloy).
    Transpose(Arc<Expr>),
    /// Transitive closure (`^` in Alloy).
    Closure(Arc<Expr>),
}

impl Expr {
    /// A declared relation.
    pub fn rel(r: RelId) -> Expr {
        Expr::Rel(r)
    }

    /// A constant tuple set.
    pub fn constant(ts: TupleSet) -> Expr {
        Expr::Const(Arc::new(ts))
    }

    /// The singleton unary set `{atom}`.
    pub fn atom(atom: usize) -> Expr {
        Expr::constant(TupleSet::from_atoms([atom]))
    }

    /// The singleton binary set `{(a, b)}`.
    pub fn pair(a: usize, b: usize) -> Expr {
        Expr::constant(TupleSet::from_pairs([(a, b)]))
    }

    /// The identity relation.
    pub fn iden() -> Expr {
        Expr::Iden
    }

    /// The empty relation of arity `arity`.
    pub fn none(arity: usize) -> Expr {
        Expr::None(arity)
    }

    /// Every tuple of arity `arity`.
    pub fn univ(arity: usize) -> Expr {
        Expr::Univ(arity)
    }

    /// `self ∪ other`.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Arc::new(self), Arc::new(other))
    }

    /// `self ∩ other`.
    pub fn inter(self, other: Expr) -> Expr {
        Expr::Inter(Arc::new(self), Arc::new(other))
    }

    /// `self \ other`.
    pub fn diff(self, other: Expr) -> Expr {
        Expr::Diff(Arc::new(self), Arc::new(other))
    }

    /// Relational join `self . other`.
    pub fn join(self, other: Expr) -> Expr {
        Expr::Join(Arc::new(self), Arc::new(other))
    }

    /// Cartesian product `self -> other`.
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product(Arc::new(self), Arc::new(other))
    }

    /// Transpose `~self`.
    pub fn transpose(self) -> Expr {
        Expr::Transpose(Arc::new(self))
    }

    /// Transitive closure `^self`.
    pub fn closure(self) -> Expr {
        Expr::Closure(Arc::new(self))
    }

    /// Reflexive transitive closure `*self` (defined as `^self ∪ iden`).
    pub fn rclosure(self) -> Expr {
        self.closure().union(Expr::iden())
    }

    /// Union of several expressions.
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator.
    pub fn union_all<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        let first = it.next().expect("union_all of empty iterator");
        it.fold(first, Expr::union)
    }

    /// The arity of this expression, given a lookup for relation arities.
    pub(crate) fn arity(&self, rel_arity: &dyn Fn(RelId) -> usize) -> usize {
        match self {
            Expr::Rel(r) => rel_arity(*r),
            Expr::Const(ts) => ts.arity(),
            Expr::Iden => 2,
            Expr::None(a) | Expr::Univ(a) => *a,
            Expr::Union(a, _) | Expr::Inter(a, _) | Expr::Diff(a, _) => a.arity(rel_arity),
            Expr::Join(a, b) => a.arity(rel_arity) + b.arity(rel_arity) - 2,
            Expr::Product(a, b) => a.arity(rel_arity) + b.arity(rel_arity),
            Expr::Transpose(_) => 2,
            Expr::Closure(_) => 2,
        }
    }
}

/// A boolean constraint over relational expressions.
#[derive(Clone, Debug)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// `a ⊆ b`.
    Subset(Arc<Expr>, Arc<Expr>),
    /// `a = b`.
    Equal(Arc<Expr>, Arc<Expr>),
    /// `e` is non-empty (`some e`).
    Some(Arc<Expr>),
    /// `e` is empty (`no e`).
    NoneOf(Arc<Expr>),
    /// `e` has at most one tuple (`lone e`).
    Lone(Arc<Expr>),
    /// `e` has exactly one tuple (`one e`).
    One(Arc<Expr>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Arc<Formula>),
}

impl Formula {
    /// `a ⊆ b`.
    pub fn subset(a: Expr, b: Expr) -> Formula {
        Formula::Subset(Arc::new(a), Arc::new(b))
    }

    /// `a = b`.
    pub fn equal(a: Expr, b: Expr) -> Formula {
        Formula::Equal(Arc::new(a), Arc::new(b))
    }

    /// `some e` — the expression is non-empty.
    pub fn some(e: Expr) -> Formula {
        Formula::Some(Arc::new(e))
    }

    /// `no e` — the expression is empty.
    pub fn no(e: Expr) -> Formula {
        Formula::NoneOf(Arc::new(e))
    }

    /// `lone e` — at most one tuple.
    pub fn lone(e: Expr) -> Formula {
        Formula::Lone(Arc::new(e))
    }

    /// `one e` — exactly one tuple.
    pub fn one(e: Expr) -> Formula {
        Formula::One(Arc::new(e))
    }

    /// Acyclicity of a binary relation: `no (iden ∩ ^e)`.
    ///
    /// This is the workhorse of axiomatic memory-model specification — the
    /// paper's `sc_per_loc`, `causality`, `invlpg`, and `tlb_causality`
    /// axioms are all acyclicity requirements.
    pub fn acyclic(e: Expr) -> Formula {
        Formula::no(e.closure().inter(Expr::iden()))
    }

    /// Irreflexivity of a binary relation: `no (iden ∩ e)`.
    pub fn irreflexive(e: Expr) -> Formula {
        Formula::no(e.inter(Expr::iden()))
    }

    /// Conjunction of formulas (true when empty).
    pub fn and<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        Formula::And(fs.into_iter().collect())
    }

    /// Disjunction of formulas (false when empty).
    pub fn or<I: IntoIterator<Item = Formula>>(fs: I) -> Formula {
        Formula::Or(fs.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Arc::new(f))
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::or([Formula::not(self), other])
    }

    /// Biconditional `self ↔ other`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::and([self.clone().implies(other.clone()), other.implies(self)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_arities() {
        let lookup = |_: RelId| 2usize;
        assert_eq!(Expr::iden().arity(&lookup), 2);
        assert_eq!(Expr::atom(0).arity(&lookup), 1);
        assert_eq!(Expr::atom(0).join(Expr::iden()).arity(&lookup), 1);
        assert_eq!(Expr::atom(0).product(Expr::atom(1)).arity(&lookup), 2);
        assert_eq!(Expr::iden().join(Expr::iden()).arity(&lookup), 2);
    }
}
