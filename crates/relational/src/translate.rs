//! Translation of bounded relational logic to CNF (the Kodkod step).
//!
//! Each relation becomes a grid of boolean values — constants for tuples
//! fixed by the bounds, fresh SAT variables for the rest. Expressions
//! evaluate to grids of Tseitin-encoded circuit nodes; formulas evaluate to
//! single nodes asserted true. Transitive closure uses iterative squaring.

use crate::circuit::{Circuit, B};
use crate::expr::{Expr, Formula};
use crate::problem::{Instance, Problem, RelId};
use crate::tuples::TupleSet;
use tsat::{Lit, Var};

/// A grid of circuit nodes representing a relation's characteristic
/// function: length `n` for unary, `n * n` (row-major) for binary.
#[derive(Clone)]
pub(crate) struct Grid {
    arity: usize,
    n: usize,
    cells: Vec<B>,
}

impl Grid {
    fn empty(arity: usize, n: usize) -> Grid {
        let len = if arity == 1 { n } else { n * n };
        Grid {
            arity,
            n,
            cells: vec![B::F; len],
        }
    }

    fn from_tupleset(ts: &TupleSet, n: usize) -> Grid {
        assert!(ts.arity() <= 2, "SAT translation supports arity 1 and 2");
        let mut g = Grid::empty(ts.arity(), n);
        for t in ts.iter() {
            let idx = if ts.arity() == 1 {
                t[0]
            } else {
                t[0] * n + t[1]
            };
            g.cells[idx] = B::T;
        }
        g
    }

    #[inline]
    fn at2(&self, i: usize, j: usize) -> B {
        debug_assert_eq!(self.arity, 2);
        self.cells[i * self.n + j]
    }
}

pub(crate) struct Translation {
    circuit: Circuit,
    /// Per relation: the grid and the list of (cell index, var) choices.
    grids: Vec<Grid>,
    free_vars: Vec<Var>,
    n: usize,
    sat_known_unsat: bool,
    /// In shared-solver mode, the problem's root formula literal: assumed
    /// (not asserted) on each solve, so the shared solver's clause store
    /// stays valid for later problems. `None` in one-shot mode, where the
    /// root is asserted as a unit clause at build time.
    root: Option<Lit>,
}

impl Translation {
    /// One-shot mode: a fresh solver per problem, root asserted.
    pub(crate) fn build(problem: &Problem) -> Translation {
        let mut tr = Translation::layout(Circuit::new(), problem);
        let root = tr.formula(&problem.formula(), problem);
        tr.circuit.assert_true(root);
        tr
    }

    /// Shared-solver (incremental) mode: translates `problem` into an
    /// existing circuit and keeps the root formula as an *assumption*
    /// literal. Tseitin definitions are valid regardless of the root, so
    /// nothing asserted here constrains other problems sharing the
    /// solver; see [`Translation::retire`].
    pub(crate) fn build_shared(circuit: Circuit, problem: &Problem) -> Translation {
        let mut tr = Translation::layout(circuit, problem);
        let root = tr.formula(&problem.formula(), problem);
        match root {
            B::T => tr.root = Some(tr.circuit.fresh()),
            B::F => tr.sat_known_unsat = true,
            // The root literal itself must never be retired with a hard
            // unit: a tautological formula's Tseitin structure can force
            // it true in every model, so `¬root` would unsatisfy the
            // shared solver at the root level for good. A fresh
            // activation literal implying the root is always free to go
            // false instead.
            B::L(l) => {
                let act = tr.circuit.fresh();
                tr.circuit.solver.add_clause([!act, l]);
                tr.root = Some(act);
            }
        }
        tr
    }

    fn layout(mut circuit: Circuit, problem: &Problem) -> Translation {
        let n = problem.universe().size();
        let mut grids = Vec::new();
        let mut free_vars = Vec::new();
        for decl in problem.decls() {
            let mut grid = Grid::empty(decl.arity, n);
            for t in decl.upper.iter() {
                let idx = if decl.arity == 1 {
                    t[0]
                } else {
                    t[0] * n + t[1]
                };
                if decl.lower.contains(t) {
                    grid.cells[idx] = B::T;
                } else {
                    let l = circuit.fresh();
                    free_vars.push(l.var());
                    grid.cells[idx] = B::L(l);
                }
            }
            grids.push(grid);
        }
        Translation {
            circuit,
            grids,
            free_vars,
            n,
            sat_known_unsat: false,
            root: None,
        }
    }

    pub(crate) fn solve(&mut self) -> bool {
        if self.sat_known_unsat {
            return false;
        }
        match self.root {
            None => self.circuit.solver.solve().is_sat(),
            Some(l) => self.circuit.solver.solve_with(&[l]).is_sat(),
        }
    }

    pub(crate) fn block_current(&mut self) -> bool {
        if self.free_vars.is_empty() {
            self.sat_known_unsat = true;
            return false;
        }
        let guard = self.root.map(|l| !l);
        if !self
            .circuit
            .solver
            .block_model_under(&self.free_vars, guard)
        {
            self.sat_known_unsat = true;
            return false;
        }
        true
    }

    /// Ends a shared-mode problem: permanently deactivates its root (and
    /// with it all its gated blocking clauses) and hands the circuit back
    /// for the next problem. Clauses learnt while solving this problem
    /// stay in the solver — that retention is what makes a shard of
    /// related problems cheaper than fresh solvers.
    pub(crate) fn retire(mut self) -> Circuit {
        if let Some(l) = self.root {
            self.circuit.solver.add_clause([!l]);
        }
        self.circuit
    }

    pub(crate) fn extract(&self, problem: &Problem) -> Instance {
        let mut names = Vec::new();
        let mut values = Vec::new();
        for (r, decl) in problem.decls().iter().enumerate() {
            let grid = &self.grids[r];
            let mut ts = TupleSet::empty(decl.arity);
            for (idx, &cell) in grid.cells.iter().enumerate() {
                let present = match cell {
                    B::T => true,
                    B::F => false,
                    B::L(l) => self.circuit.solver.lit_value_opt(l).unwrap_or(false),
                };
                if present {
                    let t = if decl.arity == 1 {
                        vec![idx]
                    } else {
                        vec![idx / self.n, idx % self.n]
                    };
                    ts.insert(t);
                }
            }
            names.push(decl.name.clone());
            values.push(ts);
        }
        Instance::from_values(problem.universe().clone(), names, values)
    }

    fn rel_arity(&self, problem: &Problem, r: RelId) -> usize {
        problem.decl(r).arity
    }

    fn expr(&mut self, e: &Expr) -> Grid {
        let n = self.n;
        match e {
            Expr::Rel(r) => self.grids[r.0].clone(),
            Expr::Const(ts) => Grid::from_tupleset(ts, n),
            Expr::Iden => {
                let mut g = Grid::empty(2, n);
                for i in 0..n {
                    g.cells[i * n + i] = B::T;
                }
                g
            }
            Expr::None(a) => {
                assert!(*a <= 2, "SAT translation supports arity 1 and 2");
                Grid::empty(*a, n)
            }
            Expr::Univ(a) => {
                assert!(*a <= 2, "SAT translation supports arity 1 and 2");
                let mut g = Grid::empty(*a, n);
                g.cells.fill(B::T);
                g
            }
            Expr::Union(a, b) => {
                let ga = self.expr(a);
                let gb = self.expr(b);
                self.zip(ga, gb, |c, x, y| c.or2(x, y))
            }
            Expr::Inter(a, b) => {
                let ga = self.expr(a);
                let gb = self.expr(b);
                self.zip(ga, gb, |c, x, y| c.and2(x, y))
            }
            Expr::Diff(a, b) => {
                let ga = self.expr(a);
                let gb = self.expr(b);
                self.zip(ga, gb, |c, x, y| {
                    let ny = c.not(y);
                    c.and2(x, ny)
                })
            }
            Expr::Join(a, b) => {
                let ga = self.expr(a);
                let gb = self.expr(b);
                self.join(ga, gb)
            }
            Expr::Product(a, b) => {
                let ga = self.expr(a);
                let gb = self.expr(b);
                assert!(
                    ga.arity == 1 && gb.arity == 1,
                    "product supported for unary × unary only"
                );
                let mut g = Grid::empty(2, n);
                for i in 0..n {
                    for j in 0..n {
                        g.cells[i * n + j] = self.circuit.and2(ga.cells[i], gb.cells[j]);
                    }
                }
                g
            }
            Expr::Transpose(a) => {
                let ga = self.expr(a);
                assert_eq!(ga.arity, 2, "transpose requires a binary relation");
                let mut g = Grid::empty(2, n);
                for i in 0..n {
                    for j in 0..n {
                        g.cells[i * n + j] = ga.at2(j, i);
                    }
                }
                g
            }
            Expr::Closure(a) => {
                let ga = self.expr(a);
                assert_eq!(ga.arity, 2, "closure requires a binary relation");
                // Iterative squaring: after k rounds, paths of length ≤ 2^k.
                let mut m = ga;
                let mut span = 1usize;
                while span < n {
                    let sq = self.join(m.clone(), m.clone());
                    m = self.zip(m, sq, |c, x, y| c.or2(x, y));
                    span *= 2;
                }
                m
            }
        }
    }

    fn zip(&mut self, a: Grid, b: Grid, f: impl Fn(&mut Circuit, B, B) -> B) -> Grid {
        assert_eq!(a.arity, b.arity, "arity mismatch in set operation");
        let mut g = Grid::empty(a.arity, a.n);
        for (idx, cell) in g.cells.iter_mut().enumerate() {
            *cell = f(&mut self.circuit, a.cells[idx], b.cells[idx]);
        }
        g
    }

    fn join(&mut self, a: Grid, b: Grid) -> Grid {
        let n = self.n;
        match (a.arity, b.arity) {
            (1, 2) => {
                let mut g = Grid::empty(1, n);
                for k in 0..n {
                    let terms: Vec<B> = (0..n)
                        .map(|j| self.circuit.and2(a.cells[j], b.at2(j, k)))
                        .collect();
                    g.cells[k] = self.circuit.or_all(terms);
                }
                g
            }
            (2, 1) => {
                let mut g = Grid::empty(1, n);
                for i in 0..n {
                    let terms: Vec<B> = (0..n)
                        .map(|j| self.circuit.and2(a.at2(i, j), b.cells[j]))
                        .collect();
                    g.cells[i] = self.circuit.or_all(terms);
                }
                g
            }
            (2, 2) => {
                let mut g = Grid::empty(2, n);
                for i in 0..n {
                    for k in 0..n {
                        let terms: Vec<B> = (0..n)
                            .map(|j| self.circuit.and2(a.at2(i, j), b.at2(j, k)))
                            .collect();
                        g.cells[i * n + k] = self.circuit.or_all(terms);
                    }
                }
                g
            }
            (x, y) => panic!("join of arities ({x}, {y}) not supported"),
        }
    }

    fn formula(&mut self, f: &Formula, problem: &Problem) -> B {
        match f {
            Formula::True => B::T,
            Formula::False => B::F,
            Formula::Subset(a, b) => {
                let arity_a = a.arity(&|r| self.rel_arity(problem, r));
                let arity_b = b.arity(&|r| self.rel_arity(problem, r));
                assert_eq!(arity_a, arity_b, "subset arity mismatch");
                let ga = self.expr(a);
                let gb = self.expr(b);
                let impls: Vec<B> = ga
                    .cells
                    .iter()
                    .zip(&gb.cells)
                    .map(|(&x, &y)| {
                        let nx = self.circuit.not(x);
                        self.circuit.or2(nx, y)
                    })
                    .collect();
                self.circuit.and_all(impls)
            }
            Formula::Equal(a, b) => {
                let f1 = self.formula(&Formula::Subset(a.clone(), b.clone()), problem);
                let f2 = self.formula(&Formula::Subset(b.clone(), a.clone()), problem);
                self.circuit.and2(f1, f2)
            }
            Formula::Some(e) => {
                let g = self.expr(e);
                self.circuit.or_all(g.cells)
            }
            Formula::NoneOf(e) => {
                let g = self.expr(e);
                let s = self.circuit.or_all(g.cells);
                self.circuit.not(s)
            }
            Formula::Lone(e) => {
                let g = self.expr(e);
                self.circuit.at_most_one(&g.cells)
            }
            Formula::One(e) => {
                let g = self.expr(e);
                let some = self.circuit.or_all(g.cells.clone());
                let amo = self.circuit.at_most_one(&g.cells);
                self.circuit.and2(some, amo)
            }
            Formula::And(fs) => {
                let nodes: Vec<B> = fs.iter().map(|f| self.formula(f, problem)).collect();
                self.circuit.and_all(nodes)
            }
            Formula::Or(fs) => {
                let nodes: Vec<B> = fs.iter().map(|f| self.formula(f, problem)).collect();
                self.circuit.or_all(nodes)
            }
            Formula::Not(f) => {
                let node = self.formula(f, problem);
                self.circuit.not(node)
            }
        }
    }
}
