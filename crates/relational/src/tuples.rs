//! Tuples and tuple sets — the concrete values of relations.

use crate::universe::Universe;
use std::collections::BTreeSet;
use std::fmt;

/// A tuple of atom indices.
pub type Tuple = Vec<usize>;

/// A set of same-arity tuples over some universe.
///
/// `TupleSet` is both the value of a relation in an [`crate::Instance`] and
/// the representation of lower/upper bounds in a [`crate::Problem`].
///
/// # Examples
///
/// ```
/// use relational::TupleSet;
/// let mut s = TupleSet::empty(2);
/// s.insert(vec![0, 1]);
/// s.insert(vec![1, 2]);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(&[0, 1]));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleSet {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl TupleSet {
    /// The empty set of the given arity.
    pub fn empty(arity: usize) -> TupleSet {
        assert!(arity >= 1, "arity must be at least 1");
        TupleSet {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// All tuples of the given arity over `universe`.
    pub fn full(universe: &Universe, arity: usize) -> TupleSet {
        let mut s = TupleSet::empty(arity);
        let n = universe.size();
        let mut t = vec![0usize; arity];
        loop {
            s.tuples.insert(t.clone());
            // Odometer increment.
            let mut i = arity;
            loop {
                if i == 0 {
                    return s;
                }
                i -= 1;
                t[i] += 1;
                if t[i] < n {
                    break;
                }
                t[i] = 0;
            }
        }
    }

    /// The identity relation `{(a, a)}` over `universe`.
    pub fn iden(universe: &Universe) -> TupleSet {
        let mut s = TupleSet::empty(2);
        for a in universe.atoms() {
            s.insert(vec![a, a]);
        }
        s
    }

    /// Builds a tuple set from an iterator of tuples.
    ///
    /// # Panics
    ///
    /// Panics if tuples disagree on arity.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(arity: usize, tuples: I) -> TupleSet {
        let mut s = TupleSet::empty(arity);
        for t in tuples {
            s.insert(t);
        }
        s
    }

    /// Convenience constructor for binary tuple sets from `(a, b)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (usize, usize)>>(pairs: I) -> TupleSet {
        TupleSet::from_tuples(2, pairs.into_iter().map(|(a, b)| vec![a, b]))
    }

    /// Convenience constructor for unary tuple sets from atom indices.
    pub fn from_atoms<I: IntoIterator<Item = usize>>(atoms: I) -> TupleSet {
        TupleSet::from_tuples(1, atoms.into_iter().map(|a| vec![a]))
    }

    /// The arity of the tuples in this set.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the set contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's length differs from the set's arity.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        self.tuples.insert(tuple)
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[usize]) -> bool {
        tuple.len() == self.arity && self.tuples.contains(tuple)
    }

    /// Iterates over the tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn union(&self, other: &TupleSet) -> TupleSet {
        assert_eq!(self.arity, other.arity);
        TupleSet {
            arity: self.arity,
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn intersection(&self, other: &TupleSet) -> TupleSet {
        assert_eq!(self.arity, other.arity);
        TupleSet {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        }
    }

    /// Set difference.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn difference(&self, other: &TupleSet) -> TupleSet {
        assert_eq!(self.arity, other.arity);
        TupleSet {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// Subset test.
    pub fn is_subset(&self, other: &TupleSet) -> bool {
        self.arity == other.arity && self.tuples.is_subset(&other.tuples)
    }

    /// Relational join: drops the last column of `self` and the first of
    /// `other` where they agree. Result arity is `m + n - 2`.
    ///
    /// # Panics
    ///
    /// Panics if the result arity would be zero.
    pub fn join(&self, other: &TupleSet) -> TupleSet {
        let result_arity = self.arity + other.arity - 2;
        assert!(result_arity >= 1, "join would produce arity 0");
        let mut out = TupleSet::empty(result_arity);
        for a in &self.tuples {
            for b in &other.tuples {
                if a[self.arity - 1] == b[0] {
                    let mut t = Vec::with_capacity(result_arity);
                    t.extend_from_slice(&a[..self.arity - 1]);
                    t.extend_from_slice(&b[1..]);
                    out.tuples.insert(t);
                }
            }
        }
        out
    }

    /// Cartesian product; result arity is `m + n`.
    pub fn product(&self, other: &TupleSet) -> TupleSet {
        let mut out = TupleSet::empty(self.arity + other.arity);
        for a in &self.tuples {
            for b in &other.tuples {
                let mut t = a.clone();
                t.extend_from_slice(b);
                out.tuples.insert(t);
            }
        }
        out
    }

    /// Transpose of a binary relation.
    ///
    /// # Panics
    ///
    /// Panics unless arity is 2.
    pub fn transpose(&self) -> TupleSet {
        assert_eq!(self.arity, 2, "transpose requires arity 2");
        TupleSet {
            arity: 2,
            tuples: self.tuples.iter().map(|t| vec![t[1], t[0]]).collect(),
        }
    }

    /// Transitive closure of a binary relation.
    ///
    /// # Panics
    ///
    /// Panics unless arity is 2.
    pub fn closure(&self) -> TupleSet {
        assert_eq!(self.arity, 2, "closure requires arity 2");
        let mut out = self.clone();
        loop {
            let step = out.join(&out);
            let next = out.union(&step);
            if next == out {
                return out;
            }
            out = next;
        }
    }

    /// `true` when a binary relation has no cycle (its closure is
    /// irreflexive).
    pub fn is_acyclic(&self) -> bool {
        let c = self.closure();
        c.tuples.iter().all(|t| t[0] != t[1])
    }
}

impl fmt::Debug for TupleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for TupleSet {
    /// Collects tuples into a set, inferring arity from the first tuple.
    ///
    /// # Panics
    ///
    /// Panics on an empty iterator (arity is unknown) or mixed arities.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> TupleSet {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().expect("cannot infer arity of empty set").len();
        TupleSet::from_tuples(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enumerates_all_tuples() {
        let u = Universe::new(["a", "b", "c"]);
        assert_eq!(TupleSet::full(&u, 1).len(), 3);
        assert_eq!(TupleSet::full(&u, 2).len(), 9);
        assert_eq!(TupleSet::full(&u, 3).len(), 27);
    }

    #[test]
    fn join_matches_definition() {
        let a = TupleSet::from_pairs([(0, 1), (1, 2)]);
        let b = TupleSet::from_pairs([(1, 5), (2, 6)]);
        let j = a.join(&b);
        assert!(j.contains(&[0, 5]));
        assert!(j.contains(&[1, 6]));
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn unary_binary_join_projects() {
        let s = TupleSet::from_atoms([0]);
        let r = TupleSet::from_pairs([(0, 1), (0, 2), (1, 2)]);
        let img = s.join(&r);
        assert_eq!(img, TupleSet::from_atoms([1, 2]));
    }

    #[test]
    fn closure_of_chain() {
        let r = TupleSet::from_pairs([(0, 1), (1, 2), (2, 3)]);
        let c = r.closure();
        assert!(c.contains(&[0, 3]));
        assert_eq!(c.len(), 6);
        assert!(r.is_acyclic());
        let cyc = TupleSet::from_pairs([(0, 1), (1, 0)]);
        assert!(!cyc.is_acyclic());
    }

    #[test]
    fn set_algebra() {
        let a = TupleSet::from_atoms([0, 1]);
        let b = TupleSet::from_atoms([1, 2]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b), TupleSet::from_atoms([1]));
        assert_eq!(a.difference(&b), TupleSet::from_atoms([0]));
        assert!(TupleSet::from_atoms([1]).is_subset(&a));
    }

    #[test]
    fn transpose_roundtrips() {
        let r = TupleSet::from_pairs([(0, 1), (2, 1)]);
        assert_eq!(r.transpose().transpose(), r);
    }
}
