//! Ground evaluation of expressions and formulas against an [`Instance`].
//!
//! This is the semantic reference for the SAT translation: the randomized
//! tests in this crate enumerate SAT models and re-check them here.

use crate::expr::{Expr, Formula};
use crate::problem::Instance;
use crate::tuples::TupleSet;

impl Instance {
    /// Evaluates a relational expression to a concrete tuple set.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a relation not present in this
    /// instance or combines mismatched arities.
    pub fn eval(&self, e: &Expr) -> TupleSet {
        match e {
            Expr::Rel(r) => self.values[r.0].clone(),
            Expr::Const(ts) => (**ts).clone(),
            Expr::Iden => TupleSet::iden(&self.universe),
            Expr::None(a) => TupleSet::empty(*a),
            Expr::Univ(a) => TupleSet::full(&self.universe, *a),
            Expr::Union(a, b) => self.eval(a).union(&self.eval(b)),
            Expr::Inter(a, b) => self.eval(a).intersection(&self.eval(b)),
            Expr::Diff(a, b) => self.eval(a).difference(&self.eval(b)),
            Expr::Join(a, b) => self.eval(a).join(&self.eval(b)),
            Expr::Product(a, b) => self.eval(a).product(&self.eval(b)),
            Expr::Transpose(a) => self.eval(a).transpose(),
            Expr::Closure(a) => self.eval(a).closure(),
        }
    }

    /// Evaluates a formula to a boolean.
    pub fn holds(&self, f: &Formula) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Subset(a, b) => self.eval(a).is_subset(&self.eval(b)),
            Formula::Equal(a, b) => self.eval(a) == self.eval(b),
            Formula::Some(e) => !self.eval(e).is_empty(),
            Formula::NoneOf(e) => self.eval(e).is_empty(),
            Formula::Lone(e) => self.eval(e).len() <= 1,
            Formula::One(e) => self.eval(e).len() == 1,
            Formula::And(fs) => fs.iter().all(|f| self.holds(f)),
            Formula::Or(fs) => fs.iter().any(|f| self.holds(f)),
            Formula::Not(f) => !self.holds(f),
        }
    }
}
