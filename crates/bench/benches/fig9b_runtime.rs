//! Fig. 9b — synthesis runtime growth with instruction bound.
//!
//! The paper reports super-exponential runtime growth; this bench measures
//! the `sc_per_loc` and `invlpg` suites at bounds 4 and 5 so Criterion can
//! track the growth factor across changes to the engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use transform_synth::{synthesize_suite, SynthOptions};
use transform_x86::x86t_elt;

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn bench_bound_growth(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("fig9b/bound_growth");
    group.sample_size(10);
    for axiom in ["sc_per_loc", "invlpg"] {
        for bound in [4usize, 5] {
            group.bench_with_input(BenchmarkId::new(axiom, bound), &bound, |b, &bound| {
                b.iter(|| synthesize_suite(&mtm, axiom, &opts(bound)))
            });
        }
    }
    group.finish();
}

fn bench_program_enumeration_only(c: &mut Criterion) {
    // The candidate-generation stage of Fig. 7, isolated from pruning.
    let mut group = c.benchmark_group("fig9b/program_enumeration");
    group.sample_size(10);
    for bound in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            let mut opts = transform_synth::EnumOptions::new(bound);
            opts.allow_fences = false;
            opts.allow_rmw = false;
            b.iter(|| transform_synth::programs::programs(&opts).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound_growth, bench_program_enumeration_only);
criterion_main!(benches);
