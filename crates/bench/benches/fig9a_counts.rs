//! Fig. 9a — per-axiom spanning-set synthesis (counts are printed by the
//! `fig9` binary; this bench measures the cost of producing each
//! per-axiom suite at the minimum interesting bounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use transform_synth::{synthesize_suite, SynthOptions};
use transform_x86::x86t_elt;

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

fn bench_per_axiom_suites(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("fig9a/per_axiom_suite");
    group.sample_size(10);
    for axiom in ["sc_per_loc", "causality", "invlpg", "tlb_causality"] {
        group.bench_with_input(BenchmarkId::new(axiom, 4), &4usize, |b, &bound| {
            b.iter(|| synthesize_suite(&mtm, axiom, &opts(bound)))
        });
    }
    group.finish();
}

fn bench_rmw_suite_needs_rmw_ops(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("fig9a/rmw_atomicity");
    group.sample_size(10);
    group.bench_function("bound4_with_rmw", |b| {
        let mut o = SynthOptions::new(4);
        o.enumeration.allow_fences = false;
        o.enumeration.allow_rmw = true;
        b.iter(|| synthesize_suite(&mtm, "rmw_atomicity", &o))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_per_axiom_suites,
    bench_rmw_suite_needs_rmw_ops
);
criterion_main!(benches);
