//! The shared-cache wire path, measured over a loopback
//! `transform-serve` instance: what a fleet-wide cache hit costs
//! compared to resynthesizing, and compared to a local hit.
//!
//! Three temperatures of the same lookup:
//!
//! * **cold** — empty local tier, empty remote: synthesize, seal
//!   locally, push the sealed bytes to the server;
//! * **warm-remote** — empty local tier, seeded remote: fetch the
//!   sealed bytes, validate every byte into the local tier, serve
//!   (the fleet-wide-cache payoff: someone else's synthesis, one
//!   round-trip away);
//! * **warm-local** — seeded local tier: the read-through population's
//!   payoff — later lookups never touch the network again.
//!
//! Besides the per-temperature measurements, the run writes the numbers
//! to `BENCH_serve.json` at the workspace root so the serving-path
//! trajectory is tracked across PRs alongside `BENCH_enum.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use transform_serve::{ServeOptions, Server, ServerHandle};
use transform_store::{suite_fingerprint, HttpTier, Store, TieredCache};
use transform_synth::SynthOptions;
use transform_x86::x86t_elt;

const BOUND: usize = 4;
const AXIOM: &str = "sc_per_loc";
const JOBS: usize = 2;

fn opts() -> SynthOptions {
    SynthOptions::new(BOUND)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "transform-remote-bench-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A loopback server over `dir`, optionally pre-seeded with the sealed
/// suite.
fn spawn_server(tag: &str, seeded: bool) -> (ServerHandle, PathBuf) {
    let dir = fresh_dir(tag);
    if seeded {
        let store = Store::open(&dir).expect("store opens");
        TieredCache::new(store)
            .cached_or_synthesize(&x86t_elt(), AXIOM, &opts(), JOBS)
            .expect("seeds the server store");
    }
    let server = Server::bind(&dir, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    (server.spawn(), dir)
}

fn tiered(local: &PathBuf, url: &str) -> TieredCache {
    TieredCache::new(Store::open(local).expect("store opens"))
        .with_remote(Box::new(HttpTier::new(url).expect("valid URL")))
}

fn bench_cold(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("remote_cache");
    group.sample_size(10);
    let (handle, server_dir) = spawn_server("cold-srv", false);
    let url = handle.url();
    group.bench_function("cold", |b| {
        b.iter_batched(
            || {
                // Fresh on both tiers: wipe the server's store too, so
                // every iteration synthesizes and pushes.
                std::fs::remove_dir_all(&server_dir).ok();
                std::fs::create_dir_all(&server_dir).ok();
                fresh_dir("cold-local")
            },
            |local| {
                let (suite, status) = tiered(&local, &url)
                    .cached_or_synthesize(&mtm, AXIOM, &opts(), JOBS)
                    .expect("synthesizes");
                assert!(!status.is_hit() && !status.is_remote_hit());
                suite.elts.len()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
    handle.shutdown();
    std::fs::remove_dir_all(&server_dir).ok();
    std::fs::remove_dir_all(fresh_dir("cold-local")).ok();
}

fn bench_warm_remote(c: &mut Criterion) {
    let mtm = x86t_elt();
    let (handle, server_dir) = spawn_server("warmr-srv", true);
    let url = handle.url();
    let mut group = c.benchmark_group("remote_cache");
    group.sample_size(20);
    group.bench_function("warm_remote", |b| {
        b.iter_batched(
            || fresh_dir("warmr-local"),
            |local| {
                let (suite, status) = tiered(&local, &url)
                    .cached_or_synthesize(&mtm, AXIOM, &opts(), JOBS)
                    .expect("fetches");
                assert!(status.is_remote_hit());
                suite.elts.len()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
    handle.shutdown();
    std::fs::remove_dir_all(&server_dir).ok();
    std::fs::remove_dir_all(fresh_dir("warmr-local")).ok();
}

fn bench_warm_local(c: &mut Criterion) {
    let mtm = x86t_elt();
    let (handle, server_dir) = spawn_server("warml-srv", true);
    let url = handle.url();
    let local = fresh_dir("warml-local");
    let cache = tiered(&local, &url);
    cache
        .cached_or_synthesize(&mtm, AXIOM, &opts(), JOBS)
        .expect("populates the local tier");
    let mut group = c.benchmark_group("remote_cache");
    group.sample_size(50);
    group.bench_function("warm_local", |b| {
        b.iter(|| {
            let (suite, status) = cache
                .cached_or_synthesize(&mtm, AXIOM, &opts(), JOBS)
                .expect("reads");
            assert!(status.is_hit());
            suite.elts.len()
        })
    });
    group.finish();
    handle.shutdown();
    std::fs::remove_dir_all(&server_dir).ok();
    std::fs::remove_dir_all(&local).ok();
}

/// One timed lookup at each temperature (median of several for the warm
/// paths), written to `BENCH_serve.json`.
fn serve_summary(_c: &mut Criterion) {
    let mtm = x86t_elt();
    let fp = suite_fingerprint(&mtm, AXIOM, &opts());

    // Cold: synthesize + seal + push, against an empty server.
    let (handle, server_dir) = spawn_server("sum-srv", false);
    let url = handle.url();
    let cold_local = fresh_dir("sum-cold");
    let start = Instant::now();
    let (cold_suite, _) = tiered(&cold_local, &url)
        .cached_or_synthesize(&mtm, AXIOM, &opts(), JOBS)
        .expect("cold run");
    let cold = start.elapsed();
    let entry_bytes = Store::open(&server_dir)
        .expect("opens")
        .entry_bytes(fp)
        .expect("readable")
        .expect("the cold run pushed its sealed entry")
        .len();

    // Warm-remote: fresh local tier per sample, the server now seeded
    // by the cold run's push.
    let median = |samples: &mut Vec<Duration>| {
        samples.sort_unstable();
        samples[samples.len() / 2]
    };
    let mut warm_remote_samples = Vec::new();
    for i in 0..9 {
        let local = fresh_dir(&format!("sum-warmr-{i}"));
        let cache = tiered(&local, &url);
        let start = Instant::now();
        let (suite, status) = cache
            .cached_or_synthesize(&mtm, AXIOM, &opts(), JOBS)
            .expect("warm-remote run");
        warm_remote_samples.push(start.elapsed());
        assert!(status.is_remote_hit());
        assert_eq!(suite.elts.len(), cold_suite.elts.len());
        std::fs::remove_dir_all(&local).ok();
    }
    let warm_remote = median(&mut warm_remote_samples);

    // Warm-local: the populated tier, no network.
    let cache = tiered(&cold_local, &url);
    let mut warm_local_samples = Vec::new();
    for _ in 0..9 {
        let start = Instant::now();
        let (suite, status) = cache
            .cached_or_synthesize(&mtm, AXIOM, &opts(), JOBS)
            .expect("warm-local run");
        warm_local_samples.push(start.elapsed());
        assert!(status.is_hit());
        assert_eq!(suite.elts.len(), cold_suite.elts.len());
    }
    let warm_local = median(&mut warm_local_samples);

    let remote_speedup = cold.as_secs_f64() / warm_remote.as_secs_f64().max(f64::EPSILON);
    println!(
        "remote_cache/summary: {AXIOM} @ bound {BOUND}: cold {cold:.3?} / warm-remote \
         {warm_remote:.3?} = {remote_speedup:.1}x; warm-local {warm_local:.3?}; \
         {entry_bytes} bytes over the wire"
    );
    let json = format!(
        "{{\n  \"bench\": \"remote_cache\",\n  \"axiom\": \"{AXIOM}\",\n  \"bound\": {BOUND},\n  \
         \"jobs\": {JOBS},\n  \"elts\": {},\n  \"entry_bytes\": {entry_bytes},\n  \
         \"cold_secs\": {:.6},\n  \"warm_remote_secs\": {:.6},\n  \"warm_local_secs\": {:.6},\n  \
         \"remote_speedup\": {remote_speedup:.3},\n  \
         \"local_vs_remote\": {:.3}\n}}\n",
        cold_suite.elts.len(),
        cold.as_secs_f64(),
        warm_remote.as_secs_f64(),
        warm_local.as_secs_f64(),
        warm_remote.as_secs_f64() / warm_local.as_secs_f64().max(f64::EPSILON),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, json).expect("BENCH_serve.json is writable");
    println!("remote_cache: wrote {}", path.display());

    handle.shutdown();
    std::fs::remove_dir_all(&server_dir).ok();
    std::fs::remove_dir_all(&cold_local).ok();
}

criterion_group!(
    benches,
    bench_cold,
    bench_warm_remote,
    bench_warm_local,
    serve_summary
);
criterion_main!(benches);
