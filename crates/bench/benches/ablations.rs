//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * canonical symmetry reduction during enumeration (§VI-A) on vs. off;
//! * relation-aware execution branching: enumerating `co_pa` orders only
//!   when the MTM mentions them (x86t_elt does not);
//! * the explicit operational backend vs. the relational/SAT backend;
//! * the cost of modeling dirty-bit updates as writes instead of RMWs
//!   (§III-A2) — measured as the bound headroom it buys back.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use transform_core::exec::{EltBuilder, Execution};
use transform_core::ids::{Pa, Va};
use transform_synth::engine::Backend;
use transform_synth::programs::{programs, EnumOptions};
use transform_synth::{execs, satgen, synthesize_suite, SynthOptions};
use transform_x86::x86t_elt;

fn remap_skeleton() -> Execution {
    let mut b = EltBuilder::new();
    let t = b.thread();
    let w = b.pte_write(t, Va(0), Pa(1));
    let i = b.invlpg(t, Va(0));
    b.remap(w, i);
    b.read_walk(t, Va(0));
    b.build()
}

fn bench_symmetry_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/symmetry_reduction");
    group.sample_size(10);
    for on in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if on { "on" } else { "off" }),
            &on,
            |b, &on| {
                let mut opts = EnumOptions::new(5);
                opts.allow_fences = false;
                opts.allow_rmw = false;
                opts.symmetry_reduction = on;
                b.iter(|| programs(&opts).len())
            },
        );
    }
    group.finish();
}

fn bench_co_pa_branching(c: &mut Criterion) {
    // Two PTE writes aliasing one PA: branching multiplies executions.
    let mut b = EltBuilder::new();
    let t = b.thread();
    let w1 = b.pte_write(t, Va(0), Pa(2));
    let i1 = b.invlpg(t, Va(0));
    b.remap(w1, i1);
    let w2 = b.pte_write(t, Va(1), Pa(2));
    let i2 = b.invlpg(t, Va(1));
    b.remap(w2, i2);
    let skel = b.build();
    let mut group = c.benchmark_group("ablations/co_pa_branching");
    for branch in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if branch { "branch" } else { "default" }),
            &branch,
            |bch, &branch| bch.iter(|| execs::executions(&skel, branch).len()),
        );
    }
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let mtm = x86t_elt();
    let skel = remap_skeleton();
    let mut group = c.benchmark_group("ablations/backend");
    group.sample_size(10);
    group.bench_function("explicit_filter", |b| {
        b.iter(|| {
            execs::executions(&skel, false)
                .into_iter()
                .filter(|x| mtm.permits(x).violates("invlpg"))
                .count()
        })
    });
    group.bench_function("relational_sat", |b| {
        b.iter(|| satgen::violating_executions(&skel, &mtm, "invlpg", false, usize::MAX).len())
    });
    group.finish();
}

fn bench_backend_full_suite(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("ablations/backend_suite_bound4");
    group.sample_size(10);
    for backend in [Backend::Explicit, Backend::Relational] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let mut opts = SynthOptions::new(4);
                opts.enumeration.allow_fences = false;
                opts.enumeration.allow_rmw = false;
                opts.backend = backend;
                b.iter(|| synthesize_suite(&mtm, "invlpg", &opts).elts.len())
            },
        );
    }
    group.finish();
}

fn bench_dirty_bit_modeling(c: &mut Criterion) {
    // §III-A2: modeling the dirty-bit update as a Write costs 2 events per
    // user write; as an RMW it would cost 3. Synthesizing the same
    // write-bearing space one event deeper approximates the RMW tax.
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("ablations/dirty_bit_as_write_vs_rmw");
    group.sample_size(10);
    for (label, bound) in [("write_model_bound4", 4usize), ("rmw_tax_bound5", 5usize)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &bound, |b, &bound| {
            let mut opts = SynthOptions::new(bound);
            opts.enumeration.allow_fences = false;
            opts.enumeration.allow_rmw = false;
            b.iter(|| synthesize_suite(&mtm, "sc_per_loc", &opts).elts.len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_symmetry_reduction,
    bench_co_pa_branching,
    bench_backends,
    bench_backend_full_suite,
    bench_dirty_bit_modeling
);
criterion_main!(benches);
