//! Parallel synthesis speedup: wall-clock for the `transform-par`
//! orchestrator at jobs ∈ {1, 2, 8}, at a fixed bound, on both backends.
//!
//! Besides the per-point measurements, the run prints a one-line speedup
//! summary (jobs=1 time over jobs=8 time). On a single-core host the
//! ratio hovers around 1.0 — the orchestrator's overhead — and grows
//! toward the core count on real hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;
use transform_par::synthesize_suite_jobs;
use transform_synth::{Backend, SynthOptions};
use transform_x86::x86t_elt;

const BOUND: usize = 5;
const AXIOM: &str = "sc_per_loc";

fn opts(backend: Backend) -> SynthOptions {
    let mut o = SynthOptions::new(BOUND);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o.backend = backend;
    o
}

fn bench_jobs_sweep(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("parallel_speedup/jobs");
    group.sample_size(10);
    for backend in [Backend::Explicit, Backend::Relational] {
        for jobs in [1usize, 2, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}"), jobs),
                &jobs,
                |b, &jobs| {
                    let o = opts(backend);
                    b.iter(|| synthesize_suite_jobs(&mtm, AXIOM, &o, jobs))
                },
            );
        }
    }
    group.finish();
}

fn speedup_summary(_c: &mut Criterion) {
    let mtm = x86t_elt();
    let o = opts(Backend::Explicit);
    let time = |jobs: usize| {
        let start = Instant::now();
        let suite = synthesize_suite_jobs(&mtm, AXIOM, &o, jobs);
        (start.elapsed(), suite.elts.len())
    };
    let (t1, n1) = time(1);
    let (t8, n8) = time(8);
    assert_eq!(n1, n8, "parallel suite diverged from sequential");
    println!(
        "parallel_speedup summary: `{AXIOM}` @ bound {BOUND}: jobs=1 {t1:?}, jobs=8 {t8:?} \
         => {:.2}x on {} core(s)",
        t1.as_secs_f64() / t8.as_secs_f64().max(f64::EPSILON),
        transform_par::default_jobs(),
    );
}

criterion_group!(benches, bench_jobs_sweep, speedup_summary);
criterion_main!(benches);
