//! Enumeration throughput, streamed vs eager, and what fusing program
//! generation into the pool buys end-to-end.
//!
//! Measured per configuration:
//!
//! * programs/second of the eager `programs()` enumeration vs the
//!   partition-streamed `EnumSpace::stream()` (same sequence, proven by
//!   count);
//! * wall-clock of the two-phase reference engine
//!   (`synthesize_suite_jobs_eager`: full plan first, then the pool)
//!   vs the fused streaming pipeline (`synthesize_suite_jobs`), same
//!   suite;
//! * peak live candidates: the eager path materializes the whole
//!   enumeration at once, the streamed pipeline holds at most a few
//!   partitions (`StreamMetrics::peak_live_candidates`).
//!
//! Besides the per-point measurements, the run writes the numbers to
//! `BENCH_enum.json` at the workspace root so the perf trajectory is
//! tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use transform_par::{
    default_jobs, synthesize_suite_jobs_eager, synthesize_suite_streamed_metrics, StreamMetrics,
    SuiteSink,
};
use transform_synth::programs::EnumSpace;
use transform_synth::{ShardStats, SuiteRecord, SynthOptions};
use transform_x86::x86t_elt;

const AXIOM: &str = "sc_per_loc";

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = true;
    o.enumeration.allow_rmw = true;
    o
}

fn jobs() -> usize {
    default_jobs().max(2)
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enum_throughput");
    group.sample_size(10);
    let o = opts(5);
    group.bench_function("eager/bound5", |b| {
        b.iter(|| transform_synth::programs::programs(&o.enumeration).len())
    });
    group.bench_function("streamed/bound5", |b| {
        b.iter(|| {
            EnumSpace::with_target_partitions(&o.enumeration, jobs() * 8)
                .stream()
                .count()
        })
    });
    group.finish();
}

/// A collecting sink, deliberately implemented against the public
/// [`SuiteSink`] trait (the same API the store streams through) rather
/// than any internal collector, so the bench measures the external
/// contract.
struct Collect(Mutex<Vec<SuiteRecord>>);

impl SuiteSink for Collect {
    fn shard_done(&self, _stats: ShardStats, records: Vec<SuiteRecord>) {
        self.0.lock().expect("collect lock").extend(records);
    }
}

struct Point {
    bound: usize,
    programs: usize,
    elts: usize,
    enum_eager: Duration,
    enum_streamed: Duration,
    synth_eager: Duration,
    synth_fused: Duration,
    peak_live_eager: usize,
    metrics: StreamMetrics,
}

fn measure(bound: usize) -> Point {
    let mtm = x86t_elt();
    let o = opts(bound);
    let jobs = jobs();

    let start = Instant::now();
    let eager_programs = transform_synth::programs::programs(&o.enumeration);
    let enum_eager = start.elapsed();
    let peak_live_eager = eager_programs.len();

    let start = Instant::now();
    let streamed_count = EnumSpace::with_target_partitions(&o.enumeration, jobs * 8)
        .stream()
        .count();
    let enum_streamed = start.elapsed();
    assert_eq!(
        peak_live_eager, streamed_count,
        "stream diverged from eager"
    );

    let start = Instant::now();
    let eager_suite = synthesize_suite_jobs_eager(&mtm, AXIOM, &o, jobs);
    let synth_eager = start.elapsed();

    let sink = Collect(Mutex::new(Vec::new()));
    let start = Instant::now();
    let (stats, metrics) = synthesize_suite_streamed_metrics(&mtm, AXIOM, &o, jobs, &sink);
    let synth_fused = start.elapsed();
    let mut records = sink.0.into_inner().expect("collect lock");
    records.sort_by_key(|r| r.index);
    assert_eq!(records.len(), eager_suite.elts.len(), "suite sizes diverge");
    for (r, e) in records.iter().zip(&eager_suite.elts) {
        assert_eq!(r.elt.program, e.program, "fused suite diverged from eager");
    }
    assert_eq!(stats.programs, eager_suite.stats.programs);
    // The whole point: the pipeline never materializes the full
    // enumeration at once.
    if peak_live_eager > 100 {
        assert!(
            metrics.peak_live_candidates < peak_live_eager,
            "peak live {} should stay below the full enumeration {}",
            metrics.peak_live_candidates,
            peak_live_eager
        );
    }

    Point {
        bound,
        programs: stats.programs,
        elts: records.len(),
        enum_eager,
        enum_streamed,
        synth_eager,
        synth_fused,
        peak_live_eager,
        metrics,
    }
}

fn json_point(p: &Point) -> String {
    format!(
        concat!(
            "{{\"bound\": {}, \"fences\": true, \"rmw\": true, ",
            "\"programs\": {}, \"elts\": {}, ",
            "\"enum_eager_secs\": {:.6}, \"enum_streamed_secs\": {:.6}, ",
            "\"enum_eager_programs_per_sec\": {:.1}, ",
            "\"enum_streamed_programs_per_sec\": {:.1}, ",
            "\"synth_eager_secs\": {:.6}, \"synth_fused_secs\": {:.6}, ",
            "\"fused_speedup\": {:.3}, ",
            "\"peak_live_eager\": {}, \"peak_live_streamed\": {}, ",
            "\"partitions\": {}, \"batches\": {}, \"final_batch_size\": {}}}"
        ),
        p.bound,
        p.programs,
        p.elts,
        p.enum_eager.as_secs_f64(),
        p.enum_streamed.as_secs_f64(),
        p.programs as f64 / p.enum_eager.as_secs_f64().max(f64::EPSILON),
        p.programs as f64 / p.enum_streamed.as_secs_f64().max(f64::EPSILON),
        p.synth_eager.as_secs_f64(),
        p.synth_fused.as_secs_f64(),
        p.synth_eager.as_secs_f64() / p.synth_fused.as_secs_f64().max(f64::EPSILON),
        p.peak_live_eager,
        p.metrics.peak_live_candidates,
        p.metrics.partitions,
        p.metrics.batches,
        p.metrics.final_batch_size,
    )
}

fn throughput_summary(_c: &mut Criterion) {
    let points: Vec<Point> = [5usize, 6].iter().map(|&b| measure(b)).collect();
    for p in &points {
        println!(
            "enum_throughput summary: `{AXIOM}` @ bound {} --fences --rmw on {} workers: \
             enum eager {:?} vs streamed {:?}; synth eager {:?} vs fused {:?} ({:.2}x); \
             peak live {} -> {} (of {} programs, {} partitions, {} batches)",
            p.bound,
            jobs(),
            p.enum_eager,
            p.enum_streamed,
            p.synth_eager,
            p.synth_fused,
            p.synth_eager.as_secs_f64() / p.synth_fused.as_secs_f64().max(f64::EPSILON),
            p.peak_live_eager,
            p.metrics.peak_live_candidates,
            p.programs,
            p.metrics.partitions,
            p.metrics.batches,
        );
    }
    let body = points
        .iter()
        .map(json_point)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"enum_throughput\",\n  \"axiom\": \"{AXIOM}\",\n  \
         \"jobs\": {},\n  \"points\": [\n    {}\n  ]\n}}\n",
        jobs(),
        body
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_enum.json");
    std::fs::write(&path, json).expect("BENCH_enum.json is writable");
    println!("enum_throughput: wrote {}", path.display());
}

criterion_group!(benches, bench_enumeration, throughput_summary);
criterion_main!(benches);
