//! Enumeration throughput, streamed vs eager, and what fusing program
//! generation into the pool buys end-to-end.
//!
//! Measured per configuration:
//!
//! * programs/second of the eager `programs()` enumeration vs the
//!   partition-streamed `EnumSpace::stream()` (same sequence, proven by
//!   count);
//! * wall-clock of the two-phase reference engine
//!   (`synthesize_suite_jobs_eager`: full plan first, then the pool)
//!   vs the fused streaming pipeline (`synthesize_suite_jobs`), same
//!   suite;
//! * peak live candidates: the eager path materializes the whole
//!   enumeration at once, the streamed pipeline holds at most a few
//!   partitions (`StreamMetrics::peak_live_candidates`).
//!
//! * fused cross-axiom synthesis: the shared-plan two-phase baseline
//!   (`synthesize_all_jobs_eager`) vs the fused all-axiom stream
//!   (`synthesize_all_jobs`), same per-axiom suites;
//! * balance modes: partition counts and mass distribution of the
//!   depth-2 split vs mass-estimated splitting
//!   (`EnumSpace::balanced_for_target`), plus the streamed enumeration
//!   wall-clock of each;
//! * progress-instrumentation overhead: the fused run with a subscribed
//!   journaling `ProgressState` (published counters, span-event journal
//!   recording, plus a polling sampler thread at the coalesced 100 ms
//!   cadence `--progress` actually samples at) vs the unobserved fused
//!   run, recorded as `progress_overhead_pct` per point. Acceptance
//!   bar: ≤ 5% even at the short bound-5 point, where a hot-polling
//!   sampler used to steal a visible slice of a two-core budget.
//!
//! * fleet wire tax: the all-axiom bound-5 run driven through a
//!   loopback coordinator by two leasing workers (`JobSpec` →
//!   `POST /v1/lease` → `execute_lease` → `PUT /v1/shard` → ordinal
//!   merge) vs the same fused run in-process, recorded as the `fleet`
//!   section — the per-job overhead a real multi-machine fleet
//!   amortizes across hosts.
//!
//! Besides the per-point measurements, the run writes the numbers to
//! `BENCH_enum.json` at the workspace root so the perf trajectory is
//! tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use transform_par::{
    default_jobs, synthesize_all_jobs, synthesize_all_jobs_eager, synthesize_suite_jobs_eager,
    synthesize_suite_streamed_metrics, synthesize_suite_streamed_observed, ProgressState,
    StreamMetrics, SuiteSink,
};
use transform_store::{
    execute_lease, read_suite, suite_fingerprint, HttpTier, JobSpec, Store, TieredCache, WarmMode,
};
use transform_synth::programs::{Balance, EnumSpace};
use transform_synth::{ShardStats, SuiteRecord, SynthOptions};
use transform_x86::x86t_elt;

const AXIOM: &str = "sc_per_loc";

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = true;
    o.enumeration.allow_rmw = true;
    o
}

fn jobs() -> usize {
    default_jobs().max(2)
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enum_throughput");
    group.sample_size(10);
    let o = opts(5);
    group.bench_function("eager/bound5", |b| {
        b.iter(|| transform_synth::programs::programs(&o.enumeration).len())
    });
    group.bench_function("streamed/bound5", |b| {
        b.iter(|| {
            EnumSpace::with_target_partitions(&o.enumeration, jobs() * 8)
                .stream()
                .count()
        })
    });
    group.finish();
}

/// A collecting sink, deliberately implemented against the public
/// [`SuiteSink`] trait (the same API the store streams through) rather
/// than any internal collector, so the bench measures the external
/// contract.
struct Collect(Mutex<Vec<SuiteRecord>>);

impl SuiteSink for Collect {
    fn shard_done(&self, _stats: ShardStats, records: Vec<SuiteRecord>) {
        self.0.lock().expect("collect lock").extend(records);
    }
}

struct Point {
    bound: usize,
    programs: usize,
    elts: usize,
    enum_eager: Duration,
    enum_streamed: Duration,
    synth_eager: Duration,
    synth_fused: Duration,
    synth_observed: Duration,
    peak_live_eager: usize,
    metrics: StreamMetrics,
}

fn measure(bound: usize) -> Point {
    let mtm = x86t_elt();
    let o = opts(bound);
    let jobs = jobs();

    let start = Instant::now();
    let eager_programs = transform_synth::programs::programs(&o.enumeration);
    let enum_eager = start.elapsed();
    let peak_live_eager = eager_programs.len();

    let start = Instant::now();
    let streamed_count = EnumSpace::with_target_partitions(&o.enumeration, jobs * 8)
        .stream()
        .count();
    let enum_streamed = start.elapsed();
    assert_eq!(
        peak_live_eager, streamed_count,
        "stream diverged from eager"
    );

    let start = Instant::now();
    let eager_suite = synthesize_suite_jobs_eager(&mtm, AXIOM, &o, jobs);
    let synth_eager = start.elapsed();

    let sink = Collect(Mutex::new(Vec::new()));
    let start = Instant::now();
    let (stats, metrics) = synthesize_suite_streamed_metrics(&mtm, AXIOM, &o, jobs, &sink);
    let synth_fused = start.elapsed();
    let mut records = sink.0.into_inner().expect("collect lock");
    records.sort_by_key(|r| r.index);
    assert_eq!(records.len(), eager_suite.elts.len(), "suite sizes diverge");
    for (r, e) in records.iter().zip(&eager_suite.elts) {
        assert_eq!(r.elt.program, e.program, "fused suite diverged from eager");
    }
    assert_eq!(stats.programs, eager_suite.stats.programs);
    // The whole point: the pipeline never materializes the full
    // enumeration at once.
    if peak_live_eager > 100 {
        assert!(
            metrics.peak_live_candidates < peak_live_eager,
            "peak live {} should stay below the full enumeration {}",
            metrics.peak_live_candidates,
            peak_live_eager
        );
    }

    // The same fused run with a live observer subscribed: publishing
    // the progress atomics, recording the span-event journal (the way
    // any `--cache` run does), plus a sampling thread polling snapshots
    // at the 100 ms cadence the `--progress` reporter coalesces to. The
    // delta against the unobserved fused run is the instrumentation
    // overhead (acceptance bar: ≤ 5% at bound 5, < 2% at bound 6). The
    // cadence matters on small runs: a 10 ms hot poll used to charge
    // ~27% to a half-second bound-5 point on a two-core runner, all of
    // it sampler-thread contention rather than instrumentation cost.
    let sink = Collect(Mutex::new(Vec::new()));
    let progress = std::sync::Arc::new(ProgressState::with_journal(&[AXIOM]));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let progress = std::sync::Arc::clone(&progress);
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut samples = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = progress.snapshot();
                samples += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            samples
        })
    };
    let start = Instant::now();
    let (observed_stats, observed_metrics) =
        synthesize_suite_streamed_observed(&mtm, AXIOM, &o, jobs, &sink, &progress);
    let synth_observed = start.elapsed();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    sampler.join().expect("sampler joins");
    let mut observed_records = sink.0.into_inner().expect("collect lock");
    observed_records.sort_by_key(|r| r.index);
    assert_eq!(observed_records.len(), records.len());
    for (r, e) in observed_records.iter().zip(&records) {
        assert_eq!(r.elt.program, e.elt.program, "observed suite diverged");
    }
    assert_eq!(observed_stats.programs, stats.programs);
    assert_eq!(observed_metrics.partitions, metrics.partitions);
    // The overhead number must cover a *recording* run: the journal
    // has to have actually captured the run's span events.
    let events = progress.take_journal();
    assert!(
        events.len() > metrics.batches,
        "journal captured only {} events across {} batches",
        events.len(),
        metrics.batches
    );

    Point {
        bound,
        programs: stats.programs,
        elts: records.len(),
        enum_eager,
        enum_streamed,
        synth_eager,
        synth_fused,
        synth_observed,
        peak_live_eager,
        metrics,
    }
}

fn json_point(p: &Point) -> String {
    format!(
        concat!(
            "{{\"bound\": {}, \"fences\": true, \"rmw\": true, ",
            "\"programs\": {}, \"elts\": {}, ",
            "\"enum_eager_secs\": {:.6}, \"enum_streamed_secs\": {:.6}, ",
            "\"enum_eager_programs_per_sec\": {:.1}, ",
            "\"enum_streamed_programs_per_sec\": {:.1}, ",
            "\"synth_eager_secs\": {:.6}, \"synth_fused_secs\": {:.6}, ",
            "\"fused_speedup\": {:.3}, ",
            "\"synth_observed_secs\": {:.6}, \"progress_overhead_pct\": {:.2}, ",
            "\"peak_live_eager\": {}, \"peak_live_streamed\": {}, ",
            "\"partitions\": {}, \"batches\": {}, \"final_batch_size\": {}}}"
        ),
        p.bound,
        p.programs,
        p.elts,
        p.enum_eager.as_secs_f64(),
        p.enum_streamed.as_secs_f64(),
        p.programs as f64 / p.enum_eager.as_secs_f64().max(f64::EPSILON),
        p.programs as f64 / p.enum_streamed.as_secs_f64().max(f64::EPSILON),
        p.synth_eager.as_secs_f64(),
        p.synth_fused.as_secs_f64(),
        p.synth_eager.as_secs_f64() / p.synth_fused.as_secs_f64().max(f64::EPSILON),
        p.synth_observed.as_secs_f64(),
        (p.synth_observed.as_secs_f64() / p.synth_fused.as_secs_f64().max(f64::EPSILON) - 1.0)
            * 100.0,
        p.peak_live_eager,
        p.metrics.peak_live_candidates,
        p.metrics.partitions,
        p.metrics.batches,
        p.metrics.final_batch_size,
    )
}

/// One balance mode's split of the bound-5 `--fences --rmw` space:
/// partition counts, the mass distribution, and the streamed
/// enumeration wall-clock.
struct BalancePoint {
    mode: Balance,
    partitions: usize,
    total_mass: u64,
    max_mass: u64,
    enum_secs: f64,
}

fn measure_balance(bound: usize) -> Vec<BalancePoint> {
    let o = opts(bound);
    let target = jobs() * 8;
    [Balance::Depth, Balance::Mass]
        .into_iter()
        .map(|mode| {
            let space = match mode {
                Balance::Depth => EnumSpace::with_target_partitions(&o.enumeration, target),
                Balance::Mass => EnumSpace::balanced_for_target(&o.enumeration, target),
            };
            let masses = space.masses();
            let start = Instant::now();
            let streamed = space.stream().count();
            let enum_secs = start.elapsed().as_secs_f64();
            assert!(streamed > 0);
            BalancePoint {
                mode,
                partitions: space.partition_count(),
                total_mass: masses.iter().sum(),
                max_mass: masses.iter().copied().max().unwrap_or(0),
                enum_secs,
            }
        })
        .collect()
}

/// The fused cross-axiom run vs the shared-plan two-phase baseline:
/// every axiom of x86t_elt in one pass, same suites both ways.
struct AllAxiomsPoint {
    bound: usize,
    axioms: usize,
    elts_total: usize,
    eager_secs: f64,
    fused_secs: f64,
}

fn measure_all_axioms(bound: usize) -> AllAxiomsPoint {
    let mtm = x86t_elt();
    let o = opts(bound);
    let jobs = jobs();

    let start = Instant::now();
    let eager = synthesize_all_jobs_eager(&mtm, &o, jobs);
    let eager_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let fused = synthesize_all_jobs(&mtm, &o, jobs);
    let fused_secs = start.elapsed().as_secs_f64();

    assert_eq!(eager.len(), fused.len());
    for (axiom, a) in &eager {
        let b = &fused[axiom];
        assert_eq!(
            a.elts.len(),
            b.elts.len(),
            "{axiom}: fused all-axiom run diverged from the shared-plan baseline"
        );
        for (x, y) in a.elts.iter().zip(&b.elts) {
            assert_eq!(x.program, y.program, "{axiom}");
        }
    }
    AllAxiomsPoint {
        bound,
        axioms: fused.len(),
        elts_total: fused.values().map(|s| s.elts.len()).sum(),
        eager_secs,
        fused_secs,
    }
}

/// The cross-bound headline: a bound-N run seeded from the sealed
/// bound-N−1 suite (fully-covered partitions skipped, result sealed as
/// a delta entry) vs the same run cold into an empty store. Both sides
/// pay the parent seal separately so the timed region is exactly the
/// bound-N synthesis; the warm suite must match the cold one
/// program-for-program, and the delta entry is compared against the
/// full entry the cold run seals.
struct WarmPoint {
    bound: usize,
    elts: usize,
    parent_secs: f64,
    cold_secs: f64,
    warm_secs: f64,
    full_entry_bytes: usize,
    delta_entry_bytes: usize,
}

fn measure_warm(bound: usize) -> WarmPoint {
    let mtm = x86t_elt();
    let o = opts(bound);
    let parent_o = opts(bound - 1);
    let jobs = jobs();
    let root = std::env::temp_dir().join(format!(
        "transform-bench-warm-{}-{bound}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();

    // Cold side: parent sealed first (so both stores hold the same
    // entries afterwards), then the timed bound-N run seals a full
    // entry.
    let cold = TieredCache::new(Store::open(root.join("cold")).expect("cold store"));
    let start = Instant::now();
    cold.cached_or_synthesize(&mtm, AXIOM, &parent_o, jobs)
        .expect("parent seals");
    let parent_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let (cold_suite, _) = cold
        .cached_or_synthesize(&mtm, AXIOM, &o, jobs)
        .expect("cold bound-N seals");
    let cold_secs = start.elapsed().as_secs_f64();

    // Warm side: same parent in a fresh store, then the timed bound-N
    // run seeds from it and seals a delta.
    let warm = TieredCache::new(Store::open(root.join("warm")).expect("warm store"));
    warm.cached_or_synthesize(&mtm, AXIOM, &parent_o, jobs)
        .expect("parent seals");
    let start = Instant::now();
    let (warm_suite, _) = warm
        .cached_or_synthesize_warm(&mtm, AXIOM, &o, jobs, WarmMode::Require, None)
        .expect("warm bound-N seals");
    let warm_secs = start.elapsed().as_secs_f64();

    assert_eq!(warm_suite.elts.len(), cold_suite.elts.len());
    for (w, c) in warm_suite.elts.iter().zip(&cold_suite.elts) {
        assert_eq!(w.program, c.program, "warm suite diverged from cold");
    }
    assert_eq!(warm_suite.stats.programs, cold_suite.stats.programs);

    let fp = suite_fingerprint(&mtm, AXIOM, &o);
    let entry_len = |cache: &TieredCache| {
        cache
            .local()
            .entry_bytes(fp)
            .expect("entry readable")
            .expect("entry sealed")
            .len()
    };
    let full_entry_bytes = entry_len(&cold);
    let delta_entry_bytes = entry_len(&warm);
    assert_eq!(
        cold.local().entry_is_delta(fp).expect("readable"),
        Some(false)
    );
    assert_eq!(
        warm.local().entry_is_delta(fp).expect("readable"),
        Some(true)
    );

    std::fs::remove_dir_all(&root).ok();
    WarmPoint {
        bound,
        elts: cold_suite.elts.len(),
        parent_secs,
        cold_secs,
        warm_secs,
        full_entry_bytes,
        delta_entry_bytes,
    }
}

/// The distributed headline: an all-axiom run driven through a loopback
/// coordinator by two leasing workers vs the same fused run in-process.
/// The fleet pays the HTTP round-trips, shard encode/upload, and the
/// coordinator's ordinal merge; the suites must come out identical
/// program-for-program, and the wall-clock ratio is the wire tax a real
/// multi-machine fleet amortizes across hosts.
struct FleetPoint {
    bound: usize,
    workers: usize,
    ranges: usize,
    axioms: usize,
    elts_total: usize,
    local_secs: f64,
    fleet_secs: f64,
}

fn measure_fleet(bound: usize, workers: usize) -> FleetPoint {
    use transform_serve::{ServeOptions, Server};
    let mtm = x86t_elt();
    let o = opts(bound);
    let jobs = jobs();
    let axioms: Vec<&str> = mtm.axioms().iter().map(|a| a.name.as_str()).collect();

    let start = Instant::now();
    let local = synthesize_all_jobs(&mtm, &o, jobs);
    let local_secs = start.elapsed().as_secs_f64();

    let root = std::env::temp_dir().join(format!(
        "transform-bench-fleet-{}-{bound}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();
    let server = Server::bind(&root, "127.0.0.1:0", ServeOptions::default()).expect("binds");
    let url = format!("http://{}", server.local_addr());
    let handle = server.spawn();

    let spec = JobSpec::for_run(&mtm, &axioms, &o, jobs as u32, workers * 2, 60_000);
    let ranges = spec.ranges.len();
    let start = Instant::now();
    let client = HttpTier::new(&url).expect("valid URL");
    let job = client.create_job(&spec.encode()).expect("job accepted");
    let crews: Vec<_> = (0..workers)
        .map(|_| {
            let url = url.clone();
            std::thread::spawn(move || {
                let client = HttpTier::new(&url).expect("valid URL");
                while let Some(grant) = client.lease("bench-worker").expect("lease call") {
                    let bytes = execute_lease(&grant, jobs).expect("range runs").encode();
                    client
                        .put_shard(grant.job, grant.lo, grant.hi, &bytes)
                        .expect("upload");
                }
            })
        })
        .collect();
    for crew in crews {
        crew.join().expect("worker joins");
    }
    let status = client.job_status(job).expect("status").expect("known");
    assert!(status.complete, "the drained fleet sealed the job");
    let fleet_secs = start.elapsed().as_secs_f64();
    handle.shutdown();

    let store = Store::open(&root).expect("opens");
    let mut elts_total = 0usize;
    for axiom in &axioms {
        let fp = suite_fingerprint(&mtm, axiom, &o);
        let sealed = read_suite(store.open_suite(fp).expect("sealed")).expect("reads");
        let reference = &local[*axiom];
        assert_eq!(sealed.elts.len(), reference.elts.len(), "{axiom}");
        for (a, b) in sealed.elts.iter().zip(&reference.elts) {
            assert_eq!(a.program, b.program, "{axiom}: fleet diverged from local");
        }
        elts_total += sealed.elts.len();
    }
    std::fs::remove_dir_all(&root).ok();
    FleetPoint {
        bound,
        workers,
        ranges,
        axioms: axioms.len(),
        elts_total,
        local_secs,
        fleet_secs,
    }
}

fn throughput_summary(_c: &mut Criterion) {
    let points: Vec<Point> = [5usize, 6].iter().map(|&b| measure(b)).collect();
    for p in &points {
        println!(
            "enum_throughput summary: `{AXIOM}` @ bound {} --fences --rmw on {} workers: \
             enum eager {:?} vs streamed {:?}; synth eager {:?} vs fused {:?} ({:.2}x); \
             observed fused {:?} ({:+.2}% progress overhead); \
             peak live {} -> {} (of {} programs, {} partitions, {} batches)",
            p.bound,
            jobs(),
            p.enum_eager,
            p.enum_streamed,
            p.synth_eager,
            p.synth_fused,
            p.synth_eager.as_secs_f64() / p.synth_fused.as_secs_f64().max(f64::EPSILON),
            p.synth_observed,
            (p.synth_observed.as_secs_f64() / p.synth_fused.as_secs_f64().max(f64::EPSILON) - 1.0)
                * 100.0,
            p.peak_live_eager,
            p.metrics.peak_live_candidates,
            p.programs,
            p.metrics.partitions,
            p.metrics.batches,
        );
    }
    let balance = measure_balance(5);
    for b in &balance {
        println!(
            "enum_throughput balance: {} split at bound 5 --fences --rmw: \
             {} partitions, max mass {} of {} total, streamed in {:.3}s",
            b.mode.name(),
            b.partitions,
            b.max_mass,
            b.total_mass,
            b.enum_secs,
        );
    }
    let all = measure_all_axioms(4);
    println!(
        "enum_throughput all-axioms: {} axioms @ bound {} --fences --rmw on {} workers: \
         shared-plan eager {:.3}s vs fused {:.3}s ({:.2}x), {} ELTs total",
        all.axioms,
        all.bound,
        jobs(),
        all.eager_secs,
        all.fused_secs,
        all.eager_secs / all.fused_secs.max(f64::EPSILON),
        all.elts_total,
    );
    let warm = measure_warm(6);
    println!(
        "enum_throughput warm-start: `{AXIOM}` @ bound {} --fences --rmw on {} workers: \
         cold {:.3}s vs warm {:.3}s ({:.2}x, parent seal {:.3}s); \
         entry {} B full vs {} B delta ({:.1}% of full)",
        warm.bound,
        jobs(),
        warm.cold_secs,
        warm.warm_secs,
        warm.cold_secs / warm.warm_secs.max(f64::EPSILON),
        warm.parent_secs,
        warm.full_entry_bytes,
        warm.delta_entry_bytes,
        warm.delta_entry_bytes as f64 / warm.full_entry_bytes.max(1) as f64 * 100.0,
    );
    let fleet = measure_fleet(5, 2);
    println!(
        "enum_throughput fleet: {} axioms @ bound {} --fences --rmw, {} loopback workers \
         over {} leased ranges: local fused {:.3}s vs fleet {:.3}s ({:.2}x wire tax), \
         {} ELTs total, merged suites identical",
        fleet.axioms,
        fleet.bound,
        fleet.workers,
        fleet.ranges,
        fleet.local_secs,
        fleet.fleet_secs,
        fleet.fleet_secs / fleet.local_secs.max(f64::EPSILON),
        fleet.elts_total,
    );

    let body = points
        .iter()
        .map(json_point)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let balance_body = balance
        .iter()
        .map(|b| {
            format!(
                concat!(
                    "{{\"mode\": \"{}\", \"bound\": 5, \"partitions\": {}, ",
                    "\"total_mass\": {}, \"max_mass\": {}, \"enum_secs\": {:.6}}}"
                ),
                b.mode.name(),
                b.partitions,
                b.total_mass,
                b.max_mass,
                b.enum_secs,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let all_body = format!(
        concat!(
            "{{\"bound\": {}, \"fences\": true, \"rmw\": true, \"axioms\": {}, ",
            "\"elts_total\": {}, \"synth_all_eager_secs\": {:.6}, ",
            "\"synth_all_fused_secs\": {:.6}, \"fused_speedup\": {:.3}}}"
        ),
        all.bound,
        all.axioms,
        all.elts_total,
        all.eager_secs,
        all.fused_secs,
        all.eager_secs / all.fused_secs.max(f64::EPSILON),
    );
    let warm_body = format!(
        concat!(
            "{{\"bound\": {}, \"fences\": true, \"rmw\": true, \"elts\": {}, ",
            "\"parent_seal_secs\": {:.6}, \"cold_secs\": {:.6}, \"warm_secs\": {:.6}, ",
            "\"warm_speedup\": {:.3}, \"full_entry_bytes\": {}, ",
            "\"delta_entry_bytes\": {}, \"delta_size_ratio\": {:.3}}}"
        ),
        warm.bound,
        warm.elts,
        warm.parent_secs,
        warm.cold_secs,
        warm.warm_secs,
        warm.cold_secs / warm.warm_secs.max(f64::EPSILON),
        warm.full_entry_bytes,
        warm.delta_entry_bytes,
        warm.delta_entry_bytes as f64 / warm.full_entry_bytes.max(1) as f64,
    );
    let fleet_body = format!(
        concat!(
            "{{\"bound\": {}, \"fences\": true, \"rmw\": true, \"workers\": {}, ",
            "\"ranges\": {}, \"axioms\": {}, \"elts_total\": {}, ",
            "\"local_secs\": {:.6}, \"fleet_secs\": {:.6}, \"fleet_vs_local\": {:.3}}}"
        ),
        fleet.bound,
        fleet.workers,
        fleet.ranges,
        fleet.axioms,
        fleet.elts_total,
        fleet.local_secs,
        fleet.fleet_secs,
        fleet.fleet_secs / fleet.local_secs.max(f64::EPSILON),
    );
    let json = format!(
        "{{\n  \"bench\": \"enum_throughput\",\n  \"axiom\": \"{AXIOM}\",\n  \
         \"jobs\": {},\n  \"points\": [\n    {}\n  ],\n  \
         \"balance\": [\n    {}\n  ],\n  \"all_axioms\": {},\n  \
         \"warm_start\": {},\n  \"fleet\": {}\n}}\n",
        jobs(),
        body,
        balance_body,
        all_body,
        warm_body,
        fleet_body,
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_enum.json");
    std::fs::write(&path, json).expect("BENCH_enum.json is writable");
    println!("enum_throughput: wrote {}", path.display());
}

criterion_group!(benches, bench_enumeration, throughput_summary);
criterion_main!(benches);
