//! §VI-B — the COATCheck comparison pipeline: classification of the
//! 40-test reconstructed suite against synthesized program keys.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use transform_bench::all_suites;
use transform_x86::{coatcheck, compare, x86t_elt};

fn bench_classification(c: &mut Criterion) {
    let mtm = x86t_elt();
    // Build the synthesized keys once; the bench measures classification.
    let suites = all_suites(&mtm, 5, Duration::from_secs(120), 1);
    let keys = compare::synthesized_keys(suites.values());
    let tests = coatcheck::suite();

    let mut group = c.benchmark_group("comparison");
    group.sample_size(10);
    group.bench_function("classify_40_tests", |b| {
        b.iter(|| compare::compare_suite(&tests, &keys))
    });
    group.finish();
}

fn bench_canonicalization(c: &mut Criterion) {
    use transform_synth::canon::canonical_key;
    use transform_synth::programs::Program;
    let progs: Vec<Program> = coatcheck::suite()
        .iter()
        .filter_map(|t| t.execution.as_ref().map(Program::from_execution))
        .collect();
    let mut group = c.benchmark_group("comparison/canonical_key");
    group.bench_function("suite_programs", |b| {
        b.iter(|| progs.iter().map(|p| canonical_key(p).len()).sum::<usize>())
    });
    group.finish();
}

criterion_group!(benches, bench_classification, bench_canonicalization);
criterion_main!(benches);
