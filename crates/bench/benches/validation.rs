//! Empirical-validation benchmark — the cost of running ELTs against an
//! implementation (the paper's proposed future work, with the operational
//! reference machine standing in for silicon).
//!
//! Three series:
//! * `explore` — exhaustive interleaving exploration per figure program;
//! * `conformance` — exploration plus the permitted-outcome oracle
//!   (observed ⊆ permitted);
//! * `detect` — whole-suite bug detection (invlpg suite vs the broken
//!   TLB-shootdown machine).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use transform_core::figures;
use transform_sim::{check_conformance, detect_with_suite, explore, Bugs, SimConfig, SimProgram};
use transform_synth::engine::{synthesize_suite, SynthOptions};
use transform_x86::x86t_elt;

fn bench_explore(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_explore");
    for (name, exec, _) in figures::all_figures() {
        let prog = SimProgram::from_execution(&exec);
        g.bench_function(name, |b| {
            b.iter_batched(
                || prog.clone(),
                |p| explore(&p, &SimConfig::correct()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_conformance(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut g = c.benchmark_group("sim_conformance");
    for name in ["fig10a_ptwalk2", "fig11_cross_core_invlpg", "fig2b_sb_elt"] {
        let exec = figures::all_figures()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .expect("figure exists")
            .1;
        let prog = SimProgram::from_execution(&exec);
        g.bench_function(name, |b| {
            b.iter_batched(
                || prog.clone(),
                |p| check_conformance(&p, &mtm, &SimConfig::correct()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut opts = SynthOptions::new(5);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;
    let suite = synthesize_suite(&mtm, "invlpg", &opts);
    let broken = SimConfig::buggy(Bugs {
        missing_remote_shootdown: true,
        ..Bugs::none()
    });
    let mut g = c.benchmark_group("sim_detect");
    g.sample_size(10);
    g.bench_function("invlpg_suite_vs_broken_shootdown", |b| {
        b.iter(|| detect_with_suite(&suite, &mtm, &broken))
    });
    g.finish();
}

criterion_group!(benches, bench_explore, bench_conformance, bench_detection);
criterion_main!(benches);
