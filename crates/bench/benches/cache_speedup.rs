//! Warm-vs-cold suite cache: wall-clock of `cached_or_synthesize` when
//! the store is empty (synthesize + seal) versus sealed (stream the
//! entry back). The paper's runs took up to a week per bound; the store
//! turns every repeat into a read.
//!
//! Besides the per-temperature measurements, the run prints a one-line
//! `cache_speedup/ratio` summary (cold time over warm time). At bound 4
//! the ratio is well over 10×, and it grows with the bound — the warm
//! path's cost scales with the suite's size, not the search space.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::path::PathBuf;
use std::time::Instant;
use transform_store::{cached_or_synthesize, Store};
use transform_synth::SynthOptions;
use transform_x86::x86t_elt;

const BOUND: usize = 4;
const AXIOM: &str = "sc_per_loc";
const JOBS: usize = 2;

fn opts() -> SynthOptions {
    SynthOptions::new(BOUND)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "transform-cache-bench-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn bench_cold(c: &mut Criterion) {
    let mtm = x86t_elt();
    let mut group = c.benchmark_group("cache_speedup");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter_batched(
            || {
                let dir = fresh_dir("cold");
                Store::open(&dir).expect("store opens")
            },
            |store| {
                let (suite, status) =
                    cached_or_synthesize(&store, &mtm, AXIOM, &opts(), JOBS).expect("synthesizes");
                assert!(!status.is_hit());
                suite.elts.len()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
    std::fs::remove_dir_all(fresh_dir("cold")).ok();
}

fn bench_warm(c: &mut Criterion) {
    let mtm = x86t_elt();
    let dir = fresh_dir("warm");
    let store = Store::open(&dir).expect("store opens");
    cached_or_synthesize(&store, &mtm, AXIOM, &opts(), JOBS).expect("seeds the entry");
    let mut group = c.benchmark_group("cache_speedup");
    group.sample_size(50);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let (suite, status) =
                cached_or_synthesize(&store, &mtm, AXIOM, &opts(), JOBS).expect("reads");
            assert!(status.is_hit());
            suite.elts.len()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn speedup_summary(_c: &mut Criterion) {
    let mtm = x86t_elt();
    let dir = fresh_dir("ratio");
    let store = Store::open(&dir).expect("store opens");

    let start = Instant::now();
    let (cold_suite, _) =
        cached_or_synthesize(&store, &mtm, AXIOM, &opts(), JOBS).expect("cold run");
    let cold = start.elapsed();

    // Median of repeated warm reads, so one slow I/O outlier cannot
    // understate the speedup.
    let mut warm_samples = Vec::new();
    let mut warm_len = 0;
    for _ in 0..9 {
        let start = Instant::now();
        let (warm_suite, status) =
            cached_or_synthesize(&store, &mtm, AXIOM, &opts(), JOBS).expect("warm run");
        warm_samples.push(start.elapsed());
        assert!(status.is_hit());
        warm_len = warm_suite.elts.len();
    }
    warm_samples.sort_unstable();
    let warm = warm_samples[warm_samples.len() / 2];
    assert_eq!(cold_suite.elts.len(), warm_len);

    let ratio = cold.as_secs_f64() / warm.as_secs_f64().max(f64::EPSILON);
    println!(
        "cache_speedup/ratio: {AXIOM} @ bound {BOUND}: cold {cold:.3?} / warm {warm:.3?} = {ratio:.1}x"
    );
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_cold, bench_warm, speedup_summary);
criterion_main!(benches);
