//! `transform-bench` — the harness that regenerates every table and
//! figure of the TransForm paper's evaluation.
//!
//! * `fig9` binary — the per-axiom suite sweep of Fig. 9a (ELT counts per
//!   instruction bound) and Fig. 9b (synthesis runtimes), under a
//!   configurable time budget standing in for the paper's one-week
//!   timeout.
//! * `comparison` binary — the §VI-B comparison against the reconstructed
//!   COATCheck suite, plus the §V-A per-axiom attribution.
//! * Criterion benches (`fig9a_counts`, `fig9b_runtime`, `comparison`,
//!   `ablations`) measure the same pipelines.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;
use transform_core::axiom::Mtm;
use transform_par::synthesize_suite_jobs;
use transform_store::{HttpTier, Store, TieredCache};
use transform_synth::programs::Balance;
use transform_synth::{Suite, SynthOptions};

/// One point of the Fig. 9 sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Axiom under synthesis.
    pub axiom: String,
    /// Instruction bound.
    pub bound: usize,
    /// Number of spanning-set ELTs synthesized.
    pub elts: usize,
    /// Synthesis wall-clock time.
    pub runtime: Duration,
    /// Whether the point hit the time budget (plotted as missing in the
    /// paper).
    pub timed_out: bool,
}

/// Sweep configuration for the Fig. 9 reproduction.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Lowest instruction bound to try.
    pub min_bound: usize,
    /// Highest instruction bound to try.
    pub max_bound: usize,
    /// Per-point time budget (the paper used one week per run).
    pub budget: Duration,
    /// Include `MFENCE` in the program space.
    pub allow_fences: bool,
    /// Include RMW pairs in the program space.
    pub allow_rmw: bool,
    /// Worker threads per suite (`transform-par`); 1 = sequential engine.
    pub jobs: usize,
    /// Examine-batch granularity for the streaming engine (`None`
    /// autotunes). Pure scheduling — never changes a suite.
    pub partition_size: Option<usize>,
    /// How the streaming engine splits the enumeration into work
    /// partitions. Pure scheduling — never changes a suite.
    pub balance: Balance,
    /// A persistent suite store (`transform-store`): completed points
    /// are sealed into it and later sweeps stream them back instead of
    /// resynthesizing. `None` = always synthesize.
    pub cache: Option<PathBuf>,
    /// A shared `transform serve` endpoint (`http://host:port`) behind
    /// the local store: local miss → remote fetch (validated into the
    /// local tier), and freshly sealed points are pushed back. Requires
    /// `cache` for the local tier.
    pub cache_url: Option<String>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            min_bound: 4,
            max_bound: 6,
            budget: Duration::from_secs(60),
            allow_fences: false,
            allow_rmw: false,
            jobs: 1,
            partition_size: None,
            balance: Balance::default(),
            cache: None,
            cache_url: None,
        }
    }
}

/// Runs the per-axiom bound sweep of Fig. 9, one suite per (axiom,
/// bound). Sweeping stops per axiom once a bound times out, exactly as
/// the paper's missing data points.
pub fn sweep(mtm: &Mtm, cfg: &SweepConfig) -> Vec<SweepPoint> {
    assert!(
        cfg.cache_url.is_none() || cfg.cache.is_some(),
        "cache_url needs cache for the local tier"
    );
    let cache = cfg.cache.as_ref().map(|dir| {
        let store =
            Store::open(dir).unwrap_or_else(|e| panic!("cannot open cache {}: {e}", dir.display()));
        let tiered = TieredCache::new(store);
        match &cfg.cache_url {
            Some(url) => tiered.with_remote(Box::new(
                HttpTier::new(url).unwrap_or_else(|e| panic!("{e}")),
            )),
            None => tiered,
        }
    });
    let mut out = Vec::new();
    for ax in mtm.axioms() {
        for bound in cfg.min_bound..=cfg.max_bound {
            let mut opts = SynthOptions::new(bound);
            opts.enumeration.allow_fences = cfg.allow_fences;
            opts.enumeration.allow_rmw = cfg.allow_rmw;
            opts.timeout = Some(cfg.budget);
            opts.partition_size = cfg.partition_size;
            opts.balance = cfg.balance;
            let suite = match &cache {
                Some(cache) => {
                    cache
                        .cached_or_synthesize(mtm, &ax.name, &opts, cfg.jobs)
                        .unwrap_or_else(|e| panic!("suite cache: {e}"))
                        .0
                }
                None => synthesize_suite_jobs(mtm, &ax.name, &opts, cfg.jobs),
            };
            let timed_out = suite.stats.timed_out;
            out.push(SweepPoint {
                axiom: ax.name.clone(),
                bound,
                elts: suite.elts.len(),
                runtime: suite.stats.elapsed,
                timed_out,
            });
            if timed_out {
                break;
            }
        }
    }
    out
}

/// Renders the Fig. 9a table (ELT counts) and Fig. 9b table (runtimes).
pub fn render_sweep(points: &[SweepPoint]) -> String {
    let mut bounds: Vec<usize> = points.iter().map(|p| p.bound).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut axes: Vec<&str> = points.iter().map(|p| p.axiom.as_str()).collect();
    axes.dedup();

    let by: BTreeMap<(&str, usize), &SweepPoint> = points
        .iter()
        .map(|p| ((p.axiom.as_str(), p.bound), p))
        .collect();

    let mut out = String::new();
    out.push_str("Fig. 9a — number of ELTs per per-axiom suite, by instruction bound\n");
    out.push_str(&format!("{:<16}", "axiom"));
    for b in &bounds {
        out.push_str(&format!("{b:>8}"));
    }
    out.push('\n');
    for ax in &axes {
        out.push_str(&format!("{ax:<16}"));
        for b in &bounds {
            match by.get(&(ax, *b)) {
                Some(p) if !p.timed_out => out.push_str(&format!("{:>8}", p.elts)),
                Some(_) => out.push_str(&format!("{:>8}", "t/o")),
                None => out.push_str(&format!("{:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str("\nFig. 9b — synthesis runtime (seconds), by instruction bound\n");
    out.push_str(&format!("{:<16}", "axiom"));
    for b in &bounds {
        out.push_str(&format!("{b:>8}"));
    }
    out.push('\n');
    for ax in &axes {
        out.push_str(&format!("{ax:<16}"));
        for b in &bounds {
            match by.get(&(ax, *b)) {
                Some(p) if !p.timed_out => {
                    out.push_str(&format!("{:>8.3}", p.runtime.as_secs_f64()))
                }
                Some(_) => out.push_str(&format!("{:>8}", "t/o")),
                None => out.push_str(&format!("{:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Synthesizes every per-axiom suite at one bound (used by the comparison
/// pipeline and benches). `jobs` worker threads per suite; the result is
/// identical for every worker count.
pub fn all_suites(
    mtm: &Mtm,
    bound: usize,
    budget: Duration,
    jobs: usize,
) -> BTreeMap<String, Suite> {
    let mut opts = SynthOptions::new(bound);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;
    opts.timeout = Some(budget);
    transform_par::synthesize_all_jobs(mtm, &opts, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_x86::x86t_elt;

    #[test]
    fn sweep_produces_points_for_every_axiom() {
        let mtm = x86t_elt();
        let cfg = SweepConfig {
            min_bound: 4,
            max_bound: 4,
            budget: Duration::from_secs(60),
            ..SweepConfig::default()
        };
        let points = sweep(&mtm, &cfg);
        assert_eq!(points.len(), mtm.axioms().len());
        let table = render_sweep(&points);
        assert!(table.contains("sc_per_loc"));
        assert!(table.contains("Fig. 9a"));
        assert!(table.contains("Fig. 9b"));
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        let mtm = x86t_elt();
        let mut cfg = SweepConfig {
            min_bound: 4,
            max_bound: 4,
            budget: Duration::from_secs(60),
            ..SweepConfig::default()
        };
        let sequential = sweep(&mtm, &cfg);
        cfg.jobs = 4;
        let parallel = sweep(&mtm, &cfg);
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.axiom, b.axiom);
            assert_eq!(a.bound, b.bound);
            assert_eq!(a.elts, b.elts, "{}: suite size diverged", a.axiom);
        }
    }

    #[test]
    fn cached_sweep_matches_the_uncached_one() {
        let mtm = x86t_elt();
        let dir = std::env::temp_dir().join(format!("tfs-sweep-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = SweepConfig {
            min_bound: 4,
            max_bound: 4,
            budget: Duration::from_secs(60),
            ..SweepConfig::default()
        };
        let uncached = sweep(&mtm, &cfg);
        cfg.cache = Some(dir.clone());
        let cold = sweep(&mtm, &cfg);
        let warm = sweep(&mtm, &cfg);
        for ((a, b), c) in uncached.iter().zip(&cold).zip(&warm) {
            assert_eq!(a.elts, b.elts, "{}: cold cache diverged", a.axiom);
            assert_eq!(a.elts, c.elts, "{}: warm cache diverged", a.axiom);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
