//! `transform-bench` — the harness that regenerates every table and
//! figure of the TransForm paper's evaluation.
//!
//! * `fig9` binary — the per-axiom suite sweep of Fig. 9a (ELT counts per
//!   instruction bound) and Fig. 9b (synthesis runtimes), under a
//!   configurable time budget standing in for the paper's one-week
//!   timeout.
//! * `comparison` binary — the §VI-B comparison against the reconstructed
//!   COATCheck suite, plus the §V-A per-axiom attribution.
//! * Criterion benches (`fig9a_counts`, `fig9b_runtime`, `comparison`,
//!   `ablations`) measure the same pipelines.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use transform_core::axiom::Mtm;
use transform_par::{
    synthesize_suite_jobs, synthesize_suite_jobs_observed, ProgressSnapshot, ProgressState,
};
use transform_store::{HttpTier, Store, TieredCache};
use transform_synth::programs::Balance;
use transform_synth::{Suite, SynthOptions};

/// One point of the Fig. 9 sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Axiom under synthesis.
    pub axiom: String,
    /// Instruction bound.
    pub bound: usize,
    /// Number of spanning-set ELTs synthesized.
    pub elts: usize,
    /// Synthesis wall-clock time.
    pub runtime: Duration,
    /// Whether the point hit the time budget (plotted as missing in the
    /// paper).
    pub timed_out: bool,
}

/// How `--progress` renders a sweep's live telemetry: one line per
/// sample on **stderr**, so the Fig. 9 tables on stdout stay clean
/// enough to redirect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepProgress {
    /// Compact human-readable lines.
    Human,
    /// One JSON object per sample — the same `progress.jsonl` shape the
    /// CLI's `--progress=json` streams, keyed by `axiom` and `bound`.
    Json,
}

impl SweepProgress {
    /// Parses a `--progress=` value; `human` and `json` are accepted.
    pub fn parse(s: &str) -> Option<SweepProgress> {
        match s {
            "human" => Some(SweepProgress::Human),
            "json" => Some(SweepProgress::Json),
            _ => None,
        }
    }
}

/// One progress sample of a sweep point. The sweep runs one axiom per
/// point, so the snapshot's single axiom slot carries the per-axiom
/// counters.
fn render_sample(mode: SweepProgress, bound: usize, snap: &ProgressSnapshot, done: bool) -> String {
    let ax = &snap.axioms[0];
    match mode {
        SweepProgress::Human => format!(
            "fig9 {}@{}: {:>5.1}% mass, {} elts, {} items, {} batches{}",
            ax.name,
            bound,
            snap.mass_fraction() * 100.0,
            ax.elts,
            ax.items_examined,
            ax.batches_done,
            if done { " — done" } else { "" },
        ),
        SweepProgress::Json => format!(
            concat!(
                "{{\"axiom\": \"{}\", \"bound\": {}, \"elapsed_secs\": {:.6}, ",
                "\"mass_fraction\": {:.6}, \"partitions_retired\": {}, ",
                "\"partitions_total\": {}, \"programs\": {}, \"items_examined\": {}, ",
                "\"elts\": {}, \"batches\": {}, \"done\": {}}}"
            ),
            ax.name,
            bound,
            snap.elapsed.as_secs_f64(),
            snap.mass_fraction(),
            snap.partitions_retired,
            snap.partitions_total,
            snap.programs,
            ax.items_examined,
            ax.elts,
            ax.batches_done,
            done,
        ),
    }
}

/// Sweep configuration for the Fig. 9 reproduction.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Lowest instruction bound to try.
    pub min_bound: usize,
    /// Highest instruction bound to try.
    pub max_bound: usize,
    /// Per-point time budget (the paper used one week per run).
    pub budget: Duration,
    /// Include `MFENCE` in the program space.
    pub allow_fences: bool,
    /// Include RMW pairs in the program space.
    pub allow_rmw: bool,
    /// Worker threads per suite (`transform-par`); 1 = sequential engine.
    pub jobs: usize,
    /// Examine-batch granularity for the streaming engine (`None`
    /// autotunes). Pure scheduling — never changes a suite.
    pub partition_size: Option<usize>,
    /// How the streaming engine splits the enumeration into work
    /// partitions. Pure scheduling — never changes a suite.
    pub balance: Balance,
    /// A persistent suite store (`transform-store`): completed points
    /// are sealed into it and later sweeps stream them back instead of
    /// resynthesizing. `None` = always synthesize.
    pub cache: Option<PathBuf>,
    /// A shared `transform serve` endpoint (`http://host:port`) behind
    /// the local store: local miss → remote fetch (validated into the
    /// local tier), and freshly sealed points are pushed back. Requires
    /// `cache` for the local tier.
    pub cache_url: Option<String>,
    /// Live per-point telemetry on stderr (`--progress[=human|json]`).
    /// Pure observation — never changes a suite.
    pub progress: Option<SweepProgress>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            min_bound: 4,
            max_bound: 6,
            budget: Duration::from_secs(60),
            allow_fences: false,
            allow_rmw: false,
            jobs: 1,
            partition_size: None,
            balance: Balance::default(),
            cache: None,
            cache_url: None,
            progress: None,
        }
    }
}

/// Runs the per-axiom bound sweep of Fig. 9, one suite per (axiom,
/// bound). Sweeping stops per axiom once a bound times out, exactly as
/// the paper's missing data points.
pub fn sweep(mtm: &Mtm, cfg: &SweepConfig) -> Vec<SweepPoint> {
    assert!(
        cfg.cache_url.is_none() || cfg.cache.is_some(),
        "cache_url needs cache for the local tier"
    );
    let cache = cfg.cache.as_ref().map(|dir| {
        let store =
            Store::open(dir).unwrap_or_else(|e| panic!("cannot open cache {}: {e}", dir.display()));
        let tiered = TieredCache::new(store);
        match &cfg.cache_url {
            Some(url) => tiered.with_remote(Box::new(
                HttpTier::new(url).unwrap_or_else(|e| panic!("{e}")),
            )),
            None => tiered,
        }
    });
    let mut out = Vec::new();
    for ax in mtm.axioms() {
        for bound in cfg.min_bound..=cfg.max_bound {
            let mut opts = SynthOptions::new(bound);
            opts.enumeration.allow_fences = cfg.allow_fences;
            opts.enumeration.allow_rmw = cfg.allow_rmw;
            opts.timeout = Some(cfg.budget);
            opts.partition_size = cfg.partition_size;
            opts.balance = cfg.balance;
            let suite = match cfg.progress {
                None => match &cache {
                    Some(cache) => {
                        cache
                            .cached_or_synthesize(mtm, &ax.name, &opts, cfg.jobs)
                            .unwrap_or_else(|e| panic!("suite cache: {e}"))
                            .0
                    }
                    None => synthesize_suite_jobs(mtm, &ax.name, &opts, cfg.jobs),
                },
                Some(mode) => {
                    // One observed point: a per-point `ProgressState`
                    // with a single axiom slot, sampled on a side
                    // thread at the coalesced 100 ms cadence (hot
                    // polling visibly taxes small runs — see the
                    // `progress_overhead_pct` points in
                    // `BENCH_enum.json`).
                    let progress = Arc::new(ProgressState::new(&[ax.name.as_str()]));
                    let stop = Arc::new(AtomicBool::new(false));
                    let sampler = {
                        let progress = Arc::clone(&progress);
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            while !stop.load(Ordering::Relaxed) {
                                eprintln!(
                                    "{}",
                                    render_sample(mode, bound, &progress.snapshot(), false)
                                );
                                // Sleep the cadence in short slices so
                                // a finished millisecond-scale point
                                // isn't held hostage by the sampler.
                                for _ in 0..10 {
                                    if stop.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                            }
                        })
                    };
                    let suite = match &cache {
                        Some(cache) => {
                            cache
                                .cached_or_synthesize_observed(
                                    mtm, &ax.name, &opts, cfg.jobs, &progress,
                                )
                                .unwrap_or_else(|e| panic!("suite cache: {e}"))
                                .0
                        }
                        None => synthesize_suite_jobs_observed(
                            mtm, &ax.name, &opts, cfg.jobs, &progress,
                        ),
                    };
                    stop.store(true, Ordering::Relaxed);
                    sampler.join().expect("sampler joins");
                    eprintln!("{}", render_sample(mode, bound, &progress.snapshot(), true));
                    suite
                }
            };
            let timed_out = suite.stats.timed_out;
            out.push(SweepPoint {
                axiom: ax.name.clone(),
                bound,
                elts: suite.elts.len(),
                runtime: suite.stats.elapsed,
                timed_out,
            });
            if timed_out {
                break;
            }
        }
    }
    out
}

/// Renders the Fig. 9a table (ELT counts) and Fig. 9b table (runtimes).
pub fn render_sweep(points: &[SweepPoint]) -> String {
    let mut bounds: Vec<usize> = points.iter().map(|p| p.bound).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut axes: Vec<&str> = points.iter().map(|p| p.axiom.as_str()).collect();
    axes.dedup();

    let by: BTreeMap<(&str, usize), &SweepPoint> = points
        .iter()
        .map(|p| ((p.axiom.as_str(), p.bound), p))
        .collect();

    let mut out = String::new();
    out.push_str("Fig. 9a — number of ELTs per per-axiom suite, by instruction bound\n");
    out.push_str(&format!("{:<16}", "axiom"));
    for b in &bounds {
        out.push_str(&format!("{b:>8}"));
    }
    out.push('\n');
    for ax in &axes {
        out.push_str(&format!("{ax:<16}"));
        for b in &bounds {
            match by.get(&(ax, *b)) {
                Some(p) if !p.timed_out => out.push_str(&format!("{:>8}", p.elts)),
                Some(_) => out.push_str(&format!("{:>8}", "t/o")),
                None => out.push_str(&format!("{:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str("\nFig. 9b — synthesis runtime (seconds), by instruction bound\n");
    out.push_str(&format!("{:<16}", "axiom"));
    for b in &bounds {
        out.push_str(&format!("{b:>8}"));
    }
    out.push('\n');
    for ax in &axes {
        out.push_str(&format!("{ax:<16}"));
        for b in &bounds {
            match by.get(&(ax, *b)) {
                Some(p) if !p.timed_out => {
                    out.push_str(&format!("{:>8.3}", p.runtime.as_secs_f64()))
                }
                Some(_) => out.push_str(&format!("{:>8}", "t/o")),
                None => out.push_str(&format!("{:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Synthesizes every per-axiom suite at one bound (used by the comparison
/// pipeline and benches). `jobs` worker threads per suite; the result is
/// identical for every worker count.
pub fn all_suites(
    mtm: &Mtm,
    bound: usize,
    budget: Duration,
    jobs: usize,
) -> BTreeMap<String, Suite> {
    let mut opts = SynthOptions::new(bound);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = false;
    opts.timeout = Some(budget);
    transform_par::synthesize_all_jobs(mtm, &opts, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_x86::x86t_elt;

    #[test]
    fn sweep_produces_points_for_every_axiom() {
        let mtm = x86t_elt();
        let cfg = SweepConfig {
            min_bound: 4,
            max_bound: 4,
            budget: Duration::from_secs(60),
            ..SweepConfig::default()
        };
        let points = sweep(&mtm, &cfg);
        assert_eq!(points.len(), mtm.axioms().len());
        let table = render_sweep(&points);
        assert!(table.contains("sc_per_loc"));
        assert!(table.contains("Fig. 9a"));
        assert!(table.contains("Fig. 9b"));
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        let mtm = x86t_elt();
        let mut cfg = SweepConfig {
            min_bound: 4,
            max_bound: 4,
            budget: Duration::from_secs(60),
            ..SweepConfig::default()
        };
        let sequential = sweep(&mtm, &cfg);
        cfg.jobs = 4;
        let parallel = sweep(&mtm, &cfg);
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.axiom, b.axiom);
            assert_eq!(a.bound, b.bound);
            assert_eq!(a.elts, b.elts, "{}: suite size diverged", a.axiom);
        }
    }

    #[test]
    fn observed_sweep_matches_the_plain_one_and_modes_parse() {
        assert_eq!(SweepProgress::parse("human"), Some(SweepProgress::Human));
        assert_eq!(SweepProgress::parse("json"), Some(SweepProgress::Json));
        assert_eq!(SweepProgress::parse("verbose"), None);
        let mtm = x86t_elt();
        let mut cfg = SweepConfig {
            min_bound: 4,
            max_bound: 4,
            budget: Duration::from_secs(60),
            ..SweepConfig::default()
        };
        let plain = sweep(&mtm, &cfg);
        cfg.progress = Some(SweepProgress::Json);
        let observed = sweep(&mtm, &cfg);
        assert_eq!(plain.len(), observed.len());
        for (a, b) in plain.iter().zip(&observed) {
            assert_eq!(a.axiom, b.axiom);
            assert_eq!(a.elts, b.elts, "{}: observed sweep diverged", a.axiom);
        }
        // The sample renderer reports the single-axiom slot both ways.
        let progress = ProgressState::new(&["sc_per_loc"]);
        let snap = progress.snapshot();
        let human = render_sample(SweepProgress::Human, 5, &snap, true);
        assert!(human.contains("sc_per_loc@5"), "{human}");
        assert!(human.ends_with("— done"), "{human}");
        let json = render_sample(SweepProgress::Json, 5, &snap, false);
        assert!(json.contains("\"axiom\": \"sc_per_loc\""), "{json}");
        assert!(json.contains("\"bound\": 5"), "{json}");
        assert!(json.contains("\"done\": false"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn cached_sweep_matches_the_uncached_one() {
        let mtm = x86t_elt();
        let dir = std::env::temp_dir().join(format!("tfs-sweep-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = SweepConfig {
            min_bound: 4,
            max_bound: 4,
            budget: Duration::from_secs(60),
            ..SweepConfig::default()
        };
        let uncached = sweep(&mtm, &cfg);
        cfg.cache = Some(dir.clone());
        let cold = sweep(&mtm, &cfg);
        let warm = sweep(&mtm, &cfg);
        for ((a, b), c) in uncached.iter().zip(&cold).zip(&warm) {
            assert_eq!(a.elts, b.elts, "{}: cold cache diverged", a.axiom);
            assert_eq!(a.elts, c.elts, "{}: warm cache diverged", a.axiom);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
