//! Regenerates Fig. 9a (ELT counts per per-axiom suite by instruction
//! bound) and Fig. 9b (synthesis runtimes).
//!
//! Usage: `fig9 [max_bound] [budget_seconds] [--fences] [--rmw]
//! [--jobs N] [--partition-size N] [--balance mass|depth]
//! [--cache DIR] [--cache-url URL] [--progress[=human|json]]`
//!
//! `--progress` streams each point's live telemetry to stderr (stdout
//! keeps the Fig. 9 tables): `human` prints compact one-line samples,
//! `json` prints one JSON object per sample — the same `progress.jsonl`
//! shape the CLI's `--progress=json` emits, keyed by axiom and bound.
//!
//! With `--cache`, completed points are sealed into a persistent suite
//! store and later sweeps stream them back instead of resynthesizing —
//! re-running a week-long sweep costs seconds. With `--cache-url`, a
//! shared `transform serve` endpoint sits behind the local store:
//! points anyone in the fleet already swept stream from the remote, and
//! freshly completed points are pushed back for everyone else.
//!
//! The paper ran each point under a one-week timeout on a server; the
//! default budget here is 60 s per point, and points that exceed it are
//! printed as `t/o` (the paper plots them as missing).

use std::time::Duration;
use transform_bench::{render_sweep, sweep, SweepConfig, SweepProgress};
use transform_x86::x86t_elt;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SweepConfig {
        jobs: transform_par::default_jobs(),
        ..SweepConfig::default()
    };
    let mut positional = Vec::new();
    let mut take_jobs = false;
    let mut take_partition = false;
    let mut take_balance = false;
    let mut take_cache = false;
    let mut take_cache_url = false;
    for a in &args {
        if take_jobs {
            cfg.jobs = a.parse().unwrap_or_else(|_| {
                eprintln!("error: --jobs takes a number, got `{a}`");
                std::process::exit(2);
            });
            take_jobs = false;
            continue;
        }
        if take_partition {
            cfg.partition_size = Some(a.parse().unwrap_or_else(|_| {
                eprintln!("error: --partition-size takes a number, got `{a}`");
                std::process::exit(2);
            }));
            take_partition = false;
            continue;
        }
        if take_balance {
            cfg.balance = transform_synth::programs::Balance::parse(a).unwrap_or_else(|| {
                eprintln!("error: --balance takes `mass` or `depth`, got `{a}`");
                std::process::exit(2);
            });
            take_balance = false;
            continue;
        }
        if take_cache {
            cfg.cache = Some(a.into());
            take_cache = false;
            continue;
        }
        if take_cache_url {
            cfg.cache_url = Some(a.into());
            take_cache_url = false;
            continue;
        }
        match a.as_str() {
            "--fences" => cfg.allow_fences = true,
            "--rmw" => cfg.allow_rmw = true,
            "--jobs" => take_jobs = true,
            "--partition-size" => take_partition = true,
            "--balance" => take_balance = true,
            "--cache" => take_cache = true,
            "--cache-url" => take_cache_url = true,
            "--progress" => cfg.progress = Some(SweepProgress::Human),
            other if other.starts_with("--progress=") => {
                let v = &other["--progress=".len()..];
                cfg.progress = Some(SweepProgress::parse(v).unwrap_or_else(|| {
                    eprintln!("error: --progress takes `human` or `json`, got `{v}`");
                    std::process::exit(2);
                }));
            }
            other => positional.push(other.to_string()),
        }
    }
    if take_jobs {
        eprintln!("error: --jobs takes a number");
        std::process::exit(2);
    }
    if take_partition {
        eprintln!("error: --partition-size takes a number");
        std::process::exit(2);
    }
    if take_balance {
        eprintln!("error: --balance takes `mass` or `depth`");
        std::process::exit(2);
    }
    if take_cache {
        eprintln!("error: --cache takes a directory");
        std::process::exit(2);
    }
    if take_cache_url {
        eprintln!("error: --cache-url takes http://host:port");
        std::process::exit(2);
    }
    if cfg.cache_url.is_some() && cfg.cache.is_none() {
        eprintln!("error: --cache-url needs --cache DIR for the local tier");
        std::process::exit(2);
    }
    if let Some(b) = positional.first().and_then(|s| s.parse().ok()) {
        cfg.max_bound = b;
    }
    if let Some(s) = positional.get(1).and_then(|s| s.parse().ok()) {
        cfg.budget = Duration::from_secs(s);
    }

    let mtm = x86t_elt();
    eprintln!(
        "sweeping bounds {}..={} with a {:?} budget per point (fences: {}, rmw: {}, jobs: {}, balance: {}{})",
        cfg.min_bound,
        cfg.max_bound,
        cfg.budget,
        cfg.allow_fences,
        cfg.allow_rmw,
        cfg.jobs,
        cfg.balance.name(),
        match &cfg.cache {
            Some(dir) => format!(
                ", cache: {}{}",
                dir.display(),
                match &cfg.cache_url {
                    Some(url) => format!(" + {url}"),
                    None => String::new(),
                }
            ),
            None => String::new(),
        }
    );
    let points = sweep(&mtm, &cfg);
    println!("{}", render_sweep(&points));

    let total: usize = {
        use std::collections::BTreeMap;
        let mut best: BTreeMap<&str, usize> = BTreeMap::new();
        for p in &points {
            if !p.timed_out {
                let e = best.entry(p.axiom.as_str()).or_insert(0);
                *e = (*e).max(p.elts);
            }
        }
        best.values().sum()
    };
    println!("total ELTs across per-axiom suites (largest completed bound each): {total}");
}
