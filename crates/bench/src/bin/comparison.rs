//! Regenerates the §VI-B comparison against the (reconstructed)
//! COATCheck suite and the §V-A per-axiom attribution.
//!
//! Usage: `comparison [bound] [budget_seconds] [jobs]` (defaults:
//! bound 6, 300 s per per-axiom suite, all cores).

use std::time::Duration;
use transform_bench::all_suites;
use transform_synth::{exclusive_attribution, unique_union};
use transform_x86::{coatcheck, compare, x86t_elt};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bound: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(6);
    let budget = Duration::from_secs(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300));
    let jobs: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(transform_par::default_jobs);

    let mtm = x86t_elt();
    eprintln!(
        "synthesizing all per-axiom suites at bound {bound} (budget {budget:?} each, {jobs} workers)…"
    );
    let suites = all_suites(&mtm, bound, budget, jobs);

    println!("per-axiom suite sizes at bound {bound}:");
    for (name, suite) in &suites {
        println!(
            "  {name:<16} {:>4} ELTs   ({} programs examined, {} executions, {:.2}s{})",
            suite.elts.len(),
            suite.stats.programs,
            suite.stats.executions,
            suite.stats.elapsed.as_secs_f64(),
            if suite.stats.timed_out {
                ", timed out"
            } else {
                ""
            },
        );
    }
    let union = unique_union(suites.values());
    println!("unique ELT programs across all suites: {}", union.len());

    println!("\nper-axiom exclusive attribution (§V-A):");
    for (name, count) in exclusive_attribution(&suites) {
        println!("  {name:<16} {count:>4}");
    }

    println!("\nCOATCheck suite comparison (§VI-B):");
    let keys = compare::synthesized_keys(suites.values());
    let cmp = compare::compare_suite(&coatcheck::suite(), &keys);
    println!("{}", compare::render(&cmp));
}
