//! Targeted run: the rmw_atomicity suite at bound 7 (its minimum bound in
//! this reproduction's cost model), with RMW operations enabled.
use std::time::Duration;
use transform_synth::{synthesize_suite, SynthOptions};
use transform_x86::x86t_elt;
fn main() {
    let budget = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(900);
    let mtm = x86t_elt();
    let mut opts = SynthOptions::new(7);
    opts.enumeration.allow_fences = false;
    opts.enumeration.allow_rmw = true;
    opts.timeout = Some(Duration::from_secs(budget));
    let suite = synthesize_suite(&mtm, "rmw_atomicity", &opts);
    println!(
        "rmw_atomicity @ bound 7: {} ELTs ({} programs, {} executions, {:.1}s{})",
        suite.elts.len(),
        suite.stats.programs,
        suite.stats.executions,
        suite.stats.elapsed.as_secs_f64(),
        if suite.stats.timed_out {
            ", TIMED OUT"
        } else {
            ""
        }
    );
    for elt in &suite.elts {
        let a = elt.witness.analyze().unwrap();
        println!("{}", transform_core::pretty::render(&a));
    }
}
