//! The streaming enumeration's core contract: at any partition
//! granularity, [`EnumSpace::stream`] yields exactly the sequence of
//! the eager [`programs`] enumeration — same programs, same order, same
//! symmetry-reduction outcomes — while the partitioned form gives every
//! program a stable, scheduling-independent position.

use proptest::prelude::*;
use transform_synth::programs::{programs, EnumOptions, EnumSpace, Program};

fn options(bound: usize, fences: bool, rmw: bool, symmetry: bool) -> EnumOptions {
    let mut o = EnumOptions::new(bound);
    o.allow_fences = fences;
    o.allow_rmw = rmw;
    o.symmetry_reduction = symmetry;
    o
}

#[test]
fn bound_5_stream_matches_eager_across_partition_targets() {
    let opts = options(5, false, false, true);
    let eager = programs(&opts);
    assert!(!eager.is_empty());
    for target in [0usize, 1, 16, 256] {
        let space = EnumSpace::with_target_partitions(&opts, target);
        let streamed: Vec<Program> = space.stream().collect();
        assert_eq!(
            eager.len(),
            streamed.len(),
            "target {target}: stream yields a different count"
        );
        assert_eq!(eager, streamed, "target {target}: sequences diverge");
    }
}

#[test]
fn bound_5_with_fences_and_rmw_streams_identically() {
    // The nightly stress configuration, at the partition granularity the
    // parallel pool actually uses — for both split modes.
    let opts = options(5, true, true, true);
    let eager = programs(&opts);
    let depth = EnumSpace::with_target_partitions(&opts, 64);
    assert_eq!(eager, depth.stream().collect::<Vec<Program>>());
    let mass = EnumSpace::balanced_for_target(&opts, 64);
    assert_eq!(eager, mass.stream().collect::<Vec<Program>>());
}

#[test]
fn bound_5_balanced_stream_matches_eager_across_mass_targets() {
    let opts = options(5, false, false, true);
    let eager = programs(&opts);
    assert!(!eager.is_empty());
    for target_mass in [1u64, 40, u64::MAX] {
        let space = EnumSpace::balanced(&opts, target_mass);
        let streamed: Vec<Program> = space.stream().collect();
        assert_eq!(eager, streamed, "target_mass {target_mass}");
    }
}

#[test]
fn partition_positions_are_stable_under_the_split_depth() {
    // The same program keeps its (ordinal, offset) meaning: flattening
    // coarse partitions and fine partitions gives the same sequence.
    let opts = options(4, true, true, true);
    let coarse = EnumSpace::new(&opts);
    let fine = EnumSpace::with_target_partitions(&opts, coarse.partition_count() * 8);
    assert!(fine.partition_count() > coarse.partition_count());
    let flatten = |space: &EnumSpace| -> Vec<Program> {
        (0..space.partition_count())
            .flat_map(|p| space.enumerate_keyed(p))
            .map(|kp| kp.program)
            .collect()
    };
    // Without cross-partition dedup the flattened sequences may contain
    // duplicates, but the dedup-carrying stream must agree exactly.
    assert!(flatten(&coarse).len() >= programs(&opts).len());
    let a: Vec<Program> = coarse.stream().collect();
    let b: Vec<Program> = fine.stream().collect();
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any bound ≤ 4, any option mix, any partition target: the stream
    /// is the eager enumeration.
    #[test]
    fn stream_equals_programs(
        bound in 2usize..=4,
        fences in any::<bool>(),
        rmw in any::<bool>(),
        symmetry in any::<bool>(),
        target in 0usize..48,
    ) {
        let opts = options(bound, fences, rmw, symmetry);
        let eager = programs(&opts);
        let space = EnumSpace::with_target_partitions(&opts, target);
        let streamed: Vec<Program> = space.stream().collect();
        prop_assert_eq!(
            eager, streamed,
            "bound={} fences={} rmw={} symmetry={} target={}",
            bound, fences, rmw, symmetry, target
        );
    }

    /// A max-threads cap partitions identically too.
    #[test]
    fn stream_respects_max_threads(
        max_threads in 1usize..=3,
        target in 0usize..24,
    ) {
        let mut opts = options(4, false, false, true);
        opts.max_threads = Some(max_threads);
        let eager = programs(&opts);
        let space = EnumSpace::with_target_partitions(&opts, target);
        let streamed: Vec<Program> = space.stream().collect();
        prop_assert_eq!(eager, streamed);
    }

    /// Mass-balanced splitting: any bound ≤ 4, any option mix, any mass
    /// target — the stream equals the eager enumeration AND the
    /// depth-split stream (the two split modes are interchangeable).
    #[test]
    fn balanced_stream_equals_programs_and_depth_split(
        bound in 2usize..=4,
        fences in any::<bool>(),
        rmw in any::<bool>(),
        symmetry in any::<bool>(),
        target_mass in 1u64..200,
    ) {
        let opts = options(bound, fences, rmw, symmetry);
        let eager = programs(&opts);
        let mass = EnumSpace::balanced(&opts, target_mass);
        let streamed: Vec<Program> = mass.stream().collect();
        prop_assert_eq!(
            &eager, &streamed,
            "vs eager: bound={} fences={} rmw={} symmetry={} target_mass={}",
            bound, fences, rmw, symmetry, target_mass
        );
        let depth = EnumSpace::with_target_partitions(&opts, 16);
        let depth_streamed: Vec<Program> = depth.stream().collect();
        prop_assert_eq!(
            streamed, depth_streamed,
            "vs depth split: bound={} target_mass={}",
            bound, target_mass
        );
    }

    /// A max-threads cap balances identically too.
    #[test]
    fn balanced_respects_max_threads(
        max_threads in 1usize..=3,
        target_mass in 1u64..100,
    ) {
        let mut opts = options(4, false, false, true);
        opts.max_threads = Some(max_threads);
        let eager = programs(&opts);
        let space = EnumSpace::balanced(&opts, target_mass);
        let streamed: Vec<Program> = space.stream().collect();
        prop_assert_eq!(eager, streamed);
    }
}
