//! The synthesis engine driver (Fig. 7 of the paper).
//!
//! For a given MTM and instruction bound, the engine (1) enumerates
//! candidate executions, (2) prunes to the vector space of *interesting*
//! behaviors — executions containing a write whose outcome violates the
//! targeted axiom — (3) keeps only executions satisfying the minimality
//! criterion, and (4) deduplicates the surviving programs canonically,
//! yielding the per-axiom spanning-set suite.
//!
//! The driver is factored into three phases so the `transform-par`
//! orchestrator can distribute the middle one across worker threads while
//! reproducing this sequential pipeline exactly:
//!
//! 1. [`plan_suite`] — enumerate programs, keep the write-bearing first
//!    occurrence of each canonical key, in enumeration order;
//! 2. [`Examiner::examine`] — per program, generate candidate executions
//!    (explicit or relational backend), count, and pick a deterministic
//!    minimal forbidden witness;
//! 3. [`assemble_suite`] — stitch per-program results back together in
//!    plan order with losslessly aggregated per-shard counters.
//!
//! Every per-program step is independent and deterministic (candidates
//! are examined in a canonical order, not generation order), so any
//! partition of the plan across shards yields the same suite and the same
//! counter sums as a single-threaded run.

use crate::canon::canonical_key;
use crate::execs;
use crate::minimal::is_minimal;
use crate::programs::{Balance, EnumOptions, Program};
use crate::satgen;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};
use transform_core::axiom::Mtm;
use transform_core::derive::BaseRel;
use transform_core::exec::Execution;

/// Which candidate-execution generator to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// Explicit operational enumeration ([`crate::execs`]).
    #[default]
    Explicit,
    /// Bounded relational model finding compiled to SAT
    /// ([`crate::satgen`]) — the architecture of the paper's
    /// Alloy/Kodkod/MiniSat pipeline.
    Relational,
}

/// Options for one synthesis run.
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Program enumeration knobs (bound, fences, rmw, symmetry reduction).
    pub enumeration: EnumOptions,
    /// Candidate-execution backend.
    pub backend: Backend,
    /// Wall-clock budget; synthesis stops cleanly when exceeded (the
    /// paper's one-week timeout, scaled down).
    pub timeout: Option<Duration>,
    /// Plan items per examine batch in the streaming parallel engine
    /// (`transform-par`); `None` autotunes batch granularity from the
    /// observed examination throughput. Purely a scheduling knob — it
    /// never changes the synthesized suite, and is excluded from store
    /// fingerprints like `timeout` and the worker count.
    pub partition_size: Option<usize>,
    /// How the streaming parallel engine splits the enumeration space
    /// into work partitions ([`Balance::Mass`] by default). Pure
    /// scheduling like `partition_size`: every mode yields the
    /// byte-identical suite, and the knob is excluded from store
    /// fingerprints.
    pub balance: Balance,
}

impl SynthOptions {
    /// Defaults for an instruction bound.
    pub fn new(bound: usize) -> SynthOptions {
        SynthOptions {
            enumeration: EnumOptions::new(bound),
            backend: Backend::Explicit,
            timeout: None,
            partition_size: None,
            balance: Balance::default(),
        }
    }
}

/// A synthesized spanning-set member.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SynthesizedElt {
    /// The ELT program (what the tool outputs).
    pub program: Program,
    /// A minimal forbidden candidate execution witnessing inclusion.
    pub witness: Execution,
    /// Axioms the witness violates.
    pub violated: Vec<String>,
}

/// One suite member together with its position in the synthesis plan —
/// the unit that streams out of the engine and into persistent storage
/// (`transform-store`). Records are produced out of order by parallel
/// shards; sorting on `index` recovers the canonical suite order.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SuiteRecord {
    /// The member's plan index (its position in the deduplicated
    /// sequential enumeration — the order `Suite::elts` is sorted by).
    pub index: usize,
    /// The synthesized member itself.
    pub elt: SynthesizedElt,
}

/// Work counters for one shard of a suite synthesis.
///
/// Per-program examination is deterministic, so these counters are a pure
/// function of which plan items the shard processed — any partition of
/// the plan sums to the same totals (see [`SuiteStats::from_shards`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Shard index within the run (0 for a sequential run).
    pub shard: usize,
    /// Plan items (deduplicated candidate programs) examined.
    pub items: usize,
    /// Candidate executions examined.
    pub executions: usize,
    /// Executions with a forbidden outcome for the target axiom.
    pub forbidden: usize,
    /// Executions passing the minimality criterion.
    pub minimal: usize,
}

impl ShardStats {
    /// Empty counters for shard `shard`.
    pub fn new(shard: usize) -> ShardStats {
        ShardStats {
            shard,
            ..ShardStats::default()
        }
    }

    /// Adds one examined program's counters.
    pub fn absorb(&mut self, examined: &Examined) {
        self.items += 1;
        self.executions += examined.executions;
        self.forbidden += examined.forbidden;
        self.minimal += examined.minimal;
    }
}

/// Counters for one suite synthesis.
#[derive(Clone, Debug, Default)]
pub struct SuiteStats {
    /// Programs enumerated at the bound.
    pub programs: usize,
    /// Candidate executions examined.
    pub executions: usize,
    /// Executions with a forbidden outcome for the target axiom.
    pub forbidden: usize,
    /// Executions passing the minimality criterion.
    pub minimal: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// `true` when the run stopped on the timeout instead of completing.
    pub timed_out: bool,
    /// Per-shard counters; the totals above are their exact sums.
    pub shards: Vec<ShardStats>,
}

impl SuiteStats {
    /// Aggregates per-shard counters losslessly: every total is the exact
    /// sum of its per-shard contributions, independent of the partition.
    pub fn from_shards(programs: usize, shards: Vec<ShardStats>) -> SuiteStats {
        SuiteStats {
            programs,
            executions: shards.iter().map(|s| s.executions).sum(),
            forbidden: shards.iter().map(|s| s.forbidden).sum(),
            minimal: shards.iter().map(|s| s.minimal).sum(),
            elapsed: Duration::ZERO,
            timed_out: false,
            shards,
        }
    }
}

/// A per-axiom ELT suite.
#[derive(Clone, Debug)]
pub struct Suite {
    /// The axiom this suite violates.
    pub axiom: String,
    /// The unique minimal ELT programs.
    pub elts: Vec<SynthesizedElt>,
    /// Work counters.
    pub stats: SuiteStats,
}

/// One unit of synthesis work: a candidate program with its position in
/// the sequential enumeration and its canonical key.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Position in the deduplicated enumeration (determines suite order).
    pub index: usize,
    /// The candidate program.
    pub program: Program,
    /// Canonical key of the program ([`canonical_key`]).
    pub key: Vec<u64>,
}

/// The partitionable middle of a suite synthesis: the deduplicated,
/// write-bearing program list plus run-wide facts.
#[derive(Clone, Debug)]
pub struct SynthPlan {
    /// Work items, in enumeration order.
    pub items: Vec<WorkItem>,
    /// Programs enumerated at the bound (before dedup/filtering) — the
    /// `programs` counter of [`SuiteStats`].
    pub programs: usize,
    /// Whether enumeration itself hit the deadline.
    pub timed_out: bool,
    /// For a timed-out *partitioned* plan (`transform-par`): the first
    /// enumeration partition the deadline cut. Every partition below it
    /// is fully planned and everything from it on is dropped, so the
    /// plan is a well-defined prefix of the deadline-free plan instead
    /// of a worker-race-dependent subset. `None` for complete plans and
    /// for the sequential planner (whose timed-out tail is inherently
    /// mid-stream).
    pub cut_at_partition: Option<usize>,
    /// Whether the MTM observes `co_pa`/`fr_pa` (relation-aware
    /// execution branching).
    pub branch_co_pa: bool,
}

/// Phase 1 of the pipeline: enumerates the program space and keeps, in
/// enumeration order, the first occurrence of each canonical key that can
/// violate anything at all (spanning-set criterion 1: a write exists).
///
/// Isomorphic programs have isomorphic candidate executions, so later
/// occurrences of a key can never contribute a suite member the first
/// occurrence does not; dropping them up front makes the plan a fixed
/// work-list that any shard partition processes identically.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn plan_suite(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    deadline: Option<Instant>,
) -> SynthPlan {
    let progs = crate::programs::programs_with_deadline(&opts.enumeration, deadline);
    let mut timed_out = deadline.is_some_and(|d| Instant::now() > d);
    let mut keyed: Vec<(Program, Option<Vec<u64>>)> = Vec::with_capacity(progs.len());
    for prog in progs {
        // Keying is the expensive half of planning; it honors the
        // deadline too. Unkeyed programs drop out of the plan, exactly
        // like programs the old driver never reached before its timeout.
        if timed_out {
            keyed.push((prog, None));
            continue;
        }
        if deadline.is_some_and(|d| Instant::now() > d) {
            timed_out = true;
            keyed.push((prog, None));
            continue;
        }
        let key = plan_key(&prog);
        keyed.push((prog, key));
    }
    plan_from_keyed(mtm, axiom, keyed, timed_out)
}

/// The plan-phase key of one program: its canonical key when the program
/// can appear in a spanning set (it contains a write), `None` otherwise.
/// Key computation is the expensive part of planning and is independent
/// per program — `transform-par` fans it out across workers and feeds the
/// results to [`plan_from_keyed`].
pub fn plan_key(program: &Program) -> Option<Vec<u64>> {
    // Spanning-set criterion 1: a write exists. User writes, PTE writes,
    // and the dirty-bit ghosts user writes carry are all writes; reads,
    // fences, and invalidations alone cannot violate anything.
    program.has_write().then(|| canonical_key(program))
}

/// Whether examination must branch candidate generation on `co_pa`/
/// `fr_pa` (the MTM observes physical-address coherence). One shared
/// predicate for the sequential planner and the parallel orchestrator,
/// so the two can never drift.
pub fn branches_co_pa(mtm: &Mtm) -> bool {
    mtm.mentions(BaseRel::CoPa) || mtm.mentions(BaseRel::FrPa)
}

/// Deterministic final step of planning: keeps the first occurrence of
/// each canonical key, in enumeration order. Isomorphic programs have
/// isomorphic candidate executions, so later occurrences of a key can
/// never contribute a suite member the first occurrence does not.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn plan_from_keyed(
    mtm: &Mtm,
    axiom: &str,
    keyed: Vec<(Program, Option<Vec<u64>>)>,
    timed_out: bool,
) -> SynthPlan {
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let branch_co_pa = branches_co_pa(mtm);
    let programs = keyed.len();
    let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
    let mut items = Vec::new();
    for (prog, key) in keyed {
        let Some(key) = key else { continue };
        if !seen.insert(key.clone()) {
            continue;
        }
        items.push(WorkItem {
            index: items.len(),
            program: prog,
            key,
        });
    }
    SynthPlan {
        items,
        programs,
        timed_out,
        cut_at_partition: None,
        branch_co_pa,
    }
}

/// The outcome of examining one work item.
#[derive(Clone, Debug)]
pub struct Examined {
    /// Candidate executions examined.
    pub executions: usize,
    /// Executions violating the target axiom.
    pub forbidden: usize,
    /// Violating executions passing the minimality criterion.
    pub minimal: usize,
    /// The chosen witness and the axioms it violates, when the program
    /// belongs in the suite.
    pub witness: Option<(Execution, Vec<String>)>,
}

/// Phase 2 of the pipeline: per-program candidate generation and
/// spanning-set filtering.
///
/// One `Examiner` serves one shard. With the relational backend it owns a
/// [`satgen::ShardGen`], so every program it examines shares a single
/// incremental SAT solver.
pub struct Examiner<'m> {
    mtm: &'m Mtm,
    axiom: &'m str,
    backend: Backend,
    branch_co_pa: bool,
    shard_gen: Option<satgen::ShardGen>,
    /// SAT counters from solvers already retired by the periodic refresh,
    /// so [`Examiner::solver_stats`] stays cumulative.
    retired_solver_stats: tsat::SolverStats,
}

/// Problems served by one incremental solver before the examiner swaps
/// in a fresh one. Retired activation groups keep their variables and
/// Tseitin clauses in the shared solver (only learnt clauses are ever
/// deleted), so an unbounded run on one solver grows without limit; a
/// periodic refresh caps memory at shard scale while keeping the
/// learning-transfer benefit within each window. Results are unaffected —
/// per-program examination is order-canonical regardless of solver state.
const SOLVER_REFRESH_EVERY: usize = 64;

impl<'m> Examiner<'m> {
    /// Creates an examiner for one shard of a run.
    pub fn new(mtm: &'m Mtm, axiom: &'m str, backend: Backend, branch_co_pa: bool) -> Examiner<'m> {
        Examiner {
            mtm,
            axiom,
            backend,
            branch_co_pa,
            shard_gen: match backend {
                Backend::Explicit => None,
                Backend::Relational => Some(satgen::ShardGen::new()),
            },
            retired_solver_stats: tsat::SolverStats::default(),
        }
    }

    /// Examines one program: generates its candidate executions, counts
    /// them up to (and including) the first minimal forbidden one in
    /// canonical order, and takes that execution — the canonically least
    /// minimal witness — as the program's witness.
    ///
    /// Candidates are put in a canonical order before examination, so the
    /// result does not depend on backend generation order — in
    /// particular, not on what an incremental SAT solver learnt from
    /// other programs in the shard. That independence is what lets any
    /// shard partition reproduce the sequential suite byte for byte, and
    /// it makes the early break at the witness safe: the counters are a
    /// pure per-program function either way.
    pub fn examine(&mut self, program: &Program) -> Examined {
        let skeleton = program.to_skeleton();
        let mut candidates: Vec<Execution> = match self.backend {
            Backend::Explicit => execs::executions(&skeleton, self.branch_co_pa),
            Backend::Relational => {
                let shard_gen = self
                    .shard_gen
                    .as_mut()
                    .expect("relational examiner owns a shard generator");
                if shard_gen.problems_solved() >= SOLVER_REFRESH_EVERY {
                    self.retired_solver_stats.absorb(&shard_gen.solver_stats());
                    *shard_gen = satgen::ShardGen::new();
                }
                shard_gen.violating_executions(
                    &skeleton,
                    self.mtm,
                    self.axiom,
                    self.branch_co_pa,
                    usize::MAX,
                )
            }
        };
        candidates.sort_by_cached_key(candidate_order_key);
        let mut out = Examined {
            executions: 0,
            forbidden: 0,
            minimal: 0,
            witness: None,
        };
        for x in candidates {
            out.executions += 1;
            let Ok(analysis) = x.analyze() else { continue };
            let verdict = self.mtm.evaluate(&analysis);
            // Spanning-set criterion 2: the outcome violates the axiom
            // under synthesis.
            if !verdict.violates(self.axiom) {
                continue;
            }
            out.forbidden += 1;
            if !is_minimal(&x, self.mtm) {
                continue;
            }
            out.minimal += 1;
            out.witness = Some((x, verdict.violated));
            break;
        }
        out
    }

    /// SAT statistics of the shard's incremental solver (relational
    /// backend only).
    pub fn solver_stats(&self) -> Option<tsat::SolverStats> {
        self.shard_gen.as_ref().map(|shard_gen| {
            let mut stats = self.retired_solver_stats;
            stats.absorb(&shard_gen.solver_stats());
            stats
        })
    }
}

/// A total, deterministic order on candidate executions of one skeleton:
/// their communication choices.
fn candidate_order_key(x: &Execution) -> impl Ord {
    let parts = x.to_parts();
    let rf: Vec<(u32, u32)> = parts.rf.iter().map(|(r, w)| (r.0, w.0)).collect();
    let co: Vec<(u32, u32)> = parts.co.iter().map(|&(a, b)| (a.0, b.0)).collect();
    let co_pa: Option<Vec<(u32, u32)>> = parts
        .co_pa
        .map(|s| s.iter().map(|&(a, b)| (a.0, b.0)).collect());
    (rf, co, co_pa)
}

/// Phase 3 of the pipeline: reassembles per-item results (in plan order)
/// into a [`Suite`] with lossless per-shard counters.
pub fn assemble_suite(
    axiom: &str,
    plan: &SynthPlan,
    results: Vec<(usize, Examined)>,
    shards: Vec<ShardStats>,
    elapsed: Duration,
    timed_out: bool,
) -> Suite {
    let mut results = results;
    results.sort_by_key(|&(index, _)| index);
    let elts: Vec<SynthesizedElt> = results
        .into_iter()
        .filter_map(|(index, examined)| {
            examined.witness.map(|(witness, violated)| SynthesizedElt {
                program: plan.items[index].program.clone(),
                witness,
                violated,
            })
        })
        .collect();
    let mut stats = SuiteStats::from_shards(plan.programs, shards);
    stats.elapsed = elapsed;
    stats.timed_out = timed_out || plan.timed_out;
    Suite {
        axiom: axiom.to_string(),
        elts,
        stats,
    }
}

/// Synthesizes the per-axiom suite: all unique, minimal ELT programs (≤
/// the bound) having an execution that violates `axiom`.
///
/// This is the sequential driver — exactly the pipeline `transform-par`
/// distributes, run as one shard.
pub fn synthesize_suite(mtm: &Mtm, axiom: &str, opts: &SynthOptions) -> Suite {
    let start = Instant::now();
    let deadline = opts.timeout.map(|t| start + t);
    let plan = plan_suite(mtm, axiom, opts, deadline);
    let mut examiner = Examiner::new(mtm, axiom, opts.backend, plan.branch_co_pa);
    let mut shard = ShardStats::new(0);
    let mut results = Vec::new();
    let mut timed_out = false;
    for item in &plan.items {
        if deadline.is_some_and(|d| Instant::now() > d) {
            timed_out = true;
            break;
        }
        let examined = examiner.examine(&item.program);
        shard.absorb(&examined);
        results.push((item.index, examined));
    }
    assemble_suite(
        axiom,
        &plan,
        results,
        vec![shard],
        start.elapsed(),
        timed_out,
    )
}

/// Synthesizes every per-axiom suite of `mtm` (§V-B).
pub fn synthesize_all(mtm: &Mtm, opts: &SynthOptions) -> BTreeMap<String, Suite> {
    mtm.axioms()
        .iter()
        .map(|ax| (ax.name.clone(), synthesize_suite(mtm, &ax.name, opts)))
        .collect()
}

/// The unique union of programs across suites — the paper's headline
/// count ("140 unique ELTs across all per-axiom suites").
pub fn unique_union<'s, I: IntoIterator<Item = &'s Suite>>(suites: I) -> Vec<&'s SynthesizedElt> {
    let mut seen = BTreeMap::new();
    let mut out = Vec::new();
    for suite in suites {
        for elt in &suite.elts {
            let key = canonical_key(&elt.program);
            if seen.insert(key, ()).is_none() {
                out.push(elt);
            }
        }
    }
    out
}

/// Programs appearing in exactly one suite, per axiom — the paper's
/// attribution of five ELTs to `tlb_causality` violations (§V-A).
pub fn exclusive_attribution(suites: &BTreeMap<String, Suite>) -> BTreeMap<String, usize> {
    let mut owner: BTreeMap<Vec<u64>, Vec<&str>> = BTreeMap::new();
    for (name, suite) in suites {
        for elt in &suite.elts {
            owner
                .entry(canonical_key(&elt.program))
                .or_default()
                .push(name);
        }
    }
    let mut out: BTreeMap<String, usize> = suites.keys().map(|k| (k.clone(), 0)).collect();
    for (_, names) in owner {
        if names.len() == 1 {
            *out.get_mut(names[0]).expect("axiom present") += 1;
        }
    }
    out
}

/// Checks whether a given program is (isomorphic to) a member of a suite —
/// used by the COATCheck comparison tool.
pub fn suite_contains(suite: &Suite, program: &Program) -> bool {
    let key = canonical_key(program);
    suite.elts.iter().any(|e| canonical_key(&e.program) == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::spec::parse_mtm;

    fn x86t_elt_like() -> Mtm {
        parse_mtm(
            "mtm x86t_elt {
               axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
               axiom rmw_atomicity: empty(rmw & (fr ; co))
               axiom causality:     acyclic(rfe | co | fr | ppo | fence)
               axiom invlpg:        acyclic(fr_va | ^po | remap)
               axiom tlb_causality: acyclic(ptw_source | com)
             }",
        )
        .expect("spec parses")
    }

    #[test]
    fn sc_per_loc_suite_is_nonempty_at_bound_4() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(4);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        let suite = synthesize_suite(&mtm, "sc_per_loc", &opts);
        assert!(!suite.elts.is_empty());
        for elt in &suite.elts {
            assert!(elt.violated.contains(&"sc_per_loc".to_string()));
            assert!(elt.program.size() <= 4);
        }
    }

    #[test]
    fn invlpg_suite_contains_ptwalk2_at_bound_4() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(4);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        let suite = synthesize_suite(&mtm, "invlpg", &opts);
        assert!(!suite.elts.is_empty(), "stats: {:?}", suite.stats);
        // The Fig. 10a shape: WPTE; INVLPG; R(+walk), remapped.
        use crate::programs::{PaRef, Program, SlotOp};
        let ptwalk2 = Program {
            threads: vec![vec![
                SlotOp::PteWrite {
                    va: 0,
                    pa: PaRef::Fresh(0),
                },
                SlotOp::Invlpg { va: 0 },
                SlotOp::Read { va: 0, walk: true },
            ]],
            remap: vec![((0, 0), (0, 1))],
            rmw: vec![],
        };
        assert!(suite_contains(&suite, &ptwalk2));
    }

    #[test]
    fn no_suite_members_below_minimum_bound() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(3);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        // At bound 3 no invlpg violation fits (WPTE+INVLPG+R+walk needs 4).
        let suite = synthesize_suite(&mtm, "invlpg", &opts);
        assert!(suite.elts.is_empty());
    }

    #[test]
    fn timeout_stops_cleanly() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(6);
        opts.timeout = Some(Duration::from_millis(0));
        let suite = synthesize_suite(&mtm, "sc_per_loc", &opts);
        assert!(suite.stats.timed_out);
    }

    #[test]
    fn union_and_attribution_are_consistent() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(4);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        let suites = synthesize_all(&mtm, &opts);
        let union = unique_union(suites.values());
        let total: usize = suites.values().map(|s| s.elts.len()).sum();
        assert!(union.len() <= total);
        let attribution = exclusive_attribution(&suites);
        let excl: usize = attribution.values().sum();
        assert!(excl <= union.len());
    }
}
