//! The synthesis engine driver (Fig. 7 of the paper).
//!
//! For a given MTM and instruction bound, the engine (1) enumerates
//! candidate executions, (2) prunes to the vector space of *interesting*
//! behaviors — executions containing a write whose outcome violates the
//! targeted axiom — (3) keeps only executions satisfying the minimality
//! criterion, and (4) deduplicates the surviving programs canonically,
//! yielding the per-axiom spanning-set suite.

use crate::canon::canonical_key;
use crate::execs;
use crate::minimal::is_minimal;
use crate::programs::{EnumOptions, Program};
use crate::satgen;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use transform_core::axiom::Mtm;
use transform_core::derive::BaseRel;
use transform_core::exec::Execution;

/// Which candidate-execution generator to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// Explicit operational enumeration ([`crate::execs`]).
    #[default]
    Explicit,
    /// Bounded relational model finding compiled to SAT
    /// ([`crate::satgen`]) — the architecture of the paper's
    /// Alloy/Kodkod/MiniSat pipeline.
    Relational,
}

/// Options for one synthesis run.
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Program enumeration knobs (bound, fences, rmw, symmetry reduction).
    pub enumeration: EnumOptions,
    /// Candidate-execution backend.
    pub backend: Backend,
    /// Wall-clock budget; synthesis stops cleanly when exceeded (the
    /// paper's one-week timeout, scaled down).
    pub timeout: Option<Duration>,
}

impl SynthOptions {
    /// Defaults for an instruction bound.
    pub fn new(bound: usize) -> SynthOptions {
        SynthOptions {
            enumeration: EnumOptions::new(bound),
            backend: Backend::Explicit,
            timeout: None,
        }
    }
}

/// A synthesized spanning-set member.
#[derive(Clone, Debug)]
pub struct SynthesizedElt {
    /// The ELT program (what the tool outputs).
    pub program: Program,
    /// A minimal forbidden candidate execution witnessing inclusion.
    pub witness: Execution,
    /// Axioms the witness violates.
    pub violated: Vec<String>,
}

/// Counters for one suite synthesis.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuiteStats {
    /// Programs enumerated at the bound.
    pub programs: usize,
    /// Candidate executions examined.
    pub executions: usize,
    /// Executions with a forbidden outcome for the target axiom.
    pub forbidden: usize,
    /// Executions passing the minimality criterion.
    pub minimal: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// `true` when the run stopped on the timeout instead of completing.
    pub timed_out: bool,
}

/// A per-axiom ELT suite.
#[derive(Clone, Debug)]
pub struct Suite {
    /// The axiom this suite violates.
    pub axiom: String,
    /// The unique minimal ELT programs.
    pub elts: Vec<SynthesizedElt>,
    /// Work counters.
    pub stats: SuiteStats,
}

/// Synthesizes the per-axiom suite: all unique, minimal ELT programs (≤
/// the bound) having an execution that violates `axiom`.
pub fn synthesize_suite(mtm: &Mtm, axiom: &str, opts: &SynthOptions) -> Suite {
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let start = Instant::now();
    let branch_co_pa = mtm.mentions(BaseRel::CoPa) || mtm.mentions(BaseRel::FrPa);
    let deadline = opts.timeout.map(|t| start + t);
    let progs = crate::programs::programs_with_deadline(&opts.enumeration, deadline);
    let mut stats = SuiteStats {
        programs: progs.len(),
        timed_out: deadline.is_some_and(|d| Instant::now() > d),
        ..SuiteStats::default()
    };
    let mut seen: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
    let mut elts: Vec<SynthesizedElt> = Vec::new();

    'programs: for prog in progs {
        if let Some(t) = opts.timeout {
            if start.elapsed() > t {
                stats.timed_out = true;
                break;
            }
        }
        let skeleton = prog.to_skeleton();
        // Spanning-set criterion 1: the ELT must contain a write.
        if !skeleton.has_write() {
            continue;
        }
        let key = canonical_key(&prog);
        if seen.contains_key(&key) {
            continue;
        }
        let candidates: Vec<Execution> = match opts.backend {
            Backend::Explicit => execs::executions(&skeleton, branch_co_pa),
            Backend::Relational => {
                satgen::violating_executions(&skeleton, mtm, axiom, branch_co_pa, usize::MAX)
            }
        };
        for x in candidates {
            stats.executions += 1;
            let Ok(analysis) = x.analyze() else { continue };
            let verdict = mtm.evaluate(&analysis);
            // Spanning-set criterion 2: the outcome violates the axiom
            // under synthesis.
            if !verdict.violates(axiom) {
                continue;
            }
            stats.forbidden += 1;
            if !is_minimal(&x, mtm) {
                continue;
            }
            stats.minimal += 1;
            seen.insert(key.clone(), elts.len());
            elts.push(SynthesizedElt {
                program: prog.clone(),
                witness: x,
                violated: verdict.violated,
            });
            continue 'programs;
        }
    }
    stats.elapsed = start.elapsed();
    Suite {
        axiom: axiom.to_string(),
        elts,
        stats,
    }
}

/// Synthesizes every per-axiom suite of `mtm` (§V-B).
pub fn synthesize_all(mtm: &Mtm, opts: &SynthOptions) -> BTreeMap<String, Suite> {
    mtm.axioms()
        .iter()
        .map(|ax| (ax.name.clone(), synthesize_suite(mtm, &ax.name, opts)))
        .collect()
}

/// The unique union of programs across suites — the paper's headline
/// count ("140 unique ELTs across all per-axiom suites").
pub fn unique_union<'s, I: IntoIterator<Item = &'s Suite>>(suites: I) -> Vec<&'s SynthesizedElt> {
    let mut seen = BTreeMap::new();
    let mut out = Vec::new();
    for suite in suites {
        for elt in &suite.elts {
            let key = canonical_key(&elt.program);
            if seen.insert(key, ()).is_none() {
                out.push(elt);
            }
        }
    }
    out
}

/// Programs appearing in exactly one suite, per axiom — the paper's
/// attribution of five ELTs to `tlb_causality` violations (§V-A).
pub fn exclusive_attribution(suites: &BTreeMap<String, Suite>) -> BTreeMap<String, usize> {
    let mut owner: BTreeMap<Vec<u64>, Vec<&str>> = BTreeMap::new();
    for (name, suite) in suites {
        for elt in &suite.elts {
            owner
                .entry(canonical_key(&elt.program))
                .or_default()
                .push(name);
        }
    }
    let mut out: BTreeMap<String, usize> = suites.keys().map(|k| (k.clone(), 0)).collect();
    for (_, names) in owner {
        if names.len() == 1 {
            *out.get_mut(names[0]).expect("axiom present") += 1;
        }
    }
    out
}

/// Checks whether a given program is (isomorphic to) a member of a suite —
/// used by the COATCheck comparison tool.
pub fn suite_contains(suite: &Suite, program: &Program) -> bool {
    let key = canonical_key(program);
    suite.elts.iter().any(|e| canonical_key(&e.program) == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::spec::parse_mtm;

    fn x86t_elt_like() -> Mtm {
        parse_mtm(
            "mtm x86t_elt {
               axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
               axiom rmw_atomicity: empty(rmw & (fr ; co))
               axiom causality:     acyclic(rfe | co | fr | ppo | fence)
               axiom invlpg:        acyclic(fr_va | ^po | remap)
               axiom tlb_causality: acyclic(ptw_source | com)
             }",
        )
        .expect("spec parses")
    }

    #[test]
    fn sc_per_loc_suite_is_nonempty_at_bound_4() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(4);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        let suite = synthesize_suite(&mtm, "sc_per_loc", &opts);
        assert!(!suite.elts.is_empty());
        for elt in &suite.elts {
            assert!(elt.violated.contains(&"sc_per_loc".to_string()));
            assert!(elt.program.size() <= 4);
        }
    }

    #[test]
    fn invlpg_suite_contains_ptwalk2_at_bound_4() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(4);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        let suite = synthesize_suite(&mtm, "invlpg", &opts);
        assert!(!suite.elts.is_empty(), "stats: {:?}", suite.stats);
        // The Fig. 10a shape: WPTE; INVLPG; R(+walk), remapped.
        use crate::programs::{PaRef, Program, SlotOp};
        let ptwalk2 = Program {
            threads: vec![vec![
                SlotOp::PteWrite {
                    va: 0,
                    pa: PaRef::Fresh(0),
                },
                SlotOp::Invlpg { va: 0 },
                SlotOp::Read { va: 0, walk: true },
            ]],
            remap: vec![((0, 0), (0, 1))],
            rmw: vec![],
        };
        assert!(suite_contains(&suite, &ptwalk2));
    }

    #[test]
    fn no_suite_members_below_minimum_bound() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(3);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        // At bound 3 no invlpg violation fits (WPTE+INVLPG+R+walk needs 4).
        let suite = synthesize_suite(&mtm, "invlpg", &opts);
        assert!(suite.elts.is_empty());
    }

    #[test]
    fn timeout_stops_cleanly() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(6);
        opts.timeout = Some(Duration::from_millis(0));
        let suite = synthesize_suite(&mtm, "sc_per_loc", &opts);
        assert!(suite.stats.timed_out);
    }

    #[test]
    fn union_and_attribution_are_consistent() {
        let mtm = x86t_elt_like();
        let mut opts = SynthOptions::new(4);
        opts.enumeration.allow_fences = false;
        opts.enumeration.allow_rmw = false;
        let suites = synthesize_all(&mtm, &opts);
        let union = unique_union(suites.values());
        let total: usize = suites.values().map(|s| s.elts.len()).sum();
        assert!(union.len() <= total);
        let attribution = exclusive_attribution(&suites);
        let excl: usize = attribution.values().sum();
        assert!(excl <= union.len());
    }
}
