//! Bounded enumeration of ELT programs (§IV-A).
//!
//! A *program* is an execution skeleton: instructions placed on threads
//! with ghost attachments, remap assignments, and rmw dependencies — but
//! no communication choices yet. Enumeration respects the paper's
//! placement rules:
//!
//! * the first same-VA access on a core must walk (TLBs start empty);
//! * an access after an `INVLPG` of its VA must walk (Fig. 5b);
//! * other accesses may hit or miss freely (capacity evictions, §III-B2);
//! * every user write carries a dirty-bit update (§III-A2);
//! * every PTE write invokes exactly one `INVLPG` per core (§III-B2);
//! * spurious `INVLPG`s appear only where they can affect the thread's
//!   execution (a later same-VA access exists);
//! * fences appear only between two instructions of their thread.
//!
//! The instruction bound counts *every* event, ghosts included — the
//! paper's Fig. 10a is a four-instruction ELT.

use crate::canon::canonical_key;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use transform_core::exec::{EltBuilder, Execution};
use transform_core::ids::{Pa, Va};

/// How a PTE write's target PA relates to the rest of the test.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum PaRef {
    /// The initial physical page of VA *i* (aliasing an existing page).
    Initial(usize),
    /// A page not initially mapped by any VA in the test.
    Fresh(usize),
}

/// One program-order slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum SlotOp {
    /// User read; `walk` marks a TLB miss.
    Read {
        /// VA index.
        va: usize,
        /// Whether the read invokes a PT walk.
        walk: bool,
    },
    /// User write (always carries a dirty-bit update).
    Write {
        /// VA index.
        va: usize,
        /// Whether the write invokes a PT walk.
        walk: bool,
    },
    /// `MFENCE`.
    Fence,
    /// Support PTE write remapping `va` to `pa`.
    PteWrite {
        /// VA index.
        va: usize,
        /// Target page.
        pa: PaRef,
    },
    /// Support TLB invalidation.
    Invlpg {
        /// VA index.
        va: usize,
    },
    /// Support full TLB flush (the extended IPI type, §III-B2 future
    /// work): evicts every entry of the issuing core's TLB.
    TlbFlush,
}

impl SlotOp {
    /// Event cost of the slot, ghosts included.
    pub fn cost(self) -> usize {
        match self {
            SlotOp::Read { walk, .. } => 1 + usize::from(walk),
            SlotOp::Write { walk, .. } => 2 + usize::from(walk),
            SlotOp::Fence | SlotOp::Invlpg { .. } | SlotOp::TlbFlush | SlotOp::PteWrite { .. } => 1,
        }
    }

    /// The VA the op touches, if any.
    pub fn va(self) -> Option<usize> {
        match self {
            SlotOp::Read { va, .. }
            | SlotOp::Write { va, .. }
            | SlotOp::PteWrite { va, .. }
            | SlotOp::Invlpg { va } => Some(va),
            SlotOp::Fence | SlotOp::TlbFlush => None,
        }
    }
}

/// An ELT program: threads of slots plus remap/rmw structure.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Program {
    /// Instruction sequences, one per core.
    pub threads: Vec<Vec<SlotOp>>,
    /// `(wpte, invlpg)` pairs as `(thread, slot)` positions.
    pub remap: Vec<((usize, usize), (usize, usize))>,
    /// RMW dependencies as `(thread, read-slot)`; the write is the next
    /// slot.
    pub rmw: Vec<(usize, usize)>,
}

impl Program {
    /// Total event count, ghosts included.
    pub fn size(&self) -> usize {
        self.threads.iter().flatten().map(|op| op.cost()).sum()
    }

    /// Whether the program contains any write (user or PTE) — the
    /// spanning-set criterion 1: only write-bearing programs can have a
    /// forbidden outcome.
    pub fn has_write(&self) -> bool {
        self.threads
            .iter()
            .flatten()
            .any(|op| matches!(op, SlotOp::Write { .. } | SlotOp::PteWrite { .. }))
    }

    /// Number of distinct VAs (they are first-use numbered).
    pub fn num_vas(&self) -> usize {
        self.threads
            .iter()
            .flatten()
            .filter_map(|op| op.va())
            .max()
            .map_or(0, |v| v + 1)
    }

    /// Extracts the program of an execution (discarding communication) —
    /// the inverse of [`Program::to_skeleton`]. Used by the COATCheck
    /// comparison tool, whose unit of comparison is the ELT *program*.
    pub fn from_execution(x: &Execution) -> Program {
        use transform_core::event::EventKind;
        use transform_core::ids::ThreadId;
        let num_vas = x.num_vas();
        let mut threads = Vec::new();
        let mut slot_of = std::collections::BTreeMap::new();
        for t in 0..x.num_threads() {
            let mut row = Vec::new();
            for (s, &e) in x.po_of(ThreadId(t)).iter().enumerate() {
                slot_of.insert(e, (t, s));
                let ev = x.event(e);
                let walk = x
                    .ghosts_of(e)
                    .iter()
                    .any(|&g| x.event(g).kind == EventKind::Ptw);
                let op = match ev.kind {
                    EventKind::Read => SlotOp::Read {
                        va: ev.va_unwrap().0,
                        walk,
                    },
                    EventKind::Write => SlotOp::Write {
                        va: ev.va_unwrap().0,
                        walk,
                    },
                    EventKind::Fence => SlotOp::Fence,
                    EventKind::PteWrite { new_pa } => SlotOp::PteWrite {
                        va: ev.va_unwrap().0,
                        pa: if new_pa.0 < num_vas {
                            PaRef::Initial(new_pa.0)
                        } else {
                            PaRef::Fresh(new_pa.0 - num_vas)
                        },
                    },
                    EventKind::Invlpg => SlotOp::Invlpg {
                        va: ev.va_unwrap().0,
                    },
                    EventKind::TlbFlush => SlotOp::TlbFlush,
                    EventKind::Ptw | EventKind::DirtyBitWrite => {
                        unreachable!("ghosts are not in po")
                    }
                };
                row.push(op);
            }
            threads.push(row);
        }
        let remap = x
            .remap_pairs()
            .iter()
            .map(|&(w, i)| (slot_of[&w], slot_of[&i]))
            .collect();
        let rmw = x.rmw_pairs().iter().map(|&(r, _)| slot_of[&r]).collect();
        Program {
            threads,
            remap,
            rmw,
        }
    }

    /// Lowers the program to an execution skeleton (events, ghosts, po,
    /// remap, rmw — no communication).
    pub fn to_skeleton(&self) -> Execution {
        let num_vas = self.num_vas();
        let mut b = EltBuilder::new();
        let mut ids = Vec::new();
        for (t, slots) in self.threads.iter().enumerate() {
            let tid = b.thread();
            debug_assert_eq!(tid.0, t);
            let mut row = Vec::new();
            for &op in slots {
                let id = match op {
                    SlotOp::Read { va, walk: true } => b.read_walk(tid, Va(va)).0,
                    SlotOp::Read { va, walk: false } => b.read(tid, Va(va)),
                    SlotOp::Write { va, walk: true } => b.write_walk(tid, Va(va)).0,
                    SlotOp::Write { va, walk: false } => b.write(tid, Va(va)).0,
                    SlotOp::Fence => b.fence(tid),
                    SlotOp::PteWrite { va, pa } => {
                        let pa = match pa {
                            PaRef::Initial(v) => Pa(v),
                            PaRef::Fresh(k) => Pa(num_vas + k),
                        };
                        b.pte_write(tid, Va(va), pa)
                    }
                    SlotOp::Invlpg { va } => b.invlpg(tid, Va(va)),
                    SlotOp::TlbFlush => b.tlb_flush(tid),
                };
                row.push(id);
            }
            ids.push(row);
        }
        for &((wt, ws), (it, is)) in &self.remap {
            b.remap(ids[wt][ws], ids[it][is]);
        }
        for &(t, s) in &self.rmw {
            b.rmw(ids[t][s], ids[t][s + 1]);
        }
        b.build()
    }
}

/// Knobs for bounded program enumeration.
#[derive(Clone, Debug)]
pub struct EnumOptions {
    /// Maximum total event count (the paper's instruction bound).
    pub bound: usize,
    /// Maximum number of threads (`None` ⇒ derived from the bound).
    pub max_threads: Option<usize>,
    /// Allow `MFENCE` instructions.
    pub allow_fences: bool,
    /// Allow RMW (read-modify-write) pairs.
    pub allow_rmw: bool,
    /// Allow PTE writes that re-install a VA's initial mapping.
    pub allow_identity_remap: bool,
    /// Apply canonical-form symmetry reduction during enumeration
    /// (§VI-A); turning this off is an ablation.
    pub symmetry_reduction: bool,
}

impl EnumOptions {
    /// Defaults for a given instruction bound.
    pub fn new(bound: usize) -> EnumOptions {
        EnumOptions {
            bound,
            max_threads: None,
            allow_fences: true,
            allow_rmw: true,
            allow_identity_remap: false,
            symmetry_reduction: true,
        }
    }
}

/// A per-thread instruction sequence with locally-numbered VAs and PA
/// symbols, produced by the first enumeration stage.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Shape {
    ops: Vec<SlotOp>, // va = local index; PteWrite.pa = Fresh(local symbol)
    cost: usize,
    num_vas: usize,
    num_pa_syms: usize,
    rmw: Vec<usize>,
}

/// Enumerates all thread shapes of cost ≤ `budget`.
fn shapes(budget: usize, opts: &EnumOptions) -> Vec<Shape> {
    let mut out = Vec::new();
    let mut cur = Shape {
        ops: Vec::new(),
        cost: 0,
        num_vas: 0,
        num_pa_syms: 0,
        rmw: Vec::new(),
    };
    // TLB validity per local VA.
    let mut tlb: Vec<bool> = Vec::new();
    extend(&mut cur, &mut tlb, budget, opts, &mut out);
    out
}

fn extend(
    cur: &mut Shape,
    tlb: &mut Vec<bool>,
    budget: usize,
    opts: &EnumOptions,
    out: &mut Vec<Shape>,
) {
    if !cur.ops.is_empty() {
        // A trailing fence orders nothing: skip such shapes.
        if cur.ops.last() != Some(&SlotOp::Fence) {
            out.push(cur.clone());
        }
    }
    let remaining = budget.saturating_sub(cur.cost);
    if remaining == 0 {
        return;
    }
    let max_va = cur.num_vas; // may introduce one fresh VA
    for va in 0..=max_va {
        let fresh_va = va == cur.num_vas;
        let had_entry = !fresh_va && tlb[va];

        // Reads and writes, with forced walk on a cold TLB.
        for (write, base_cost) in [(false, 1usize), (true, 2usize)] {
            let walk_options: &[bool] = if had_entry { &[false, true] } else { &[true] };
            for &walk in walk_options {
                let cost = base_cost + usize::from(walk);
                if cost > remaining {
                    continue;
                }
                let op = if write {
                    SlotOp::Write { va, walk }
                } else {
                    SlotOp::Read { va, walk }
                };
                with_op(cur, tlb, op, fresh_va, walk || had_entry, |cur, tlb| {
                    extend(cur, tlb, budget, opts, out)
                });
            }
        }

        // RMW: adjacent read+write to one VA; the write reuses the read's
        // translation and adds the dirty-bit update.
        if opts.allow_rmw {
            let walk_options: &[bool] = if had_entry { &[false, true] } else { &[true] };
            for &walk in walk_options {
                let cost = 1 + usize::from(walk) + 2;
                if cost > remaining {
                    continue;
                }
                let read_slot = cur.ops.len();
                cur.ops.push(SlotOp::Read { va, walk });
                cur.ops.push(SlotOp::Write { va, walk: false });
                cur.rmw.push(read_slot);
                cur.cost += cost;
                let saved_vas = cur.num_vas;
                if fresh_va {
                    cur.num_vas += 1;
                    tlb.push(true);
                } else {
                    tlb[va] = true;
                }
                let saved_entry = had_entry;
                extend(cur, tlb, budget, opts, out);
                cur.ops.pop();
                cur.ops.pop();
                cur.rmw.pop();
                cur.cost -= cost;
                if fresh_va {
                    tlb.pop();
                } else {
                    tlb[va] = saved_entry;
                }
                cur.num_vas = saved_vas;
            }
        }

        // PTE write: PA meaning (alias vs fresh page) is resolved when
        // threads are combined; locally we only number the symbols.
        if 1 <= remaining {
            let op = SlotOp::PteWrite {
                va,
                pa: PaRef::Fresh(cur.num_pa_syms),
            };
            cur.num_pa_syms += 1;
            with_op(cur, tlb, op, fresh_va, had_entry, |cur, tlb| {
                extend(cur, tlb, budget, opts, out)
            });
            cur.num_pa_syms -= 1;
        }

        // INVLPG: evicts the TLB entry.
        if 1 <= remaining {
            let op = SlotOp::Invlpg { va };
            cur.ops.push(op);
            cur.cost += 1;
            let saved_vas = cur.num_vas;
            if fresh_va {
                cur.num_vas += 1;
                tlb.push(false);
            } else {
                tlb[va] = false;
            }
            extend(cur, tlb, budget, opts, out);
            cur.ops.pop();
            cur.cost -= 1;
            if fresh_va {
                tlb.pop();
            } else {
                tlb[va] = had_entry;
            }
            cur.num_vas = saved_vas;
        }
    }

    // Fence, only after a non-fence instruction.
    if opts.allow_fences
        && 1 <= remaining
        && !cur.ops.is_empty()
        && cur.ops.last() != Some(&SlotOp::Fence)
    {
        cur.ops.push(SlotOp::Fence);
        cur.cost += 1;
        extend(cur, tlb, budget, opts, out);
        cur.ops.pop();
        cur.cost -= 1;
    }
}

fn with_op(
    cur: &mut Shape,
    tlb: &mut Vec<bool>,
    op: SlotOp,
    fresh_va: bool,
    entry_after: bool,
    f: impl FnOnce(&mut Shape, &mut Vec<bool>),
) {
    let va = op.va().expect("memory-ish op has a VA");
    cur.ops.push(op);
    cur.cost += op.cost();
    let saved_entry = if fresh_va {
        cur.num_vas += 1;
        tlb.push(entry_after);
        false
    } else {
        let s = tlb[va];
        tlb[va] = entry_after;
        s
    };
    f(cur, tlb);
    cur.ops.pop();
    cur.cost -= op.cost();
    if fresh_va {
        cur.num_vas -= 1;
        tlb.pop();
    } else {
        tlb[va] = saved_entry;
    }
}

/// A program together with the facts the planner reuses: its canonical
/// key (computed once, during enumeration) and whether it contains a
/// write. Streamed out of [`EnumSpace::enumerate_keyed`] so downstream
/// stages never recompute [`canonical_key`].
#[derive(Clone, Debug)]
pub struct KeyedProgram {
    /// The enumerated program.
    pub program: Program,
    /// Canonical key ([`canonical_key`]) — present whenever enumeration
    /// needed it (symmetry reduction on) or the planner will (the
    /// program has a write); `None` only for write-free programs with
    /// symmetry reduction off.
    pub key: Option<Vec<u64>>,
    /// [`Program::has_write`], precomputed.
    pub has_write: bool,
}

/// Where enumerated programs land: applies symmetry-reduction dedup
/// (scoped to the whole run for the monolithic recursion, or to one
/// partition for [`EnumSpace::enumerate_keyed`]) and decides which
/// canonical keys are worth keeping.
struct EmitSink<'a> {
    opts: &'a EnumOptions,
    /// Keep keys for write-bearing programs even without symmetry
    /// reduction — the partitioned planner reuses them as plan keys.
    keep_keys: bool,
    seen: BTreeSet<Vec<u64>>,
    out: Vec<KeyedProgram>,
}

impl<'a> EmitSink<'a> {
    fn new(opts: &'a EnumOptions, keep_keys: bool) -> EmitSink<'a> {
        EmitSink {
            opts,
            keep_keys,
            seen: BTreeSet::new(),
            out: Vec::new(),
        }
    }

    fn emit(&mut self, program: Program) {
        let has_write = program.has_write();
        let needs_key = self.opts.symmetry_reduction || (self.keep_keys && has_write);
        let mut key = needs_key.then(|| canonical_key(&program));
        if self.opts.symmetry_reduction {
            let k = key.as_ref().expect("symmetry reduction keys every program");
            if self.seen.contains(k) {
                return;
            }
            if self.keep_keys {
                self.seen.insert(k.clone());
            } else {
                // The eager path discards per-program keys, so move the
                // key into the dedup set instead of retaining a second
                // copy per emitted program.
                key = {
                    self.seen.insert(key.expect("checked above"));
                    None
                };
            }
        }
        self.out.push(KeyedProgram {
            program,
            key,
            has_write,
        });
    }
}

/// Enumerates all programs of size ≤ `opts.bound`, canonically deduplicated
/// when `opts.symmetry_reduction` is on.
pub fn programs(opts: &EnumOptions) -> Vec<Program> {
    programs_with_deadline(opts, None)
}

/// Like [`programs`], stopping early (with a partial result) once
/// `deadline` passes — the paper's synthesis timeout.
pub fn programs_with_deadline(
    opts: &EnumOptions,
    deadline: Option<std::time::Instant>,
) -> Vec<Program> {
    let mut all_shapes = shapes(opts.bound, opts);
    all_shapes.sort_by_key(|s| s.cost); // enables early cut-off in combine
    let max_threads = opts.max_threads.unwrap_or(opts.bound);
    let mut sink = EmitSink::new(opts, false);

    // Choose up to `max_threads` shapes (non-decreasing indices for
    // symmetry breaking across identical shape multisets).
    let mut chosen: Vec<usize> = Vec::new();
    combine(
        &all_shapes,
        0,
        opts.bound,
        max_threads,
        &mut chosen,
        &deadline,
        &mut sink,
    );
    sink.out.into_iter().map(|kp| kp.program).collect()
}

fn combine(
    shapes: &[Shape],
    from: usize,
    budget_left: usize,
    threads_left: usize,
    chosen: &mut Vec<usize>,
    deadline: &Option<std::time::Instant>,
    sink: &mut EmitSink<'_>,
) {
    if let Some(d) = deadline {
        if std::time::Instant::now() > *d {
            return;
        }
    }
    if !chosen.is_empty() {
        assign_and_emit(shapes, chosen, sink);
    }
    if threads_left == 0 {
        return;
    }
    for i in from..shapes.len() {
        if shapes[i].cost > budget_left {
            break; // shapes are sorted by cost
        }
        chosen.push(i);
        combine(
            shapes,
            i, // allow repeats; non-decreasing order breaks permutations
            budget_left - shapes[i].cost,
            threads_left - 1,
            chosen,
            deadline,
            sink,
        );
        chosen.pop();
    }
}

/// One node of the shape-combination recursion as seen by a
/// node-granular enumeration ([`EnumSpace::enumerate_nodes_within`]).
/// Nodes appear in exactly the recursion's visit order, which is stable
/// across bounds: raising the bound appends costlier shapes to the
/// (cost-sorted) shape list and grows each partition's node sequence,
/// but never reorders the nodes the smaller bound already visited.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeSpan {
    /// The node's total shape cost fits the warm-start parent bound:
    /// every program it would emit is already part of the parent
    /// bound's enumeration, so nothing was materialized for it.
    Covered,
    /// The node was enumerated; its programs end at `end` (exclusive)
    /// in [`NodeStream::programs`].
    Emitted {
        /// One-past-the-last index of the node's programs.
        end: usize,
    },
}

/// One partition enumerated at node granularity: the partition's
/// programs (partition-local symmetry dedup applied, exactly as
/// [`EnumSpace::enumerate_keyed_within`]) plus, per recursion node in
/// visit order, where that node's programs end — or a
/// [`NodeSpan::Covered`] marker for nodes a warm-start parent bound
/// already covers.
#[derive(Clone, Debug)]
pub struct NodeStream {
    /// The partition's nodes in recursion order.
    pub nodes: Vec<NodeSpan>,
    /// The programs of the [`NodeSpan::Emitted`] nodes, concatenated.
    pub programs: Vec<KeyedProgram>,
}

/// [`combine`] with node-granular bookkeeping: identical recursion,
/// identical emission order, but each node also records a [`NodeSpan`] —
/// and nodes whose total cost fits `parent_bound` are marked
/// [`NodeSpan::Covered`] instead of being materialized. Covered nodes
/// still recurse: a node inside the parent bound can own descendants
/// that only fit the current (larger) bound.
#[allow(clippy::too_many_arguments)]
fn combine_nodes(
    shapes: &[Shape],
    from: usize,
    budget_left: usize,
    threads_left: usize,
    cost_used: usize,
    parent_bound: Option<usize>,
    chosen: &mut Vec<usize>,
    deadline: &Option<std::time::Instant>,
    sink: &mut EmitSink<'_>,
    nodes: &mut Vec<NodeSpan>,
) {
    if let Some(d) = deadline {
        if std::time::Instant::now() > *d {
            return;
        }
    }
    if !chosen.is_empty() {
        if parent_bound.is_some_and(|pb| cost_used <= pb) {
            nodes.push(NodeSpan::Covered);
        } else {
            assign_and_emit(shapes, chosen, sink);
            nodes.push(NodeSpan::Emitted {
                end: sink.out.len(),
            });
        }
    }
    if threads_left == 0 {
        return;
    }
    for i in from..shapes.len() {
        if shapes[i].cost > budget_left {
            break; // shapes are sorted by cost
        }
        chosen.push(i);
        combine_nodes(
            shapes,
            i, // allow repeats; non-decreasing order breaks permutations
            budget_left - shapes[i].cost,
            threads_left - 1,
            cost_used + shapes[i].cost,
            parent_bound,
            chosen,
            deadline,
            sink,
            nodes,
        );
        chosen.pop();
    }
}

/// How a partitioned [`EnumSpace`] decides where to split.
///
/// Both modes yield the same program sequence (splits are always
/// order-preserving expansions of the recursion) — only the work-unit
/// boundaries differ, so the choice is pure scheduling: it never
/// changes a synthesized suite, and is excluded from store
/// fingerprints like the worker count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Balance {
    /// Split by estimated subtree mass: the exact shape-combination
    /// node count below each prefix (memoized from the recursion
    /// itself), so partitions carry roughly equal enumeration work.
    #[default]
    Mass,
    /// Split the cheapest root shapes to a fixed depth of two, blind
    /// to subtree mass — the pre-mass-estimation behavior, kept as a
    /// comparison baseline.
    Depth,
}

impl Balance {
    /// Parses the CLI spelling (`mass` | `depth`).
    pub fn parse(name: &str) -> Option<Balance> {
        match name {
            "mass" => Some(Balance::Mass),
            "depth" => Some(Balance::Depth),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Balance::Mass => "mass",
            Balance::Depth => "depth",
        }
    }
}

/// Exact node counts of the shape-combination recursion, memoized.
///
/// A *node* is one chosen shape multiset — one [`assign_and_emit`]
/// call. `descendants(from, budget, threads)` counts the nodes of the
/// subtree that continues with shape indices `>= from` under the
/// remaining budget and thread slots: the number of non-empty
/// non-decreasing index sequences with total cost ≤ `budget` and
/// length ≤ `threads`. The recurrence mirrors the recursion — skip
/// shape `from` entirely, or choose it first and continue from it:
///
/// `N(f,b,t) = N(f+1,b,t) + [cost_f ≤ b] · (1 + N(f, b−cost_f, t−1))`
///
/// The table is `O(shapes × bound × threads)` and each entry is O(1),
/// so estimating every partition's mass costs far less than
/// enumerating even one of them.
struct MassTable {
    /// `table[(f * (bound+1) + b) * (maxt+1) + t]`.
    table: Vec<u64>,
    bound: usize,
    maxt: usize,
}

impl MassTable {
    fn new(shapes: &[Shape], bound: usize, max_threads: usize) -> MassTable {
        let maxt = max_threads.min(bound); // every shape costs ≥ 1
        let n = shapes.len();
        let bdim = bound + 1;
        let tdim = maxt + 1;
        let mut table = vec![0u64; (n + 1) * bdim * tdim];
        let idx = |f: usize, b: usize, t: usize| (f * bdim + b) * tdim + t;
        for f in (0..n).rev() {
            let cost = shapes[f].cost;
            for b in 0..bdim {
                for t in 1..tdim {
                    let mut m = table[idx(f + 1, b, t)];
                    if cost <= b {
                        m = m
                            .saturating_add(1)
                            .saturating_add(table[idx(f, b - cost, t - 1)]);
                    }
                    table[idx(f, b, t)] = m;
                }
            }
        }
        MassTable { table, bound, maxt }
    }

    /// Nodes strictly below a node that continues from index `from`
    /// with `budget` cost and `threads` slots left.
    fn descendants(&self, from: usize, budget: usize, threads: usize) -> u64 {
        let b = budget.min(self.bound);
        let t = threads.min(self.maxt);
        self.table[(from * (self.bound + 1) + b) * (self.maxt + 1) + t]
    }

    /// Estimated mass of one partition: its own node plus, for subtree
    /// partitions, everything below the prefix.
    fn partition_mass(&self, shapes: &[Shape], max_threads: usize, part: &Partition) -> u64 {
        if !part.subtree {
            return 1;
        }
        let used: usize = part.prefix.iter().map(|&i| shapes[i].cost).sum();
        let from = *part.prefix.last().expect("prefixes are non-empty");
        1u64.saturating_add(self.descendants(
            from,
            self.bound.saturating_sub(used),
            max_threads.saturating_sub(part.prefix.len()),
        ))
    }
}

/// Projects time-to-completion from subtree-mass progress: the rate is
/// `mass_retired / elapsed` and the projection covers the remaining
/// `mass_total - mass_retired`. Mass is the `MassTable`'s exact
/// shape-combination node count, so unlike a partition *count* the
/// projection is not skewed by wildly uneven partition sizes.
///
/// Returns `None` before any mass has retired (no rate to project
/// from) or when the space is empty; `Some(Duration::ZERO)` once
/// everything retired.
pub fn mass_eta(
    mass_retired: u64,
    mass_total: u64,
    elapsed: std::time::Duration,
) -> Option<std::time::Duration> {
    if mass_total == 0 || mass_retired == 0 {
        return None;
    }
    if mass_retired >= mass_total {
        return Some(std::time::Duration::ZERO);
    }
    let rate = mass_retired as f64 / elapsed.as_secs_f64().max(1e-9);
    Some(std::time::Duration::from_secs_f64(
        (mass_total - mass_retired) as f64 / rate,
    ))
}

/// The bounded program space split by *skeleton prefix* into
/// independently enumerable partitions.
///
/// A partition is a node of the shape-combination recursion: the chosen
/// first (and, after a split, second) thread shapes. Partitions are
/// ordered exactly as the monolithic recursion visits them, so
/// concatenating their outputs in ordinal order — keeping, under
/// symmetry reduction, only the first occurrence of each canonical key
/// across partitions — reproduces [`programs`] element for element.
/// That makes each partition an independent work unit for a parallel
/// pool *and* gives every enumerated program a stable position
/// `(ordinal, offset)` that no scheduling decision can move.
pub struct EnumSpace {
    shapes: Vec<Shape>,
    opts: EnumOptions,
    max_threads: usize,
    partitions: Vec<Partition>,
}

/// One node of the shape-combination recursion, as a work unit.
#[derive(Clone, Debug)]
struct Partition {
    /// Chosen-shape prefix: indices into the cost-sorted shape list,
    /// non-decreasing (the recursion's permutation breaking).
    prefix: Vec<usize>,
    /// Enumerate the whole subtree below the prefix, or only the prefix
    /// node itself (its children were split into their own partitions).
    subtree: bool,
}

/// Splits never go deeper than two chosen shapes: depth 2 already yields
/// O(shapes²) partitions, far more than any realistic worker count.
const MAX_SPLIT_DEPTH: usize = 2;

/// The order-preserving expansion of one subtree partition: Emit(p)
/// followed by Subtree(p + [j]) for every feasible continuation j —
/// exactly the recursion's own visit order. Splicing this in place of
/// the node keeps global partition order equal to the monolithic
/// enumeration under any sequence of splits; both split modes (depth
/// and mass) go through here so they can never drift apart.
fn expand_partition(
    node: &Partition,
    shapes: &[Shape],
    bound: usize,
    max_threads: usize,
) -> Vec<Partition> {
    let used: usize = node.prefix.iter().map(|&i| shapes[i].cost).sum();
    let budget_left = bound - used;
    let from = *node.prefix.last().expect("prefixes are non-empty");
    let mut expansion = vec![Partition {
        prefix: node.prefix.clone(),
        subtree: false,
    }];
    if node.prefix.len() < max_threads {
        for (j, shape) in shapes.iter().enumerate().skip(from) {
            if shape.cost > budget_left {
                break; // shapes are sorted by cost
            }
            let mut prefix = node.prefix.clone();
            prefix.push(j);
            expansion.push(Partition {
                prefix,
                subtree: true,
            });
        }
    }
    expansion
}

impl EnumSpace {
    /// Builds the space with one partition per first-thread shape.
    pub fn new(opts: &EnumOptions) -> EnumSpace {
        EnumSpace::with_target_partitions(opts, 0)
    }

    /// Builds the space, splitting subtrees (cheapest root shape first —
    /// those own the largest subtrees — and always order-preserving)
    /// until at least `target` partitions exist or nothing splittable
    /// remains.
    pub fn with_target_partitions(opts: &EnumOptions, target: usize) -> EnumSpace {
        let mut shapes = shapes(opts.bound, opts);
        shapes.sort_by_key(|s| s.cost); // identical to the monolithic sort
        let max_threads = opts.max_threads.unwrap_or(opts.bound);
        let mut partitions: Vec<Partition> = if max_threads == 0 {
            Vec::new()
        } else {
            (0..shapes.len())
                .map(|i| Partition {
                    prefix: vec![i],
                    subtree: true,
                })
                .collect()
        };
        while partitions.len() < target {
            // The first still-splittable subtree has the cheapest root.
            let Some(at) = partitions
                .iter()
                .position(|p| p.subtree && p.prefix.len() < MAX_SPLIT_DEPTH)
            else {
                break;
            };
            let node = partitions[at].clone();
            let expansion = expand_partition(&node, &shapes, opts.bound, max_threads);
            partitions.splice(at..=at, expansion);
        }
        EnumSpace {
            shapes,
            opts: opts.clone(),
            max_threads,
            partitions,
        }
    }

    /// Builds the space split by *estimated subtree mass*: any
    /// partition whose exact shape-combination node count exceeds
    /// `target_mass` is split (heaviest first, always
    /// order-preserving) until every partition fits the target or
    /// nothing splittable remains. Unlike the depth-2 split of
    /// [`EnumSpace::with_target_partitions`], this sees *into* the
    /// recursion: a cheap root shape owning a huge subtree is carved
    /// up, a costly root owning a sliver is left whole — so a parallel
    /// pool's work units carry comparable enumeration work.
    pub fn balanced(opts: &EnumOptions, target_mass: u64) -> EnumSpace {
        EnumSpace::balanced_impl(opts, Some(target_mass), usize::MAX)
    }

    /// Like [`EnumSpace::balanced`], deriving the mass target from a
    /// partition-count target: `target_mass = total_mass / target`. The
    /// convenience the parallel orchestrator uses (`jobs × partitions
    /// per worker` in, balanced work units out).
    pub fn balanced_for_target(opts: &EnumOptions, target: usize) -> EnumSpace {
        EnumSpace::balanced_impl(opts, None, target)
    }

    fn balanced_impl(opts: &EnumOptions, target_mass: Option<u64>, target: usize) -> EnumSpace {
        /// Far more partitions than any realistic worker count needs;
        /// bounds per-partition overhead when the mass target is tiny.
        const MAX_BALANCED_PARTITIONS: usize = 8192;
        let mut shapes = shapes(opts.bound, opts);
        shapes.sort_by_key(|s| s.cost); // identical to the monolithic sort
        let max_threads = opts.max_threads.unwrap_or(opts.bound);
        let table = MassTable::new(&shapes, opts.bound, max_threads);
        let mut partitions: Vec<Partition> = if max_threads == 0 {
            Vec::new()
        } else {
            (0..shapes.len())
                .map(|i| Partition {
                    prefix: vec![i],
                    subtree: true,
                })
                .collect()
        };
        let mut masses: Vec<u64> = partitions
            .iter()
            .map(|p| table.partition_mass(&shapes, max_threads, p))
            .collect();
        let total: u64 = masses.iter().fold(0u64, |a, &m| a.saturating_add(m));
        let target_mass = target_mass
            .unwrap_or_else(|| total / target.max(1) as u64)
            .max(1);
        while partitions.len() < MAX_BALANCED_PARTITIONS {
            // The heaviest partition above the target. A subtree whose
            // mass exceeds 1 always has children, so splitting strictly
            // reduces the maximum and the loop terminates.
            let Some(at) = (0..partitions.len())
                .filter(|&i| partitions[i].subtree && masses[i] > target_mass)
                .max_by_key(|&i| masses[i])
            else {
                break;
            };
            let node = partitions[at].clone();
            let expansion = expand_partition(&node, &shapes, opts.bound, max_threads);
            let expansion_masses: Vec<u64> = expansion
                .iter()
                .map(|p| table.partition_mass(&shapes, max_threads, p))
                .collect();
            partitions.splice(at..=at, expansion);
            masses.splice(at..=at, expansion_masses);
        }
        EnumSpace {
            shapes,
            opts: opts.clone(),
            max_threads,
            partitions,
        }
    }

    /// The estimated mass of every partition, in ordinal order: the
    /// exact shape-combination node count each work unit covers
    /// (diagnostics and the `enum_throughput` bench's balance
    /// comparison — splitting itself reuses the same table).
    pub fn masses(&self) -> Vec<u64> {
        let table = MassTable::new(&self.shapes, self.opts.bound, self.max_threads);
        self.partitions
            .iter()
            .map(|p| table.partition_mass(&self.shapes, self.max_threads, p))
            .collect()
    }

    /// Total estimated mass of the space: the sum of
    /// [`EnumSpace::masses`] — the denominator of mass-based progress
    /// reporting ([`mass_eta`]).
    pub fn total_mass(&self) -> u64 {
        self.masses().iter().fold(0u64, |a, &m| a.saturating_add(m))
    }

    /// The enumeration options the space was built for.
    pub fn options(&self) -> &EnumOptions {
        &self.opts
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The chosen-shape prefix of partition `ordinal` (diagnostics).
    pub fn partition_prefix(&self, ordinal: usize) -> &[usize] {
        &self.partitions[ordinal].prefix
    }

    /// Enumerates one partition, canonical keys included. Symmetry
    /// dedup is partition-local: concatenating all partitions in
    /// ordinal order and keeping the first occurrence of each key
    /// reproduces [`programs`] exactly (which [`EnumSpace::stream`]
    /// does, and the parallel planner's ordered dedup frontier relies
    /// on).
    pub fn enumerate_keyed(&self, ordinal: usize) -> Vec<KeyedProgram> {
        self.enumerate_keyed_within(ordinal, None)
    }

    /// Like [`EnumSpace::enumerate_keyed`], aborting early once
    /// `deadline` passes. An aborted partition's output is *partial* —
    /// callers that need the reproducible-prefix guarantee must check
    /// the deadline after the call and discard the result (treating the
    /// partition as cut) if it struck, which is what the parallel
    /// planner and the streaming pipeline do.
    pub fn enumerate_keyed_within(
        &self,
        ordinal: usize,
        deadline: Option<std::time::Instant>,
    ) -> Vec<KeyedProgram> {
        let part = &self.partitions[ordinal];
        let mut sink = EmitSink::new(&self.opts, true);
        let mut chosen = part.prefix.clone();
        if part.subtree {
            let used: usize = chosen.iter().map(|&i| self.shapes[i].cost).sum();
            let from = *chosen.last().expect("prefixes are non-empty");
            combine(
                &self.shapes,
                from,
                self.opts.bound - used,
                self.max_threads - chosen.len(),
                &mut chosen,
                &deadline,
                &mut sink,
            );
        } else {
            assign_and_emit(&self.shapes, &chosen, &mut sink);
        }
        sink.out
    }

    /// Like [`EnumSpace::enumerate_keyed_within`], at node granularity:
    /// the same programs in the same order, segmented per recursion
    /// node — and, when `parent_bound` is given, nodes whose cost fits
    /// that smaller bound are *skipped* ([`NodeSpan::Covered`]): their
    /// programs are exactly the ones a bound-`parent_bound` enumeration
    /// already produced, in the same relative node order, so a
    /// warm-start consumer can splice the parent's results in instead
    /// of re-enumerating them.
    ///
    /// The deadline contract matches
    /// [`EnumSpace::enumerate_keyed_within`]: an aborted partition's
    /// output is partial and must be discarded.
    pub fn enumerate_nodes_within(
        &self,
        ordinal: usize,
        parent_bound: Option<usize>,
        deadline: Option<std::time::Instant>,
    ) -> NodeStream {
        let part = &self.partitions[ordinal];
        let mut sink = EmitSink::new(&self.opts, true);
        let mut nodes = Vec::new();
        let mut chosen = part.prefix.clone();
        let used: usize = chosen.iter().map(|&i| self.shapes[i].cost).sum();
        if part.subtree {
            let from = *chosen.last().expect("prefixes are non-empty");
            combine_nodes(
                &self.shapes,
                from,
                self.opts.bound - used,
                self.max_threads - chosen.len(),
                used,
                parent_bound,
                &mut chosen,
                &deadline,
                &mut sink,
                &mut nodes,
            );
        } else if parent_bound.is_some_and(|pb| used <= pb) {
            nodes.push(NodeSpan::Covered);
        } else {
            assign_and_emit(&self.shapes, &chosen, &mut sink);
            nodes.push(NodeSpan::Emitted {
                end: sink.out.len(),
            });
        }
        NodeStream {
            nodes,
            programs: sink.out,
        }
    }

    /// The number of recursion nodes of each partition whose cost fits
    /// `parent_bound` — the nodes [`EnumSpace::enumerate_nodes_within`]
    /// marks [`NodeSpan::Covered`]. A partition whose covered mass
    /// equals its [`EnumSpace::masses`] entry is *fully* covered at the
    /// parent bound: warm-start enumeration can skip it without even
    /// walking its recursion.
    pub fn covered_masses(&self, parent_bound: usize) -> Vec<u64> {
        let table = MassTable::new(&self.shapes, parent_bound, self.max_threads);
        self.partitions
            .iter()
            .map(|p| {
                let used: usize = p.prefix.iter().map(|&i| self.shapes[i].cost).sum();
                if used > parent_bound {
                    return 0;
                }
                if !p.subtree {
                    return 1;
                }
                let from = *p.prefix.last().expect("prefixes are non-empty");
                1u64.saturating_add(table.descendants(
                    from,
                    parent_bound - used,
                    self.max_threads.saturating_sub(p.prefix.len()),
                ))
            })
            .collect()
    }

    /// Total covered node count at `parent_bound`: the sum of
    /// [`EnumSpace::covered_masses`]. By node-order stability this
    /// equals the *parent* space's [`EnumSpace::total_mass`], whatever
    /// either space's partitioning — the cross-bound consistency check
    /// warm-start seeding validates against.
    pub fn covered_total(&self, parent_bound: usize) -> u64 {
        self.covered_masses(parent_bound)
            .iter()
            .fold(0u64, |a, &m| a.saturating_add(m))
    }

    /// A resumable iterator over the whole program space, one partition
    /// at a time — yields exactly the sequence of [`programs`] while
    /// keeping at most one partition's programs materialized.
    pub fn stream(&self) -> ProgramStream<'_> {
        ProgramStream {
            space: self,
            next_partition: 0,
            buffered: Vec::new().into_iter(),
            seen: BTreeSet::new(),
        }
    }
}

/// The streaming counterpart of [`programs`]: iterates the partitions
/// of an [`EnumSpace`] in order, carrying the cross-partition
/// first-occurrence dedup, so the yielded sequence is element-for-
/// element identical to the eager enumeration at any partition
/// granularity.
pub struct ProgramStream<'s> {
    space: &'s EnumSpace,
    next_partition: usize,
    buffered: std::vec::IntoIter<KeyedProgram>,
    seen: BTreeSet<Vec<u64>>,
}

impl Iterator for ProgramStream<'_> {
    type Item = Program;

    fn next(&mut self) -> Option<Program> {
        loop {
            if let Some(kp) = self.buffered.next() {
                if self.space.opts.symmetry_reduction {
                    let key = kp.key.expect("symmetry reduction keys every program");
                    if !self.seen.insert(key) {
                        continue; // first occurrence was in an earlier partition
                    }
                }
                return Some(kp.program);
            }
            if self.next_partition == self.space.partitions.len() {
                return None;
            }
            self.buffered = self.space.enumerate_keyed(self.next_partition).into_iter();
            self.next_partition += 1;
        }
    }
}

/// Resolves local VA numbers and PA symbols to global meanings, assigns
/// remaps, validates spurious INVLPGs, and emits canonical programs.
fn assign_and_emit(shapes: &[Shape], chosen: &[usize], sink: &mut EmitSink<'_>) {
    let opts = sink.opts;
    let ts: Vec<&Shape> = chosen.iter().map(|&i| &shapes[i]).collect();

    // Enumerate injective per-thread maps local VA → global VA with
    // canonical (first-use) numbering of fresh globals.
    let mut va_maps: Vec<Vec<Vec<usize>>> = vec![Vec::new()]; // per thread: map
    let mut globals_so_far = vec![0usize];
    for t in &ts {
        let mut next_maps = Vec::new();
        let mut next_globals = Vec::new();
        for (maps, &g) in va_maps.iter().zip(&globals_so_far) {
            // Build all injective maps of t.num_vas locals into globals,
            // where locals in order may reuse existing or take the next
            // fresh id.
            let mut stack: Vec<(Vec<usize>, usize)> = vec![(Vec::new(), g)];
            for _local in 0..t.num_vas {
                let mut grown = Vec::new();
                for (m, gg) in stack {
                    for cand in 0..=gg {
                        if m.contains(&cand) {
                            continue; // injective within the thread
                        }
                        let mut m2 = m.clone();
                        m2.push(cand);
                        grown.push((m2, gg.max(cand + 1)));
                    }
                }
                stack = grown;
            }
            for (m, gg) in stack {
                let mut full = maps.clone();
                full.push(m);
                next_maps.push(full);
                next_globals.push(gg);
            }
        }
        va_maps = next_maps;
        globals_so_far = next_globals;
    }

    for (vmap, &num_vas) in va_maps.iter().zip(&globals_so_far) {
        // Collect PA symbols in (thread, slot) order.
        let mut syms: Vec<(usize, usize)> = Vec::new(); // (thread, local sym)
        for (t, shape) in ts.iter().enumerate() {
            for op in &shape.ops {
                if let SlotOp::PteWrite {
                    pa: PaRef::Fresh(k),
                    ..
                } = op
                {
                    syms.push((t, *k));
                }
            }
        }
        // Each symbol maps to Initial(v) for v < num_vas or Fresh(j) with
        // first-use numbering.
        let mut assignments: Vec<Vec<PaRef>> = vec![Vec::new()];
        for _ in &syms {
            let mut grown = Vec::new();
            for a in &assignments {
                let fresh_used = a
                    .iter()
                    .filter_map(|p| match p {
                        PaRef::Fresh(j) => Some(*j + 1),
                        PaRef::Initial(_) => None,
                    })
                    .max()
                    .unwrap_or(0);
                for v in 0..num_vas {
                    let mut a2 = a.clone();
                    a2.push(PaRef::Initial(v));
                    grown.push(a2);
                }
                for j in 0..=fresh_used {
                    let mut a2 = a.clone();
                    a2.push(PaRef::Fresh(j));
                    grown.push(a2);
                }
            }
            assignments = grown;
        }

        for assignment in &assignments {
            // Materialize global threads.
            let mut threads: Vec<Vec<SlotOp>> = Vec::new();
            let mut sym_iter = assignment.iter();
            let mut ok = true;
            for (t, shape) in ts.iter().enumerate() {
                let mut row = Vec::new();
                for &op in &shape.ops {
                    let g = match op {
                        SlotOp::Read { va, walk } => SlotOp::Read {
                            va: vmap[t][va],
                            walk,
                        },
                        SlotOp::Write { va, walk } => SlotOp::Write {
                            va: vmap[t][va],
                            walk,
                        },
                        SlotOp::Fence => SlotOp::Fence,
                        SlotOp::TlbFlush => SlotOp::TlbFlush,
                        SlotOp::Invlpg { va } => SlotOp::Invlpg { va: vmap[t][va] },
                        SlotOp::PteWrite { va, .. } => {
                            let pa = *sym_iter.next().expect("one symbol per PTE write");
                            let va = vmap[t][va];
                            if !opts.allow_identity_remap && pa == PaRef::Initial(va) {
                                ok = false;
                            }
                            SlotOp::PteWrite { va, pa }
                        }
                    };
                    row.push(g);
                }
                threads.push(row);
            }
            if !ok {
                continue;
            }
            let rmw: Vec<(usize, usize)> = ts
                .iter()
                .enumerate()
                .flat_map(|(t, s)| s.rmw.iter().map(move |&slot| (t, slot)))
                .collect();

            for remap in remap_assignments(&threads) {
                let prog = Program {
                    threads: threads.clone(),
                    remap,
                    rmw: rmw.clone(),
                };
                if !spurious_invlpgs_useful(&prog) {
                    continue;
                }
                sink.emit(prog);
            }
        }
    }
}

/// One `(wpte, invlpg)` remap pair as `(thread, slot)` positions.
type RemapPair = ((usize, usize), (usize, usize));

/// All ways to give every PTE write exactly one same-VA `INVLPG` per core
/// (same-core one strictly later in po), each `INVLPG` serving at most one
/// PTE write.
fn remap_assignments(threads: &[Vec<SlotOp>]) -> Vec<Vec<RemapPair>> {
    let wptes: Vec<(usize, usize, usize)> = threads
        .iter()
        .enumerate()
        .flat_map(|(t, row)| {
            row.iter().enumerate().filter_map(move |(s, op)| match op {
                SlotOp::PteWrite { va, .. } => Some((t, s, *va)),
                _ => None,
            })
        })
        .collect();
    let invlpgs: Vec<(usize, usize, usize)> = threads
        .iter()
        .enumerate()
        .flat_map(|(t, row)| {
            row.iter().enumerate().filter_map(move |(s, op)| match op {
                SlotOp::Invlpg { va } => Some((t, s, *va)),
                _ => None,
            })
        })
        .collect();
    let num_threads = threads.len();
    let mut results = Vec::new();
    let mut partial: Vec<RemapPair> = Vec::new();
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        wptes: &[(usize, usize, usize)],
        invlpgs: &[(usize, usize, usize)],
        num_threads: usize,
        wi: usize,
        target_thread: usize,
        partial: &mut Vec<RemapPair>,
        used: &mut BTreeSet<(usize, usize)>,
        results: &mut Vec<Vec<RemapPair>>,
    ) {
        if wi == wptes.len() {
            results.push(partial.clone());
            return;
        }
        if target_thread == num_threads {
            recurse(
                wptes,
                invlpgs,
                num_threads,
                wi + 1,
                0,
                partial,
                used,
                results,
            );
            return;
        }
        let (wt, ws, wva) = wptes[wi];
        for &(it, is, iva) in invlpgs {
            if it != target_thread || iva != wva || used.contains(&(it, is)) {
                continue;
            }
            if it == wt && is <= ws {
                continue; // same-core INVLPG must follow the PTE write
            }
            used.insert((it, is));
            partial.push(((wt, ws), (it, is)));
            recurse(
                wptes,
                invlpgs,
                num_threads,
                wi,
                target_thread + 1,
                partial,
                used,
                results,
            );
            partial.pop();
            used.remove(&(it, is));
        }
    }

    recurse(
        &wptes,
        &invlpgs,
        num_threads,
        0,
        0,
        &mut partial,
        &mut used,
        &mut results,
    );
    results
}

/// Spurious (un-remapped) INVLPGs must be able to affect the execution: a
/// later same-VA access on the same core.
fn spurious_invlpgs_useful(p: &Program) -> bool {
    let remapped: BTreeSet<(usize, usize)> = p.remap.iter().map(|&(_, i)| i).collect();
    for (t, row) in p.threads.iter().enumerate() {
        for (s, op) in row.iter().enumerate() {
            let SlotOp::Invlpg { va } = op else { continue };
            if remapped.contains(&(t, s)) {
                continue;
            }
            let useful = row[s + 1..].iter().any(|later| {
                matches!(later, SlotOp::Read { va: v, .. } | SlotOp::Write { va: v, .. } if v == va)
            });
            if !useful {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_eta_projects_linearly_from_the_retired_rate() {
        use std::time::Duration;
        // Half the mass in 10 s → the other half in another 10 s.
        let eta = mass_eta(50, 100, Duration::from_secs(10)).expect("rate exists");
        assert!((eta.as_secs_f64() - 10.0).abs() < 1e-6, "{eta:?}");
        // No retired mass → no rate to project from; empty space likewise.
        assert_eq!(mass_eta(0, 100, Duration::from_secs(1)), None);
        assert_eq!(mass_eta(0, 0, Duration::from_secs(1)), None);
        // Fully retired → done, even if the clock reads zero.
        assert_eq!(mass_eta(100, 100, Duration::ZERO), Some(Duration::ZERO));
    }

    #[test]
    fn total_mass_sums_the_partition_masses() {
        let opts = EnumOptions::new(4);
        for space in [
            EnumSpace::with_target_partitions(&opts, 16),
            EnumSpace::balanced_for_target(&opts, 16),
        ] {
            let masses = space.masses();
            assert_eq!(masses.len(), space.partition_count());
            assert_eq!(space.total_mass(), masses.iter().sum::<u64>());
            assert!(space.total_mass() > 0);
        }
        // Splitting never changes the total mass, only its partitioning.
        let coarse = EnumSpace::new(&opts);
        let fine = EnumSpace::balanced_for_target(&opts, 64);
        assert_eq!(coarse.total_mass(), fine.total_mass());
    }

    #[test]
    fn skeletons_are_well_formed_program_shapes() {
        let opts = EnumOptions::new(4);
        let progs = programs(&opts);
        assert!(!progs.is_empty());
        for p in &progs {
            assert!(p.size() <= 4, "{p:?}");
            let skel = p.to_skeleton();
            // The skeleton may still need communication choices, but its
            // TLB structure must be sound.
            transform_core::derive::static_tlb_sources(&skel)
                .unwrap_or_else(|e| panic!("{p:?}: {e}"));
        }
    }

    #[test]
    fn smallest_read_program_exists() {
        let opts = EnumOptions::new(2);
        let progs = programs(&opts);
        // R x with its walk.
        assert!(progs
            .iter()
            .any(|p| { p.threads == vec![vec![SlotOp::Read { va: 0, walk: true }]] }));
        // No program exceeds the bound.
        assert!(progs.iter().all(|p| p.size() <= 2));
    }

    #[test]
    fn first_access_always_walks() {
        for p in programs(&EnumOptions::new(5)) {
            for row in &p.threads {
                let mut tlb = BTreeSet::new();
                for op in row {
                    match *op {
                        SlotOp::Read { va, walk } | SlotOp::Write { va, walk } => {
                            assert!(
                                walk || tlb.contains(&va),
                                "cold access without walk in {p:?}"
                            );
                            if walk {
                                tlb.insert(va);
                            }
                        }
                        SlotOp::Invlpg { va } => {
                            tlb.remove(&va);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn ptwalk2_shape_is_enumerated_at_bound_4() {
        // Fig. 10a: WPTE x→b; INVLPG x; R x (+walk) — 4 events.
        let opts = EnumOptions::new(4);
        let progs = programs(&opts);
        let found = progs.iter().any(|p| {
            p.threads.len() == 1
                && p.threads[0]
                    == vec![
                        SlotOp::PteWrite {
                            va: 0,
                            pa: PaRef::Fresh(0),
                        },
                        SlotOp::Invlpg { va: 0 },
                        SlotOp::Read { va: 0, walk: true },
                    ]
                && p.remap == vec![((0, 0), (0, 1))]
        });
        assert!(found, "ptwalk2 program missing from bound-4 enumeration");
    }

    #[test]
    fn pte_writes_are_fully_remapped() {
        // Every PTE write carries exactly one INVLPG per core.
        let opts = EnumOptions::new(4);
        for p in programs(&opts) {
            let wptes: Vec<(usize, usize)> = p
                .threads
                .iter()
                .enumerate()
                .flat_map(|(t, row)| {
                    row.iter().enumerate().filter_map(move |(s, op)| {
                        matches!(op, SlotOp::PteWrite { .. }).then_some((t, s))
                    })
                })
                .collect();
            for w in wptes {
                let covered: BTreeSet<usize> = p
                    .remap
                    .iter()
                    .filter(|&&(wp, _)| wp == w)
                    .map(|&(_, (it, _))| it)
                    .collect();
                assert_eq!(covered.len(), p.threads.len(), "{p:?}");
            }
        }
    }

    #[test]
    fn symmetry_reduction_shrinks_the_set() {
        let mut with = EnumOptions::new(4);
        with.allow_fences = false;
        with.allow_rmw = false;
        let mut without = with.clone();
        without.symmetry_reduction = false;
        let n_with = programs(&with).len();
        let n_without = programs(&without).len();
        assert!(n_with <= n_without);
        assert!(n_with > 0);
    }

    #[test]
    fn stream_matches_eager_enumeration_at_any_partition_target() {
        for bound in [2usize, 3, 4] {
            for (fences, rmw) in [(false, false), (true, true)] {
                for symmetry in [true, false] {
                    let mut opts = EnumOptions::new(bound);
                    opts.allow_fences = fences;
                    opts.allow_rmw = rmw;
                    opts.symmetry_reduction = symmetry;
                    let eager = programs(&opts);
                    for target in [0usize, 1, 7, 1000] {
                        let space = EnumSpace::with_target_partitions(&opts, target);
                        let streamed: Vec<Program> = space.stream().collect();
                        assert_eq!(
                            eager, streamed,
                            "bound {bound} fences {fences} rmw {rmw} \
                             symmetry {symmetry} target {target}"
                        );
                    }
                }
            }
        }
    }

    /// Brute-force node count of the shape-combination recursion:
    /// every non-empty chosen multiset is one node, exactly what
    /// `MassTable` claims to count in O(1).
    fn count_nodes(shapes: &[Shape], from: usize, budget: usize, threads: usize) -> u64 {
        if threads == 0 {
            return 0;
        }
        let mut total = 0u64;
        for (j, shape) in shapes.iter().enumerate().skip(from) {
            if shape.cost > budget {
                break; // sorted by cost
            }
            total += 1 + count_nodes(shapes, j, budget - shape.cost, threads - 1);
        }
        total
    }

    #[test]
    fn mass_table_counts_the_recursion_exactly() {
        for bound in [2usize, 3, 4, 5] {
            for (fences, rmw) in [(false, false), (true, true)] {
                let mut opts = EnumOptions::new(bound);
                opts.allow_fences = fences;
                opts.allow_rmw = rmw;
                let mut all = shapes(bound, &opts);
                all.sort_by_key(|s| s.cost);
                let table = MassTable::new(&all, bound, bound);
                for from in [0usize, all.len() / 2, all.len()] {
                    for threads in 1..=bound {
                        assert_eq!(
                            table.descendants(from, bound, threads),
                            count_nodes(&all, from, bound, threads),
                            "bound {bound} fences {fences} rmw {rmw} \
                             from {from} threads {threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn balanced_stream_matches_eager_enumeration_at_any_mass_target() {
        for bound in [3usize, 4] {
            for symmetry in [true, false] {
                let mut opts = EnumOptions::new(bound);
                opts.allow_fences = true;
                opts.allow_rmw = true;
                opts.symmetry_reduction = symmetry;
                let eager = programs(&opts);
                for target_mass in [0u64, 1, 5, 50, u64::MAX] {
                    let space = EnumSpace::balanced(&opts, target_mass);
                    let streamed: Vec<Program> = space.stream().collect();
                    assert_eq!(
                        eager, streamed,
                        "bound {bound} symmetry {symmetry} target_mass {target_mass}"
                    );
                }
                for target in [0usize, 1, 7, 64] {
                    let space = EnumSpace::balanced_for_target(&opts, target);
                    let streamed: Vec<Program> = space.stream().collect();
                    assert_eq!(
                        eager, streamed,
                        "bound {bound} symmetry {symmetry} target {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn balanced_partitions_respect_the_mass_target() {
        let mut opts = EnumOptions::new(4);
        opts.allow_fences = true;
        opts.allow_rmw = true;
        for target_mass in [1u64, 3, 10, 100] {
            let space = EnumSpace::balanced(&opts, target_mass);
            let masses = space.masses();
            assert_eq!(masses.len(), space.partition_count());
            assert!(
                masses.iter().all(|&m| m <= target_mass),
                "target {target_mass}: masses {masses:?}"
            );
            // Splitting conserves total mass: same recursion, different
            // work-unit boundaries.
            let whole: u64 = EnumSpace::balanced(&opts, u64::MAX).masses().iter().sum();
            assert_eq!(masses.iter().sum::<u64>(), whole);
        }
    }

    #[test]
    fn balanced_split_is_less_lopsided_than_depth_split() {
        // The tentpole claim, at a measurable scale: for the same
        // partition-count target, the heaviest mass-balanced partition
        // carries no more work than the heaviest depth-split one.
        let mut opts = EnumOptions::new(5);
        opts.allow_fences = true;
        opts.allow_rmw = true;
        let target = 64;
        let depth = EnumSpace::with_target_partitions(&opts, target);
        let mass = EnumSpace::balanced_for_target(&opts, target);
        let max_depth = depth.masses().into_iter().max().unwrap_or(0);
        let max_mass = mass.masses().into_iter().max().unwrap_or(0);
        assert!(
            max_mass <= max_depth,
            "mass split's heaviest partition ({max_mass}) exceeds depth split's ({max_depth})"
        );
    }

    #[test]
    fn partition_target_grows_the_partition_count() {
        let opts = EnumOptions::new(4);
        let shallow = EnumSpace::new(&opts);
        let deep = EnumSpace::with_target_partitions(&opts, shallow.partition_count() * 4);
        assert!(deep.partition_count() > shallow.partition_count());
        // Split partitions stay prefix-labelled and non-empty overall.
        let total: usize = (0..deep.partition_count())
            .map(|p| deep.enumerate_keyed(p).len())
            .sum();
        assert!(total >= programs(&opts).len());
    }

    #[test]
    fn keyed_enumeration_keys_every_write_bearing_program() {
        let mut opts = EnumOptions::new(4);
        opts.symmetry_reduction = false; // keys still required for planning
        let space = EnumSpace::new(&opts);
        for p in 0..space.partition_count() {
            for kp in space.enumerate_keyed(p) {
                assert_eq!(kp.has_write, kp.program.has_write());
                if kp.has_write {
                    assert_eq!(
                        kp.key.as_deref(),
                        Some(canonical_key(&kp.program).as_slice())
                    );
                } else {
                    assert!(kp.key.is_none());
                }
            }
        }
    }

    #[test]
    fn max_threads_zero_enumerates_nothing() {
        let mut opts = EnumOptions::new(4);
        opts.max_threads = Some(0);
        assert!(programs(&opts).is_empty());
        let space = EnumSpace::with_target_partitions(&opts, 16);
        assert_eq!(space.partition_count(), 0);
        assert_eq!(space.stream().count(), 0);
    }

    #[test]
    fn node_streams_match_keyed_enumeration() {
        let mut opts = EnumOptions::new(4);
        opts.allow_fences = true;
        opts.allow_rmw = true;
        for target in [1usize, 16, 200] {
            for space in [
                EnumSpace::balanced_for_target(&opts, target),
                EnumSpace::with_target_partitions(&opts, target),
            ] {
                let masses = space.masses();
                for (o, &mass) in masses.iter().enumerate() {
                    let ns = space.enumerate_nodes_within(o, None, None);
                    // Same programs in the same order as the keyed path.
                    let keyed = space.enumerate_keyed(o);
                    assert_eq!(ns.programs.len(), keyed.len());
                    for (a, b) in ns.programs.iter().zip(&keyed) {
                        assert_eq!(a.program, b.program, "partition {o}");
                    }
                    // One node per unit of the partition's mass, ends
                    // monotone and exhaustive.
                    assert_eq!(ns.nodes.len() as u64, mass, "partition {o}");
                    let mut prev = 0;
                    for n in &ns.nodes {
                        let NodeSpan::Emitted { end } = *n else {
                            panic!("no parent bound, so no covered nodes");
                        };
                        assert!(end >= prev);
                        prev = end;
                    }
                    assert_eq!(prev, ns.programs.len());
                }
            }
        }
    }

    #[test]
    fn covered_total_equals_the_parent_spaces_mass() {
        for bound in [3usize, 4, 5] {
            let mut opts = EnumOptions::new(bound);
            opts.allow_fences = true;
            opts.allow_rmw = true;
            let mut popts = opts.clone();
            popts.bound = bound - 1;
            let parent = EnumSpace::new(&popts);
            for target in [1usize, 16] {
                let child = EnumSpace::balanced_for_target(&opts, target);
                assert_eq!(
                    child.covered_total(bound - 1),
                    parent.total_mass(),
                    "bound {bound} target {target}"
                );
            }
        }
    }

    #[test]
    fn warm_node_streams_splice_into_the_cold_enumeration() {
        // The warm-start theorem, pinned at the synth layer: walking a
        // child space with the parent bound's nodes skipped, then
        // splicing the parent's (globally deduped) per-node programs
        // into the Covered slots, reproduces the cold child enumeration
        // element for element — across *different* partitionings of
        // parent and child.
        for (bound, fences, rmw) in [(3usize, false, false), (4, true, true), (4, false, true)] {
            let parent_bound = bound - 1;
            let mut opts = EnumOptions::new(bound);
            opts.allow_fences = fences;
            opts.allow_rmw = rmw;
            let mut popts = opts.clone();
            popts.bound = parent_bound;

            // Parent admitted programs, grouped per recursion node.
            let pspace = EnumSpace::balanced_for_target(&popts, 7);
            let mut parent_nodes: Vec<Vec<Program>> = Vec::new();
            let mut seen = BTreeSet::new();
            for o in 0..pspace.partition_count() {
                let ns = pspace.enumerate_nodes_within(o, None, None);
                let mut start = 0;
                for n in &ns.nodes {
                    let NodeSpan::Emitted { end } = *n else {
                        panic!("no parent bound, so no covered nodes");
                    };
                    let admitted = ns.programs[start..end]
                        .iter()
                        .filter(|kp| {
                            let key = kp.key.clone().expect("symmetry keys every program");
                            seen.insert(key)
                        })
                        .map(|kp| kp.program.clone())
                        .collect();
                    parent_nodes.push(admitted);
                    start = end;
                }
            }

            let cspace = EnumSpace::balanced_for_target(&opts, 13);
            let covered = cspace.covered_masses(parent_bound);
            let mut warm_admitted: Vec<Program> = Vec::new();
            let mut seen = BTreeSet::new();
            let mut pcursor = 0usize;
            for (o, &cov) in covered.iter().enumerate() {
                let ns = cspace.enumerate_nodes_within(o, Some(parent_bound), None);
                let marked = ns
                    .nodes
                    .iter()
                    .filter(|n| matches!(n, NodeSpan::Covered))
                    .count() as u64;
                assert_eq!(marked, cov, "partition {o}");
                let mut start = 0;
                for n in &ns.nodes {
                    match *n {
                        NodeSpan::Covered => {
                            for p in &parent_nodes[pcursor] {
                                // Canonical keys preserve program size, so a
                                // parent-admitted program is a global first
                                // occurrence in the child stream too.
                                assert!(seen.insert(canonical_key(p)), "{p:?}");
                                warm_admitted.push(p.clone());
                            }
                            pcursor += 1;
                        }
                        NodeSpan::Emitted { end } => {
                            for kp in &ns.programs[start..end] {
                                let key = kp.key.clone().expect("symmetry keys every program");
                                if seen.insert(key) {
                                    warm_admitted.push(kp.program.clone());
                                }
                            }
                            start = end;
                        }
                    }
                }
            }
            assert_eq!(pcursor, parent_nodes.len(), "every parent node spliced");
            let cold = programs(&opts);
            assert_eq!(
                warm_admitted, cold,
                "bound {bound} fences {fences} rmw {rmw}"
            );
        }
    }

    #[test]
    fn fences_never_dangle() {
        for p in programs(&EnumOptions::new(4)) {
            for row in &p.threads {
                if let Some(SlotOp::Fence) = row.last() {
                    panic!("trailing fence in {p:?}");
                }
                if let Some(SlotOp::Fence) = row.first() {
                    panic!("leading fence in {p:?}");
                }
            }
        }
    }
}
