//! Canonical forms for ELT programs — the deduplication stage of Fig. 7.
//!
//! Two synthesized programs are duplicates when they differ only by a
//! renaming of threads, VAs, or physical pages. The canonical key is the
//! lexicographically least encoding over all thread permutations, with VAs
//! and fresh pages renumbered by first use under each permutation.

use crate::programs::{PaRef, Program, SlotOp};
use std::collections::BTreeMap;

/// The canonical key of a program. Equal keys ⇔ isomorphic programs.
pub fn canonical_key(p: &Program) -> Vec<u64> {
    let t = p.threads.len();
    let mut best: Option<Vec<u64>> = None;
    let mut perm: Vec<usize> = (0..t).collect();
    permute(&mut perm, 0, &mut |perm| {
        let enc = encode(p, perm);
        if best.as_ref().is_none_or(|b| &enc < b) {
            best = Some(enc);
        }
    });
    best.unwrap_or_default()
}

/// `true` when two programs are isomorphic.
pub fn isomorphic(a: &Program, b: &Program) -> bool {
    canonical_key(a) == canonical_key(b)
}

fn permute(perm: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        f(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, f);
        perm.swap(k, i);
    }
}

fn encode(p: &Program, perm: &[usize]) -> Vec<u64> {
    // First-use renaming of VAs (counting PA aliases as uses) and fresh
    // pages, scanning threads in permuted order.
    let mut va_map: BTreeMap<usize, u64> = BTreeMap::new();
    let mut fresh_map: BTreeMap<usize, u64> = BTreeMap::new();
    let touch_va = |m: &mut BTreeMap<usize, u64>, v: usize| {
        let next = m.len() as u64;
        *m.entry(v).or_insert(next)
    };
    let mut out = Vec::new();
    for &ot in perm {
        out.push(u64::MAX); // thread separator
        for op in &p.threads[ot] {
            match *op {
                SlotOp::Read { va, walk } => {
                    let v = touch_va(&mut va_map, va);
                    out.extend([1, v, u64::from(walk)]);
                }
                SlotOp::Write { va, walk } => {
                    let v = touch_va(&mut va_map, va);
                    out.extend([2, v, u64::from(walk)]);
                }
                SlotOp::Fence => out.extend([3, 0, 0]),
                SlotOp::TlbFlush => out.extend([6, 0, 0]),
                SlotOp::Invlpg { va } => {
                    let v = touch_va(&mut va_map, va);
                    out.extend([4, v, 0]);
                }
                SlotOp::PteWrite { va, pa } => {
                    let v = touch_va(&mut va_map, va);
                    let pa_code = match pa {
                        PaRef::Initial(w) => 1000 + touch_va(&mut va_map, w),
                        PaRef::Fresh(k) => {
                            let next = fresh_map.len() as u64;
                            2000 + *fresh_map.entry(k).or_insert(next)
                        }
                    };
                    out.extend([5, v, pa_code]);
                }
            }
        }
    }
    // Positions under the permutation: old thread index → new.
    let mut new_of_old = vec![0usize; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        new_of_old[old] = new;
    }
    let mut remap: Vec<[u64; 4]> = p
        .remap
        .iter()
        .map(|&((wt, ws), (it, is))| {
            [
                new_of_old[wt] as u64,
                ws as u64,
                new_of_old[it] as u64,
                is as u64,
            ]
        })
        .collect();
    remap.sort_unstable();
    out.push(u64::MAX - 1);
    out.extend(remap.into_iter().flatten());
    let mut rmw: Vec<[u64; 2]> = p
        .rmw
        .iter()
        .map(|&(t, s)| [new_of_old[t] as u64, s as u64])
        .collect();
    rmw.sort_unstable();
    out.push(u64::MAX - 2);
    out.extend(rmw.into_iter().flatten());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(threads: Vec<Vec<SlotOp>>) -> Program {
        Program {
            threads,
            remap: vec![],
            rmw: vec![],
        }
    }

    #[test]
    fn thread_order_is_canonicalized() {
        let a = prog(vec![
            vec![SlotOp::Read { va: 0, walk: true }],
            vec![SlotOp::Write { va: 0, walk: true }],
        ]);
        let b = prog(vec![
            vec![SlotOp::Write { va: 0, walk: true }],
            vec![SlotOp::Read { va: 0, walk: true }],
        ]);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn va_names_are_canonicalized() {
        let a = prog(vec![vec![
            SlotOp::Read { va: 0, walk: true },
            SlotOp::Read { va: 1, walk: true },
        ]]);
        let b = prog(vec![vec![
            SlotOp::Read { va: 1, walk: true },
            SlotOp::Read { va: 0, walk: true },
        ]]);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn walks_distinguish_programs() {
        let a = prog(vec![vec![
            SlotOp::Read { va: 0, walk: true },
            SlotOp::Read { va: 0, walk: true },
        ]]);
        let b = prog(vec![vec![
            SlotOp::Read { va: 0, walk: true },
            SlotOp::Read { va: 0, walk: false },
        ]]);
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn alias_structure_is_preserved() {
        // Remap y to x's page vs remap y to a fresh page: different.
        let alias = prog(vec![vec![
            SlotOp::Read { va: 0, walk: true },
            SlotOp::PteWrite {
                va: 1,
                pa: PaRef::Initial(0),
            },
        ]]);
        let fresh = prog(vec![vec![
            SlotOp::Read { va: 0, walk: true },
            SlotOp::PteWrite {
                va: 1,
                pa: PaRef::Fresh(0),
            },
        ]]);
        assert!(!isomorphic(&alias, &fresh));
    }

    #[test]
    fn remap_assignment_distinguishes() {
        let base = vec![vec![
            SlotOp::PteWrite {
                va: 0,
                pa: PaRef::Fresh(0),
            },
            SlotOp::Invlpg { va: 0 },
            SlotOp::Invlpg { va: 0 },
            SlotOp::Read { va: 0, walk: true },
        ]];
        let a = Program {
            threads: base.clone(),
            remap: vec![((0, 0), (0, 1))],
            rmw: vec![],
        };
        let b = Program {
            threads: base,
            remap: vec![((0, 0), (0, 2))],
            rmw: vec![],
        };
        assert!(!isomorphic(&a, &b));
    }
}
