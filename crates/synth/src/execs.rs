//! Candidate-execution enumeration for a fixed program skeleton.
//!
//! Given a program (events, ghosts, po, remap, rmw), the remaining degrees
//! of freedom of a candidate execution are the communication choices:
//!
//! * which PTE-location write (or the initial PTE) each PT walk reads,
//! * which same-PA user write (or the initial value) each user read reads,
//! * the coherence order per physical location, and
//! * optionally the alias-creation order `co_pa` — enumerated only when
//!   the MTM's axioms can observe it (relation-aware branching).
//!
//! Every emitted execution is well-formed by construction; mapping
//! provenance is resolved eagerly so that data `rf` candidates respect
//! effective (post-remap) physical addresses.

use std::collections::BTreeMap;
use transform_core::derive::static_tlb_sources;
use transform_core::event::EventKind;
use transform_core::exec::{Execution, PairSet};
use transform_core::ids::{EventId, Pa};

/// Enumerates every candidate execution of `skeleton`.
///
/// `branch_co_pa` additionally enumerates all alias-creation orders; when
/// `false`, executions carry the deterministic default order.
pub fn executions(skeleton: &Execution, branch_co_pa: bool) -> Vec<Execution> {
    let Ok(tlb_src) = static_tlb_sources(skeleton) else {
        return Vec::new();
    };
    let events = skeleton.events();

    // PTE-read choices per walk: initial, or any same-PTE-location write.
    let ptws: Vec<EventId> = events
        .iter()
        .filter(|e| e.kind == EventKind::Ptw)
        .map(|e| e.id)
        .collect();
    let pte_choices: Vec<Vec<Option<EventId>>> = ptws
        .iter()
        .map(|&p| {
            let va = events[p.index()].va;
            let mut cs: Vec<Option<EventId>> = vec![None];
            cs.extend(
                events
                    .iter()
                    .filter(|w| {
                        w.va == va
                            && matches!(
                                w.kind,
                                EventKind::PteWrite { .. } | EventKind::DirtyBitWrite
                            )
                    })
                    .map(|w| Some(w.id)),
            );
            cs
        })
        .collect();

    let mut out = Vec::new();
    let mut pte_pick = vec![0usize; ptws.len()];
    loop {
        let pte_rf: BTreeMap<EventId, EventId> = ptws
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| pte_choices[i][pte_pick[i]].map(|w| (p, w)))
            .collect();

        if let Some(pa_of) = resolve_pas(skeleton, &tlb_src, &pte_rf) {
            enumerate_data(skeleton, &pte_rf, &pa_of, branch_co_pa, &mut out);
        }

        // Odometer.
        let mut i = ptws.len();
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            pte_pick[i] += 1;
            if pte_pick[i] < pte_choices[i].len() {
                break;
            }
            pte_pick[i] = 0;
        }
    }
}

/// Resolves the effective PA of every memory event under the given
/// PTE-read choices; `None` when the provenance is circular.
fn resolve_pas(
    x: &Execution,
    tlb_src: &[Option<EventId>],
    pte_rf: &BTreeMap<EventId, EventId>,
) -> Option<Vec<Option<Pa>>> {
    let n = x.events().len();
    let mut pa: Vec<Option<Pa>> = vec![None; n];
    let mut state = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black

    fn go(
        x: &Execution,
        tlb_src: &[Option<EventId>],
        pte_rf: &BTreeMap<EventId, EventId>,
        pa: &mut Vec<Option<Pa>>,
        state: &mut Vec<u8>,
        e: EventId,
    ) -> Option<()> {
        match state[e.index()] {
            2 => return Some(()),
            1 => return None, // cycle
            _ => {}
        }
        state[e.index()] = 1;
        let ev = x.event(e);
        let value = match ev.kind {
            EventKind::PteWrite { new_pa } => Some(new_pa),
            EventKind::Ptw => match pte_rf.get(&e) {
                None => Some(x.initial_pa(ev.va_unwrap())),
                Some(&w) => {
                    go(x, tlb_src, pte_rf, pa, state, w)?;
                    pa[w.index()]
                }
            },
            EventKind::Read | EventKind::Write => {
                let p = tlb_src[e.index()].expect("user access has a walk source");
                go(x, tlb_src, pte_rf, pa, state, p)?;
                pa[p.index()]
            }
            EventKind::DirtyBitWrite => {
                let inv = x.invoker(e).expect("ghost has invoker");
                go(x, tlb_src, pte_rf, pa, state, inv)?;
                pa[inv.index()]
            }
            EventKind::Fence | EventKind::Invlpg | EventKind::TlbFlush => None,
        };
        pa[e.index()] = value;
        state[e.index()] = 2;
        Some(())
    }

    for e in x.events() {
        go(x, tlb_src, pte_rf, &mut pa, &mut state, e.id)?;
    }
    Some(pa)
}

/// Enumerates data `rf`, coherence orders, and (optionally) `co_pa` on top
/// of one PTE-read choice.
fn enumerate_data(
    x: &Execution,
    pte_rf: &BTreeMap<EventId, EventId>,
    pa_of: &[Option<Pa>],
    branch_co_pa: bool,
    out: &mut Vec<Execution>,
) {
    let events = x.events();

    // Data read choices.
    let reads: Vec<EventId> = events
        .iter()
        .filter(|e| e.kind == EventKind::Read)
        .map(|e| e.id)
        .collect();
    let read_choices: Vec<Vec<Option<EventId>>> = reads
        .iter()
        .map(|&r| {
            let mut cs: Vec<Option<EventId>> = vec![None];
            cs.extend(
                events
                    .iter()
                    .filter(|w| {
                        w.kind == EventKind::Write && pa_of[w.id.index()] == pa_of[r.index()]
                    })
                    .map(|w| Some(w.id)),
            );
            cs
        })
        .collect();

    // Coherence groups: data writes per PA; PTE-location writes per VA.
    let mut groups: Vec<Vec<EventId>> = Vec::new();
    let mut by_pa: BTreeMap<Pa, Vec<EventId>> = BTreeMap::new();
    let mut by_pte: BTreeMap<usize, Vec<EventId>> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::Write => by_pa
                .entry(pa_of[e.id.index()].expect("write has a PA"))
                .or_default()
                .push(e.id),
            EventKind::PteWrite { .. } | EventKind::DirtyBitWrite => {
                by_pte.entry(e.va_unwrap().0).or_default().push(e.id)
            }
            _ => {}
        }
    }
    groups.extend(by_pa.into_values().filter(|g| g.len() > 1));
    groups.extend(by_pte.into_values().filter(|g| g.len() > 1));
    let group_orders: Vec<Vec<Vec<EventId>>> = groups.iter().map(|g| permutations(g)).collect();

    // co_pa groups: PTE writes per target PA.
    let co_pa_orders: Vec<Vec<Vec<EventId>>> = if branch_co_pa {
        let mut by_target: BTreeMap<Pa, Vec<EventId>> = BTreeMap::new();
        for e in events {
            if let EventKind::PteWrite { new_pa } = e.kind {
                by_target.entry(new_pa).or_default().push(e.id);
            }
        }
        by_target
            .into_values()
            .filter(|g| g.len() > 1)
            .map(|g| permutations(&g))
            .collect()
    } else {
        Vec::new()
    };

    // Odometer over read choices × group orders × co_pa orders.
    let dims: Vec<usize> = read_choices
        .iter()
        .map(Vec::len)
        .chain(group_orders.iter().map(Vec::len))
        .chain(co_pa_orders.iter().map(Vec::len))
        .collect();
    let mut pick = vec![0usize; dims.len()];
    loop {
        let mut parts = x.to_parts();
        parts.rf = pte_rf.iter().map(|(&r, &w)| (r, w)).collect();
        for (i, &r) in reads.iter().enumerate() {
            if let Some(w) = read_choices[i][pick[i]] {
                parts.rf.insert(r, w);
            }
        }
        let mut co = PairSet::new();
        for (gi, orders) in group_orders.iter().enumerate() {
            let order = &orders[pick[reads.len() + gi]];
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    co.insert((order[i], order[j]));
                }
            }
        }
        parts.co = co;
        if branch_co_pa && !co_pa_orders.is_empty() {
            let mut co_pa = PairSet::new();
            for (gi, orders) in co_pa_orders.iter().enumerate() {
                let order = &orders[pick[reads.len() + group_orders.len() + gi]];
                for i in 0..order.len() {
                    for j in (i + 1)..order.len() {
                        co_pa.insert((order[i], order[j]));
                    }
                }
            }
            parts.co_pa = Some(co_pa);
        }
        out.push(Execution::from_parts(parts));

        let mut i = dims.len();
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            pick[i] += 1;
            if pick[i] < dims[i] {
                break;
            }
            pick[i] = 0;
        }
        if dims.is_empty() {
            return;
        }
    }
}

fn permutations(items: &[EventId]) -> Vec<Vec<EventId>> {
    let mut out = Vec::new();
    let mut v = items.to_vec();
    fn go(v: &mut Vec<EventId>, k: usize, out: &mut Vec<Vec<EventId>>) {
        if k == v.len() {
            out.push(v.clone());
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            go(v, k + 1, out);
            v.swap(k, i);
        }
    }
    go(&mut v, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::exec::EltBuilder;
    use transform_core::ids::{Pa, Va};

    /// W x; R x on one thread: R reads W or the initial value.
    #[test]
    fn single_location_read_choices() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.write_walk(t, Va(0));
        b.read(t, Va(0));
        let skel = b.build();
        let execs = executions(&skel, false);
        assert_eq!(execs.len(), 2);
        for x in &execs {
            assert!(x.is_well_formed(), "{:?}", x.analyze().err());
        }
    }

    /// Two same-location writes: 2 coherence orders × 1 = 2 executions.
    #[test]
    fn coherence_orders_enumerated() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.write_walk(t, Va(0));
        b.write(t, Va(0));
        let skel = b.build();
        // co over {W0, W1} and over the two dirty-bit writes: 2 × 2.
        let execs = executions(&skel, false);
        assert_eq!(execs.len(), 4);
        for x in &execs {
            assert!(x.is_well_formed());
        }
    }

    /// A remap gives the walk two PTE sources (initial or the PTE write),
    /// changing which PA the read returns.
    #[test]
    fn walk_sources_switch_effective_pa() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let w = b.pte_write(t, Va(0), Pa(1));
        let i = b.invlpg(t, Va(0));
        b.remap(w, i);
        b.read_walk(t, Va(0));
        let skel = b.build();
        let execs = executions(&skel, false);
        // The walk reads initial (stale, the Fig. 10a outcome) or the PTE
        // write (fresh): 2 executions.
        assert_eq!(execs.len(), 2);
        let analyses: Vec<_> = execs.iter().map(|x| x.analyze().expect("wf")).collect();
        let pas: Vec<_> = analyses.iter().map(|a| a.location(EventId(2))).collect();
        assert_ne!(pas[0], pas[1]);
    }

    /// co_pa branching multiplies executions only when requested.
    #[test]
    fn co_pa_branching_is_optional() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let w1 = b.pte_write(t, Va(0), Pa(2));
        let i1 = b.invlpg(t, Va(0));
        b.remap(w1, i1);
        let w2 = b.pte_write(t, Va(1), Pa(2));
        let i2 = b.invlpg(t, Va(1));
        b.remap(w2, i2);
        let skel = b.build();
        let without = executions(&skel, false).len();
        let with = executions(&skel, true).len();
        assert_eq!(with, 2 * without);
    }

    #[test]
    fn all_enumerated_executions_are_well_formed() {
        // The Fig. 6 program shape.
        let skel = transform_core::figures::fig6_remap_disambiguated();
        let mut parts = skel.to_parts();
        parts.rf.clear();
        parts.co.clear();
        let skel = Execution::from_parts(parts);
        let execs = executions(&skel, false);
        assert!(!execs.is_empty());
        for x in &execs {
            assert!(x.is_well_formed(), "{:?}", x.analyze().err());
        }
    }
}
