//! The relational (SAT-backed) candidate-execution generator.
//!
//! This backend mirrors the paper's implementation strategy: the MTM
//! vocabulary is encoded in bounded relational logic (the `relational`
//! crate playing Kodkod's role, `tsat` playing MiniSat's), the
//! communication relations (`rf`, `co`, optionally `co_pa`) are declared
//! as free relations with tuple-set bounds, well-formedness becomes
//! relational constraints, and "the outcome violates axiom A" becomes a
//! negated acyclicity/emptiness formula. Each SAT model is one candidate
//! execution.
//!
//! Address-mapping provenance is encoded relationally: a walk's loaded
//! mapping is the transitive chain through `rf_pte` and the static
//! dirty-bit-to-walk edges, terminating at a PTE write (or at the initial
//! mapping when the chain never meets one).

use relational::{Expr, Formula, Instance, Problem, RelId, Session, TupleSet, Universe};
use std::collections::BTreeMap;
use transform_core::axiom::{Axiom, Mtm, RelExpr};
use transform_core::derive::{static_tlb_sources, BaseRel};
use transform_core::event::EventKind;
use transform_core::exec::{Execution, PairSet};
use transform_core::ids::EventId;

/// Enumerates candidate executions of `skeleton` whose outcome violates
/// `axiom`, via relational model finding. Returns at most `limit`.
pub fn violating_executions(
    skeleton: &Execution,
    mtm: &Mtm,
    axiom: &str,
    branch_co_pa: bool,
    limit: usize,
) -> Vec<Execution> {
    let Some(named) = mtm.axiom(axiom) else {
        return Vec::new();
    };
    generate(skeleton, Some(&named.axiom), branch_co_pa, limit)
}

/// Enumerates every well-formed candidate execution of `skeleton` via
/// relational model finding (no violation constraint) — used to cross-check
/// the explicit enumerator.
pub fn all_executions(skeleton: &Execution, branch_co_pa: bool) -> Vec<Execution> {
    generate(skeleton, None, branch_co_pa, usize::MAX)
}

struct Encoding {
    problem: Problem,
    rf_data: RelId,
    rf_pte: RelId,
    co: RelId,
    co_pa: Option<RelId>,
}

fn generate(
    skeleton: &Execution,
    violate: Option<&Axiom>,
    branch_co_pa: bool,
    limit: usize,
) -> Vec<Execution> {
    let Some(enc) = encode(skeleton, violate, branch_co_pa) else {
        return Vec::new();
    };
    enc.problem
        .solutions()
        .take(limit)
        .map(|inst| decode(skeleton, &enc, &inst))
        .collect()
}

/// Reads one SAT model back into a candidate execution.
fn decode(skeleton: &Execution, enc: &Encoding, inst: &Instance) -> Execution {
    let mut parts = skeleton.to_parts();
    parts.rf = BTreeMap::new();
    for (w, r) in inst.pairs(enc.rf_data) {
        parts.rf.insert(EventId(r as u32), EventId(w as u32));
    }
    for (w, r) in inst.pairs(enc.rf_pte) {
        parts.rf.insert(EventId(r as u32), EventId(w as u32));
    }
    parts.co = inst
        .pairs(enc.co)
        .into_iter()
        .map(|(a, b)| (EventId(a as u32), EventId(b as u32)))
        .collect();
    parts.co_pa = enc.co_pa.map(|r| {
        inst.pairs(r)
            .into_iter()
            .map(|(a, b)| (EventId(a as u32), EventId(b as u32)))
            .collect::<PairSet>()
    });
    Execution::from_parts(parts)
}

/// A shard-scoped incremental generator: one SAT solver serving every
/// program of a shard.
///
/// The free functions above rebuild a solver (and its CNF) per skeleton —
/// the architecture of the paper's batch pipeline, where every candidate
/// pays full translation and search from scratch. A `ShardGen` instead
/// keeps a [`relational::Session`] alive across calls: each skeleton's
/// constraints live under an activation literal, and the CDCL core
/// retains learnt clauses, variable activities, and saved phases between
/// skeletons. Within a shard of structurally similar programs (see
/// `transform-par`'s prefix sharding) that knowledge transfers, making
/// the relational backend profitable per shard instead of per call.
pub struct ShardGen {
    session: Session,
}

impl ShardGen {
    /// Creates a generator with a fresh shared solver.
    pub fn new() -> ShardGen {
        ShardGen {
            session: Session::new(),
        }
    }

    /// Incremental equivalent of [`violating_executions`].
    pub fn violating_executions(
        &mut self,
        skeleton: &Execution,
        mtm: &Mtm,
        axiom: &str,
        branch_co_pa: bool,
        limit: usize,
    ) -> Vec<Execution> {
        let Some(named) = mtm.axiom(axiom) else {
            return Vec::new();
        };
        self.generate(skeleton, Some(&named.axiom), branch_co_pa, limit)
    }

    /// Incremental equivalent of [`all_executions`].
    pub fn all_executions(&mut self, skeleton: &Execution, branch_co_pa: bool) -> Vec<Execution> {
        self.generate(skeleton, None, branch_co_pa, usize::MAX)
    }

    fn generate(
        &mut self,
        skeleton: &Execution,
        violate: Option<&Axiom>,
        branch_co_pa: bool,
        limit: usize,
    ) -> Vec<Execution> {
        let Some(enc) = encode(skeleton, violate, branch_co_pa) else {
            return Vec::new();
        };
        self.session
            .solve_all(&enc.problem, limit)
            .iter()
            .map(|inst| decode(skeleton, &enc, inst))
            .collect()
    }

    /// The number of skeletons solved on this shard's solver.
    pub fn problems_solved(&self) -> usize {
        self.session.problems_solved()
    }

    /// Cumulative SAT statistics for the shard's solver.
    pub fn solver_stats(&self) -> tsat::SolverStats {
        self.session.solver_stats()
    }
}

impl Default for ShardGen {
    fn default() -> ShardGen {
        ShardGen::new()
    }
}

#[allow(clippy::too_many_lines)]
fn encode(skeleton: &Execution, violate: Option<&Axiom>, branch_co_pa: bool) -> Option<Encoding> {
    let events = skeleton.events();
    let n = events.len();
    let num_pas = skeleton.num_pas();
    let num_vas = skeleton.num_vas();
    let tlb_src = static_tlb_sources(skeleton).ok()?;

    // Universe: event atoms, then PA atoms, then PTE-location atoms.
    let mut names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    names.extend((0..num_pas).map(|p| format!("pa{p}")));
    names.extend((0..num_vas).map(|v| format!("pl{v}")));
    let universe = Universe::new(names);
    let pa_atom = |p: usize| n + p;
    let pl_atom = |v: usize| n + num_pas + v;

    let of_kind = |f: &dyn Fn(EventKind) -> bool| -> TupleSet {
        TupleSet::from_atoms(events.iter().filter(|e| f(e.kind)).map(|e| e.id.index()))
    };
    let user_mem = of_kind(&EventKind::is_user_memory);
    let ptws = of_kind(&|k| k == EventKind::Ptw);
    let wptes = of_kind(&|k| matches!(k, EventKind::PteWrite { .. }));
    let writes = of_kind(&EventKind::is_write);
    let reads = of_kind(&EventKind::is_read);

    let mut problem = Problem::new(universe);

    // --- free relations ---
    let rf_data_upper = TupleSet::from_pairs(
        events
            .iter()
            .filter(|w| w.kind == EventKind::Write)
            .flat_map(|w| {
                events
                    .iter()
                    .filter(|r| r.kind == EventKind::Read)
                    .map(move |r| (w.id.index(), r.id.index()))
            }),
    );
    let rf_data = problem.declare("rf_data", 2, TupleSet::empty(2), rf_data_upper);

    let rf_pte_upper = TupleSet::from_pairs(
        events
            .iter()
            .filter(|w| {
                matches!(
                    w.kind,
                    EventKind::PteWrite { .. } | EventKind::DirtyBitWrite
                )
            })
            .flat_map(|w| {
                events
                    .iter()
                    .filter(move |r| r.kind == EventKind::Ptw && r.va == w.va)
                    .map(move |r| (w.id.index(), r.id.index()))
            }),
    );
    let rf_pte = problem.declare("rf_pte", 2, TupleSet::empty(2), rf_pte_upper);

    let co_upper =
        TupleSet::from_pairs(events.iter().filter(|a| a.kind.is_write()).flat_map(|a| {
            events
                .iter()
                .filter(move |b| b.kind.is_write() && b.id != a.id)
                .map(move |b| (a.id.index(), b.id.index()))
        }));
    let co = problem.declare("co", 2, TupleSet::empty(2), co_upper);

    let co_pa = if branch_co_pa {
        let upper = TupleSet::from_pairs(events.iter().flat_map(|a| {
            events.iter().filter_map(move |b| match (a.kind, b.kind) {
                (EventKind::PteWrite { new_pa: pa_a }, EventKind::PteWrite { new_pa: pa_b })
                    if a.id != b.id && pa_a == pa_b =>
                {
                    Some((a.id.index(), b.id.index()))
                }
                _ => None,
            })
        }));
        Some(problem.declare("co_pa", 2, TupleSet::empty(2), upper))
    } else {
        None
    };

    // --- static structure ---
    let mut slot_vec = vec![0usize; n];
    for t in 0..skeleton.num_threads() {
        for (s, &e) in skeleton
            .po_of(transform_core::ids::ThreadId(t))
            .iter()
            .enumerate()
        {
            slot_vec[e.index()] = s;
        }
    }
    let anchors_vec: Vec<(usize, usize, u8)> = events
        .iter()
        .map(|e| match e.kind {
            EventKind::Ptw => (
                e.thread.0,
                slot_vec[skeleton.invoker(e.id).expect("walk invoker").index()],
                0,
            ),
            EventKind::DirtyBitWrite => (
                e.thread.0,
                slot_vec[skeleton.invoker(e.id).expect("wdb invoker").index()],
                2,
            ),
            _ => (e.thread.0, slot_vec[e.id.index()], 1),
        })
        .collect();
    // Copyable references so the `move` closures below only copy pointers.
    let slot = &slot_vec;
    let anchors = &anchors_vec;
    let tlb_src = &tlb_src;
    let anchor = |e: &transform_core::event::Event| anchors[e.id.index()];
    let apo_pairs = TupleSet::from_pairs(events.iter().flat_map(|a| {
        events.iter().filter_map(move |b| {
            (a.thread == b.thread && a.id != b.id && anchor(a) < anchor(b))
                .then_some((a.id.index(), b.id.index()))
        })
    }));
    let po_pairs = TupleSet::from_pairs(events.iter().flat_map(|a| {
        events.iter().filter_map(move |b| {
            (!a.kind.is_ghost()
                && !b.kind.is_ghost()
                && a.thread == b.thread
                && slot[a.id.index()] < slot[b.id.index()])
            .then_some((a.id.index(), b.id.index()))
        })
    }));
    let ext_pairs = TupleSet::from_pairs(events.iter().flat_map(|a| {
        events
            .iter()
            .filter(move |b| a.thread != b.thread)
            .map(move |b| (a.id.index(), b.id.index()))
    }));
    let fence_pairs = TupleSet::from_pairs(events.iter().flat_map(|a| {
        events.iter().flat_map(move |b| {
            events.iter().filter_map(move |f| {
                (f.kind == EventKind::Fence
                    && a.kind.is_memory()
                    && !a.kind.is_ghost()
                    && b.kind.is_memory()
                    && !b.kind.is_ghost()
                    && a.thread == f.thread
                    && b.thread == f.thread
                    && anchor(a) < anchor(f)
                    && anchor(f) < anchor(b))
                .then_some((a.id.index(), b.id.index()))
            })
        })
    }));
    let ghost_pairs = TupleSet::from_pairs(
        events
            .iter()
            .filter_map(|g| skeleton.invoker(g.id).map(|i| (i.index(), g.id.index()))),
    );
    let rf_ptw_pairs = TupleSet::from_pairs(
        events
            .iter()
            .filter_map(|e| tlb_src[e.id.index()].map(|p| (p.index(), e.id.index()))),
    );
    let ptw_source_pairs = TupleSet::from_pairs(events.iter().flat_map(|e| {
        let own = tlb_src[e.id.index()].filter(|&p| skeleton.invoker(p) == Some(e.id));
        events.iter().filter_map(move |e2| {
            (own.is_some() && e2.id != e.id && tlb_src[e2.id.index()] == own)
                .then_some((e.id.index(), e2.id.index()))
        })
    }));
    let remap_pairs = TupleSet::from_pairs(
        skeleton
            .remap_pairs()
            .iter()
            .map(|&(w, i)| (w.index(), i.index())),
    );
    let rmw_pairs = TupleSet::from_pairs(
        skeleton
            .rmw_pairs()
            .iter()
            .map(|&(r, w)| (r.index(), w.index())),
    );
    // Static ppo: anchored order over issued (non-ghost) memory events
    // minus write→read — ghosts get no program-order guarantees (§III-A).
    let ppo_pairs = TupleSet::from_pairs(events.iter().flat_map(|a| {
        events.iter().filter_map(move |b| {
            (a.thread == b.thread
                && a.id != b.id
                && anchor(a) < anchor(b)
                && a.kind.is_memory()
                && !a.kind.is_ghost()
                && b.kind.is_memory()
                && !b.kind.is_ghost()
                && !(a.kind.is_write() && b.kind.is_read()))
            .then_some((a.id.index(), b.id.index()))
        })
    }));
    // Dirty-bit write → the walk of its invoker (mapping inheritance).
    let wdb2walk = TupleSet::from_pairs(events.iter().filter_map(|d| {
        if d.kind != EventKind::DirtyBitWrite {
            return None;
        }
        let inv = skeleton.invoker(d.id).expect("wdb invoker");
        tlb_src[inv.index()].map(|p| (d.id.index(), p.index()))
    }));
    // PTE write → its target PA atom.
    let wpte2pa = TupleSet::from_pairs(events.iter().filter_map(|e| match e.kind {
        EventKind::PteWrite { new_pa } => Some((e.id.index(), pa_atom(new_pa.0))),
        _ => None,
    }));
    // PTE-stratum events → their PTE-location atom.
    let pte_loc = TupleSet::from_pairs(events.iter().filter_map(|e| match e.kind {
        EventKind::Ptw | EventKind::DirtyBitWrite | EventKind::PteWrite { .. } => {
            Some((e.id.index(), pl_atom(e.va_unwrap().0)))
        }
        _ => None,
    }));
    // User access → its (static) walk source.
    let user2walk = TupleSet::from_pairs(events.iter().filter_map(|e| {
        e.kind
            .is_user_memory()
            .then(|| tlb_src[e.id.index()].map(|p| (e.id.index(), p.index())))
            .flatten()
    }));

    // --- derived expressions ---
    let rf = Expr::rel(rf_data).union(Expr::rel(rf_pte));
    let step = Expr::rel(rf_pte)
        .transpose()
        .union(Expr::constant(wdb2walk));
    let origin_rel = step
        .clone()
        .closure()
        .inter(Expr::univ(1).product(Expr::constant(wptes.clone())));
    // Loaded mapping per walk: the origin PTE write's PA, or the VA's
    // initial PA when the chain hits the initial PTE.
    let chained_ptws = origin_rel.clone().join(Expr::univ(1));
    let mut init_loaded = TupleSet::empty(2);
    for e in events {
        if e.kind == EventKind::Ptw {
            init_loaded.insert(vec![e.id.index(), pa_atom(e.va_unwrap().0)]);
        }
    }
    let init_ptws = Expr::constant(ptws.clone()).diff(chained_ptws.clone());
    let loaded = origin_rel
        .clone()
        .join(Expr::constant(wpte2pa.clone()))
        .union(Expr::constant(init_loaded).inter(init_ptws.clone().product(Expr::univ(1))));
    let pa_of = Expr::constant(user2walk.clone()).join(loaded.clone());
    let loc = pa_of.clone().union(Expr::constant(pte_loc.clone()));
    let same_loc = loc.clone().join(loc.clone().transpose());
    let user_origin = Expr::constant(user2walk.clone()).join(origin_rel.clone());

    // --- well-formedness constraints ---
    // Each read has at most one source.
    for r in events.iter().filter(|e| e.kind == EventKind::Read) {
        problem.require(Formula::lone(
            Expr::rel(rf_data).join(Expr::atom(r.id.index())),
        ));
    }
    for p in events.iter().filter(|e| e.kind == EventKind::Ptw) {
        problem.require(Formula::lone(
            Expr::rel(rf_pte).join(Expr::atom(p.id.index())),
        ));
    }
    // Data rf respects effective locations.
    problem.require(Formula::subset(Expr::rel(rf_data), same_loc.clone()));
    // Mapping provenance is well-founded.
    problem.require(Formula::acyclic(step));
    // Coherence: strict total order per (dynamic) location.
    problem.require(Formula::subset(Expr::rel(co), same_loc.clone()));
    problem.require(Formula::subset(
        Expr::rel(co).join(Expr::rel(co)),
        Expr::rel(co),
    ));
    problem.require(Formula::acyclic(Expr::rel(co)));
    problem.require(Formula::subset(
        Expr::constant(writes.clone())
            .product(Expr::constant(writes.clone()))
            .inter(same_loc.clone())
            .diff(Expr::iden()),
        Expr::rel(co).union(Expr::rel(co).transpose()),
    ));
    if let Some(co_pa) = co_pa {
        // Upper bound already restricts to same-target pairs; totality over
        // those pairs comes from the constant same-target square.
        let same_target = Expr::constant(problem.decl(co_pa).upper.clone());
        problem.require(Formula::subset(
            same_target,
            Expr::rel(co_pa).union(Expr::rel(co_pa).transpose()),
        ));
        problem.require(Formula::subset(
            Expr::rel(co_pa).join(Expr::rel(co_pa)),
            Expr::rel(co_pa),
        ));
        problem.require(Formula::acyclic(Expr::rel(co_pa)));
    }

    // --- the violated axiom ---
    if let Some(axiom) = violate {
        // fr = (~rf ; co) ∪ ((reads with no source × writes) ∩ same_loc).
        let sourced = Expr::univ(1).join(rf.clone());
        let no_src_reads = Expr::constant(reads.clone()).diff(sourced);
        let fr = rf.clone().transpose().join(Expr::rel(co)).union(
            no_src_reads
                .product(Expr::constant(writes.clone()))
                .inter(same_loc.clone()),
        );
        let com = rf.clone().union(Expr::rel(co)).union(fr.clone());
        // Default static co_pa (event order) when not branched.
        let default_co_pa = TupleSet::from_pairs(events.iter().flat_map(|a| {
            events.iter().filter_map(move |b| match (a.kind, b.kind) {
                (EventKind::PteWrite { new_pa: pa_a }, EventKind::PteWrite { new_pa: pa_b })
                    if pa_a == pa_b && a.id < b.id =>
                {
                    Some((a.id.index(), b.id.index()))
                }
                _ => None,
            })
        }));
        let co_pa_expr = match co_pa {
            Some(r) => Expr::rel(r),
            None => Expr::constant(default_co_pa),
        };
        // fr_va / fr_pa: successors of the mapping origin, with the
        // initial-mapping cases added statically per VA / per PA.
        let init_users =
            Expr::constant(user_mem.clone()).diff(user_origin.clone().join(Expr::univ(1)));
        let mut fr_va = user_origin
            .clone()
            .join(Expr::rel(co))
            .inter(Expr::univ(1).product(Expr::constant(wptes.clone())));
        for v in 0..num_vas {
            let users_v = TupleSet::from_atoms(
                events
                    .iter()
                    .filter(|e| e.kind.is_user_memory() && e.va_unwrap().0 == v)
                    .map(|e| e.id.index()),
            );
            let wptes_v = TupleSet::from_atoms(events.iter().filter_map(|e| {
                matches!(e.kind, EventKind::PteWrite { .. })
                    .then_some(e.id.index())
                    .filter(|_| e.va_unwrap().0 == v)
            }));
            if users_v.is_empty() || wptes_v.is_empty() {
                continue;
            }
            fr_va = fr_va.union(
                init_users
                    .clone()
                    .inter(Expr::constant(users_v))
                    .product(Expr::constant(wptes_v)),
            );
        }
        let mut fr_pa = user_origin.clone().join(co_pa_expr.clone());
        for p in 0..num_pas {
            let wptes_p = TupleSet::from_atoms(events.iter().filter_map(|e| match e.kind {
                EventKind::PteWrite { new_pa } if new_pa.0 == p => Some(e.id.index()),
                _ => None,
            }));
            if wptes_p.is_empty() {
                continue;
            }
            let users_at_p = pa_of.clone().join(Expr::atom(pa_atom(p)));
            fr_pa = fr_pa.union(
                init_users
                    .clone()
                    .inter(users_at_p)
                    .product(Expr::constant(wptes_p)),
            );
        }

        let lower = |rel: BaseRel| -> Expr {
            match rel {
                BaseRel::Po => Expr::constant(po_pairs.clone()),
                BaseRel::Apo => Expr::constant(apo_pairs.clone()),
                BaseRel::PoLoc => Expr::constant(apo_pairs.clone().intersection(
                    &TupleSet::from_pairs(events.iter().flat_map(|a| {
                        events.iter().filter_map(move |b| {
                            (a.kind.is_memory() && b.kind.is_memory())
                                .then_some((a.id.index(), b.id.index()))
                        })
                    })),
                ))
                .inter(same_loc.clone()),
                BaseRel::Ppo => Expr::constant(ppo_pairs.clone()),
                BaseRel::Fence => Expr::constant(fence_pairs.clone()),
                BaseRel::Rf => rf.clone(),
                BaseRel::Rfe => rf.clone().inter(Expr::constant(ext_pairs.clone())),
                BaseRel::Co => Expr::rel(co),
                BaseRel::Fr => fr.clone(),
                BaseRel::Com => com.clone(),
                BaseRel::Ghost => Expr::constant(ghost_pairs.clone()),
                BaseRel::RfPtw => Expr::constant(rf_ptw_pairs.clone()),
                BaseRel::RfPa => user_origin.clone().transpose(),
                BaseRel::CoPa => co_pa_expr.clone(),
                BaseRel::FrPa => fr_pa.clone(),
                BaseRel::FrVa => fr_va.clone(),
                BaseRel::Remap => Expr::constant(remap_pairs.clone()),
                BaseRel::Rmw => Expr::constant(rmw_pairs.clone()),
                BaseRel::PtwSource => Expr::constant(ptw_source_pairs.clone()),
            }
        };
        let expr = lower_rel_expr(axiom.expr(), &lower);
        let violated = match axiom {
            Axiom::Acyclic(_) => Formula::not(Formula::acyclic(expr)),
            Axiom::Irreflexive(_) => Formula::some(expr.inter(Expr::iden())),
            Axiom::Empty(_) => Formula::some(expr),
        };
        problem.require(violated);
    }

    Some(Encoding {
        problem,
        rf_data,
        rf_pte,
        co,
        co_pa,
    })
}

fn lower_rel_expr(e: &RelExpr, lower: &dyn Fn(BaseRel) -> Expr) -> Expr {
    match e {
        RelExpr::Base(r) => lower(*r),
        RelExpr::Union(a, b) => lower_rel_expr(a, lower).union(lower_rel_expr(b, lower)),
        RelExpr::Inter(a, b) => lower_rel_expr(a, lower).inter(lower_rel_expr(b, lower)),
        RelExpr::Diff(a, b) => lower_rel_expr(a, lower).diff(lower_rel_expr(b, lower)),
        RelExpr::Seq(a, b) => lower_rel_expr(a, lower).join(lower_rel_expr(b, lower)),
        RelExpr::Inverse(a) => lower_rel_expr(a, lower).transpose(),
        RelExpr::Closure(a) => lower_rel_expr(a, lower).closure(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execs;
    use std::collections::BTreeSet;
    use transform_core::exec::EltBuilder;
    use transform_core::ids::{Pa, Va};
    use transform_core::spec::parse_mtm;

    fn x86t_elt_like() -> Mtm {
        parse_mtm(
            "mtm x86t_elt {
               axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
               axiom rmw_atomicity: empty(rmw & (fr ; co))
               axiom causality:     acyclic(rfe | co | fr | ppo | fence)
               axiom invlpg:        acyclic(fr_va | ^po | remap)
               axiom tlb_causality: acyclic(ptw_source | com)
             }",
        )
        .expect("spec parses")
    }

    type CommSignature = (Vec<(u32, u32)>, Vec<(u32, u32)>);

    /// Canonical signature of one execution's communication choices.
    fn signature(x: &Execution) -> CommSignature {
        let rf: Vec<(u32, u32)> = x.rf_pairs().iter().map(|&(a, b)| (a.0, b.0)).collect();
        let co: Vec<(u32, u32)> = x.co_pairs().iter().map(|&(a, b)| (a.0, b.0)).collect();
        (rf, co)
    }

    fn skeleton_wr() -> Execution {
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.write_walk(t, Va(0));
        b.read(t, Va(0));
        b.build()
    }

    fn skeleton_remap_read() -> Execution {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let w = b.pte_write(t, Va(0), Pa(1));
        let i = b.invlpg(t, Va(0));
        b.remap(w, i);
        b.read_walk(t, Va(0));
        b.build()
    }

    #[test]
    fn relational_matches_explicit_on_simple_program() {
        let skel = skeleton_wr();
        let explicit: BTreeSet<_> = execs::executions(&skel, false)
            .iter()
            .map(signature)
            .collect();
        let relational: BTreeSet<_> = all_executions(&skel, false).iter().map(signature).collect();
        assert_eq!(explicit, relational);
        assert_eq!(explicit.len(), 2);
    }

    #[test]
    fn relational_matches_explicit_on_remap_program() {
        let skel = skeleton_remap_read();
        let explicit: BTreeSet<_> = execs::executions(&skel, false)
            .iter()
            .map(signature)
            .collect();
        let relational: BTreeSet<_> = all_executions(&skel, false).iter().map(signature).collect();
        assert_eq!(explicit, relational);
    }

    #[test]
    fn relational_matches_explicit_on_two_writes() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.write_walk(t, Va(0));
        b.write(t, Va(0));
        let skel = b.build();
        let explicit: BTreeSet<_> = execs::executions(&skel, false)
            .iter()
            .map(signature)
            .collect();
        let relational: BTreeSet<_> = all_executions(&skel, false).iter().map(signature).collect();
        assert_eq!(explicit, relational);
        assert_eq!(explicit.len(), 4);
    }

    #[test]
    fn violating_executions_are_forbidden() {
        let mtm = x86t_elt_like();
        let skel = skeleton_remap_read();
        let bad = violating_executions(&skel, &mtm, "invlpg", false, usize::MAX);
        assert_eq!(bad.len(), 1, "exactly the stale-walk execution");
        for x in &bad {
            let v = mtm.permits(x);
            assert!(v.violates("invlpg"));
        }
        // And none are missed: explicit filtering agrees.
        let explicit: Vec<_> = execs::executions(&skel, false)
            .into_iter()
            .filter(|x| mtm.permits(x).violates("invlpg"))
            .collect();
        assert_eq!(explicit.len(), bad.len());
    }

    #[test]
    fn shard_gen_matches_one_shot_generation() {
        // One incremental solver across several structurally different
        // skeletons must produce exactly the per-skeleton model sets of
        // fresh solvers.
        let mtm = x86t_elt_like();
        let mut shard = ShardGen::new();
        let skeletons = [skeleton_wr(), skeleton_remap_read(), skeleton_wr()];
        for (i, skel) in skeletons.iter().enumerate() {
            let fresh: BTreeSet<_> = all_executions(skel, false).iter().map(signature).collect();
            let shared: BTreeSet<_> = shard
                .all_executions(skel, false)
                .iter()
                .map(signature)
                .collect();
            assert_eq!(fresh, shared, "skeleton {i}: all-executions sets differ");

            for axiom in ["sc_per_loc", "invlpg"] {
                let fresh: BTreeSet<_> = violating_executions(skel, &mtm, axiom, false, usize::MAX)
                    .iter()
                    .map(signature)
                    .collect();
                let shared: BTreeSet<_> = shard
                    .violating_executions(skel, &mtm, axiom, false, usize::MAX)
                    .iter()
                    .map(signature)
                    .collect();
                assert_eq!(fresh, shared, "skeleton {i}, axiom {axiom}");
            }
        }
        assert_eq!(shard.problems_solved(), skeletons.len() * 3);
        assert!(shard.solver_stats().solve_calls > 0);
    }

    #[test]
    fn shard_gen_respects_limits() {
        let mut shard = ShardGen::new();
        let skel = skeleton_wr();
        let total = shard.all_executions(&skel, false).len();
        assert_eq!(total, 2);
        let mtm = x86t_elt_like();
        let limited = shard.violating_executions(&skel, &mtm, "sc_per_loc", false, 1);
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn violating_sc_per_loc_agrees_with_explicit() {
        let mtm = x86t_elt_like();
        let skel = skeleton_wr();
        let relational: BTreeSet<_> =
            violating_executions(&skel, &mtm, "sc_per_loc", false, usize::MAX)
                .iter()
                .map(signature)
                .collect();
        let explicit: BTreeSet<_> = execs::executions(&skel, false)
            .into_iter()
            .filter(|x| mtm.permits(x).violates("sc_per_loc"))
            .map(|x| signature(&x))
            .collect();
        assert_eq!(relational, explicit);
        assert_eq!(relational.len(), 1);
    }
}
