//! `transform-synth` — bounded synthesis of enhanced litmus tests.
//!
//! This crate implements §IV of the TransForm paper: given a formally
//! specified MTM and an instruction bound, it synthesizes the *spanning
//! set* of ELT programs — every unique, minimal program (ghosts counted in
//! the bound) with a candidate execution whose outcome violates a targeted
//! axiom.
//!
//! The pipeline mirrors the paper's Fig. 7:
//!
//! 1. **Candidate execution synthesis** — [`programs`] enumerates the
//!    program space under the placement rules; [`execs`] (explicit
//!    operational backend) or [`satgen`] (relational model finding over
//!    the `relational`/`tsat` substrate, the architecture of the paper's
//!    Alloy/Kodkod/MiniSat stack) enumerates communication choices.
//! 2. **Spanning-set pruning** — interestingness (a write exists; the
//!    target axiom is violated) and the minimality criterion under the
//!    relaxation rules of [`relax`].
//! 3. **Deduplication** — canonical program forms in [`canon`].
//!
//! # Examples
//!
//! Synthesize the `invlpg` suite at the paper's minimum bound:
//!
//! ```
//! use transform_core::spec::parse_mtm;
//! use transform_synth::engine::{synthesize_suite, SynthOptions};
//!
//! let mtm = parse_mtm(
//!     "mtm x86t_elt {
//!        axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
//!        axiom invlpg:        acyclic(fr_va | ^po | remap)
//!      }",
//! ).expect("spec parses");
//! let mut opts = SynthOptions::new(4);
//! opts.enumeration.allow_fences = false;
//! opts.enumeration.allow_rmw = false;
//! let suite = synthesize_suite(&mtm, "invlpg", &opts);
//! assert!(!suite.elts.is_empty());
//! ```

pub mod canon;
pub mod engine;
pub mod execs;
pub mod minimal;
pub mod programs;
pub mod relax;
pub mod satgen;

pub use engine::{
    assemble_suite, branches_co_pa, exclusive_attribution, plan_from_keyed, plan_key, plan_suite,
    suite_contains, synthesize_all, synthesize_suite, unique_union, Backend, Examined, Examiner,
    ShardStats, Suite, SuiteRecord, SuiteStats, SynthOptions, SynthPlan, SynthesizedElt, WorkItem,
};
pub use programs::{
    Balance, EnumOptions, EnumSpace, KeyedProgram, PaRef, Program, ProgramStream, SlotOp,
};
pub use relax::Relaxation;
