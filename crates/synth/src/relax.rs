//! Relaxation rules (§IV-B) — the moves used to test minimality.
//!
//! A relaxation removes one event or dependency from an ELT. The paper's
//! restrictions apply: ghosts go with their invoker; remap-invoked
//! `INVLPG`s go with their PTE write; spurious `INVLPG`s, fences, and `rmw`
//! dependencies relax in isolation.
//!
//! Applying a relaxation *repairs* the remaining execution: reads whose
//! source vanished read the initial state, coherence is restricted and —
//! where a remap removal merges locations — deterministically completed.
//! Relaxations that cannot yield a well-formed ELT (e.g. removing the only
//! walk a later access depends on) are reported as [`None`] and do not
//! count against minimality.

use std::collections::{BTreeMap, BTreeSet};
use transform_core::event::EventKind;
use transform_core::exec::{Execution, PairSet};
use transform_core::ids::EventId;
use transform_core::wellformed::WellformedError;

/// One relaxation move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relaxation {
    /// Remove a user-facing read or write together with its ghosts.
    RemoveUserAccess(EventId),
    /// Remove a PTE write together with every `INVLPG` it remap-invokes.
    RemovePteWrite(EventId),
    /// Remove a spurious (not remap-invoked) `INVLPG` or full TLB flush
    /// in isolation.
    RemoveSpuriousInvlpg(EventId),
    /// Remove an `MFENCE` in isolation.
    RemoveFence(EventId),
    /// Drop an `rmw` dependency, keeping both accesses.
    DropRmw(EventId, EventId),
}

/// All legal relaxations of an execution.
pub fn relaxations(x: &Execution) -> Vec<Relaxation> {
    let remapped: BTreeSet<EventId> = x.remap_pairs().iter().map(|&(_, i)| i).collect();
    let mut out = Vec::new();
    for e in x.events() {
        match e.kind {
            EventKind::Read | EventKind::Write => out.push(Relaxation::RemoveUserAccess(e.id)),
            EventKind::PteWrite { .. } => out.push(Relaxation::RemovePteWrite(e.id)),
            EventKind::Invlpg | EventKind::TlbFlush if !remapped.contains(&e.id) => {
                out.push(Relaxation::RemoveSpuriousInvlpg(e.id))
            }
            EventKind::Fence => out.push(Relaxation::RemoveFence(e.id)),
            _ => {}
        }
    }
    for &(r, w) in x.rmw_pairs() {
        out.push(Relaxation::DropRmw(r, w));
    }
    out
}

/// Applies a relaxation, repairing the result. `None` when no well-formed
/// ELT can result.
pub fn apply(x: &Execution, r: &Relaxation) -> Option<Execution> {
    let mut removed: BTreeSet<EventId> = BTreeSet::new();
    let mut parts = x.to_parts();
    match *r {
        Relaxation::RemoveUserAccess(e) => {
            removed.insert(e);
            removed.extend(x.ghosts_of(e));
        }
        Relaxation::RemovePteWrite(e) => {
            removed.insert(e);
            removed.extend(
                x.remap_pairs()
                    .iter()
                    .filter(|&&(w, _)| w == e)
                    .map(|&(_, i)| i),
            );
        }
        Relaxation::RemoveSpuriousInvlpg(e) | Relaxation::RemoveFence(e) => {
            removed.insert(e);
        }
        Relaxation::DropRmw(r, w) => {
            parts.rmw.remove(&(r, w));
            let rebuilt = Execution::from_parts(parts);
            return repair(rebuilt);
        }
    }

    // Renumber the surviving events densely, and compact VA/PA names: a
    // page whose VA no longer appears in the program is indistinguishable
    // from a fresh page, so the relaxed program must not remember it
    // (otherwise reduced programs would never match synthesized ones).
    let survivors: Vec<_> = x
        .events()
        .iter()
        .filter(|e| !removed.contains(&e.id))
        .collect();
    let mut va_map: BTreeMap<usize, usize> = BTreeMap::new();
    for e in &survivors {
        if let Some(va) = e.va {
            let next = va_map.len();
            va_map.entry(va.0).or_insert(next);
        }
    }
    let new_num_vas = va_map.len();
    let mut fresh_pa: BTreeMap<usize, usize> = BTreeMap::new();
    let mut map_pa = |pa: transform_core::ids::Pa| -> transform_core::ids::Pa {
        // Initial page of a surviving VA: follow the VA's new name.
        if pa.0 < x.num_vas() {
            if let Some(&v) = va_map.get(&pa.0) {
                return transform_core::ids::Pa(v);
            }
        }
        // Fresh page, or the orphaned initial page of a removed VA.
        let next = fresh_pa.len();
        let idx = *fresh_pa.entry(pa.0).or_insert(next);
        transform_core::ids::Pa(new_num_vas + idx)
    };

    let mut new_id: BTreeMap<EventId, EventId> = BTreeMap::new();
    let mut events = Vec::new();
    for e in &survivors {
        let id = EventId(events.len() as u32);
        new_id.insert(e.id, id);
        let mut e2 = **e;
        e2.id = id;
        if let Some(va) = e2.va {
            e2.va = Some(transform_core::ids::Va(va_map[&va.0]));
        }
        if let transform_core::event::EventKind::PteWrite { new_pa } = e2.kind {
            e2.kind = transform_core::event::EventKind::PteWrite {
                new_pa: map_pa(new_pa),
            };
        }
        events.push(e2);
    }
    let new_num_pas = (new_num_vas + fresh_pa.len()).max(new_num_vas);
    let map = |e: EventId| new_id.get(&e).copied();
    let map_pairs = |ps: &PairSet| -> PairSet {
        ps.iter()
            .filter_map(|&(a, b)| Some((map(a)?, map(b)?)))
            .collect()
    };

    let rebuilt = Execution::from_parts(transform_core::exec::ExecParts {
        events,
        num_threads: parts.num_threads,
        num_vas: new_num_vas,
        num_pas: new_num_pas,
        po: parts
            .po
            .iter()
            .map(|row| row.iter().filter_map(|&e| map(e)).collect())
            .collect(),
        ghost_invoker: parts
            .ghost_invoker
            .iter()
            .filter_map(|(&g, &i)| Some((map(g)?, map(i)?)))
            .collect(),
        rf: parts
            .rf
            .iter()
            .filter_map(|(&r, &w)| Some((map(r)?, map(w)?)))
            .collect(),
        co: map_pairs(&parts.co),
        rmw: map_pairs(&parts.rmw),
        remap: map_pairs(&parts.remap),
        co_pa: parts.co_pa.as_ref().map(map_pairs),
    });
    repair(rebuilt)
}

/// Drives the execution to well-formedness by dropping now-invalid
/// communication edges and completing coherence where locations merged.
/// Structural failures (a use without a walk) are unrepairable.
fn repair(mut x: Execution) -> Option<Execution> {
    for _ in 0..128 {
        let err = match x.analyze() {
            Ok(_) => return Some(x),
            Err(e) => e,
        };
        let mut parts = x.to_parts();
        match err {
            WellformedError::RfLocationMismatch(_, r) | WellformedError::RfKindMismatch(_, r) => {
                parts.rf.remove(&r);
            }
            WellformedError::BadCoPair(a, b) => {
                parts.co.remove(&(a, b));
            }
            WellformedError::CoNotTotalOrder(a, b) => {
                let pair = if a < b { (a, b) } else { (b, a) };
                parts.co.insert(pair);
            }
            WellformedError::BadCoPaPair(a, b) => {
                if let Some(s) = parts.co_pa.as_mut() {
                    s.remove(&(a, b));
                }
            }
            WellformedError::CoPaNotTotalOrder(a, b) => {
                let pair = if a < b { (a, b) } else { (b, a) };
                parts.co_pa.get_or_insert_with(PairSet::new).insert(pair);
            }
            _ => return None,
        }
        x = Execution::from_parts(parts);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::exec::EltBuilder;
    use transform_core::figures;
    use transform_core::ids::Va;

    #[test]
    fn removing_a_write_drops_its_ghosts_and_rf() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (w, _, _) = b.write_walk(t, Va(0));
        let r = b.read(t, Va(0));
        b.rf(w, r);
        let x = b.build();
        // Removing R leaves W(+ghosts).
        let x2 = apply(&x, &Relaxation::RemoveUserAccess(r)).expect("repairable");
        assert_eq!(x2.size(), 3);
        assert!(x2.is_well_formed());
        // Removing W would leave R with no walk: unrepairable.
        assert_eq!(apply(&x, &Relaxation::RemoveUserAccess(w)), None);
    }

    #[test]
    fn removing_pte_write_takes_its_invlpgs() {
        let x = figures::fig11_cross_core_invlpg();
        let wpte = x
            .events()
            .iter()
            .find(|e| matches!(e.kind, EventKind::PteWrite { .. }))
            .expect("has a PTE write")
            .id;
        let x2 = apply(&x, &Relaxation::RemovePteWrite(wpte)).expect("repairable");
        // WPTE0 and both INVLPGs vanish; the read and its walk survive.
        assert_eq!(x2.size(), 2);
        assert!(x2.is_well_formed());
    }

    #[test]
    fn spurious_invlpg_removal_can_break_walk_placement() {
        // Fig. 5b: removing the INVLPG leaves two walks for the same VA
        // with no eviction between them — still legal (capacity eviction).
        let x = figures::fig5b_spurious_invlpg();
        let inv = x
            .events()
            .iter()
            .find(|e| e.kind == EventKind::Invlpg)
            .expect("has INVLPG")
            .id;
        let x2 = apply(&x, &Relaxation::RemoveSpuriousInvlpg(inv)).expect("repairable");
        assert!(x2.is_well_formed());
        assert_eq!(x2.size(), 4);
    }

    #[test]
    fn relaxation_inventory_matches_structure() {
        let x = figures::fig10a_ptwalk2();
        let rs = relaxations(&x);
        // One user access + one PTE write; the INVLPG is remap-invoked and
        // cannot relax alone.
        assert_eq!(rs.len(), 2);
        assert!(rs
            .iter()
            .all(|r| !matches!(r, Relaxation::RemoveSpuriousInvlpg(_))));
    }

    #[test]
    fn dropping_rmw_keeps_events() {
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (r, p) = b.read_walk(t, Va(0));
        let (w, _) = b.write(t, Va(0));
        b.rmw(r, w);
        let _ = p;
        let x = b.build();
        let rs = relaxations(&x);
        assert!(rs.contains(&Relaxation::DropRmw(r, w)));
        let x2 = apply(&x, &Relaxation::DropRmw(r, w)).expect("repairable");
        assert_eq!(x2.size(), x.size());
        assert!(x2.rmw_pairs().is_empty());
    }

    #[test]
    fn repair_completes_merged_coherence() {
        // Two writes via different VAs to different PAs, plus a remap that
        // aliased them; removing other events can merge locations — here we
        // exercise the simpler direction: removing a PTE write un-aliases.
        let x = figures::fig2c_sb_elt_aliased();
        let wpte = x
            .events()
            .iter()
            .find(|e| matches!(e.kind, EventKind::PteWrite { .. }))
            .expect("has PTE write")
            .id;
        let x2 = apply(&x, &Relaxation::RemovePteWrite(wpte)).expect("repairable");
        assert!(x2.is_well_formed(), "{:?}", x2.analyze().err());
    }
}
