//! The minimality criterion (§IV-B).
//!
//! An ELT execution is *minimal* when its forbidden outcome becomes
//! permitted under every possible isolated relaxation. Non-minimal
//! forbidden executions (like the paper's Fig. 8, which stays forbidden
//! after removing the unrelated write `W4`) are excluded from the spanning
//! set.

use crate::relax::{apply, relaxations};
use transform_core::axiom::Mtm;
use transform_core::exec::Execution;

/// `true` when every applicable relaxation of `x` is permitted by `mtm`.
///
/// The caller is expected to have established that `x` itself is forbidden;
/// this function only checks the relaxations.
pub fn is_minimal(x: &Execution, mtm: &Mtm) -> bool {
    for r in relaxations(x) {
        if let Some(relaxed) = apply(x, &r) {
            if let Ok(a) = relaxed.analyze() {
                if !mtm.evaluate(&a).is_permitted() {
                    return false;
                }
            }
        }
    }
    true
}

/// Classifies a forbidden execution: `Some(r)` is a witness relaxation
/// under which it stays forbidden (hence non-minimal), `None` means
/// minimal.
pub fn non_minimality_witness(x: &Execution, mtm: &Mtm) -> Option<crate::relax::Relaxation> {
    relaxations(x).into_iter().find(|r| {
        apply(x, r)
            .and_then(|relaxed| {
                relaxed
                    .analyze()
                    .ok()
                    .map(|a| !mtm.evaluate(&a).is_permitted())
            })
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::exec::EltBuilder;
    use transform_core::figures;
    use transform_core::ids::Va;
    use transform_core::spec::parse_mtm;

    fn x86t_elt_like() -> Mtm {
        parse_mtm(
            "mtm x86t_elt {
               axiom sc_per_loc:    acyclic(rf | co | fr | po_loc)
               axiom rmw_atomicity: empty(rmw & (fr ; co))
               axiom causality:     acyclic(rfe | co | fr | ppo | fence)
               axiom invlpg:        acyclic(fr_va | ^po | remap)
               axiom tlb_causality: acyclic(ptw_source | com)
             }",
        )
        .expect("spec parses")
    }

    #[test]
    fn ptwalk2_is_minimal() {
        let mtm = x86t_elt_like();
        let x = figures::fig10a_ptwalk2();
        assert!(!mtm.permits(&x).is_permitted());
        assert!(is_minimal(&x, &mtm));
    }

    #[test]
    fn fig11_is_minimal() {
        let mtm = x86t_elt_like();
        let x = figures::fig11_cross_core_invlpg();
        assert!(!mtm.permits(&x).is_permitted());
        assert!(is_minimal(&x, &mtm));
    }

    #[test]
    fn unrelated_write_breaks_minimality() {
        // The Fig. 8 idea at ELT scale: a forbidden coherence test with an
        // unrelated write to another VA stays forbidden when that write is
        // removed — so it is not minimal.
        let mtm = x86t_elt_like();
        let mut b = EltBuilder::new();
        let t = b.thread();
        let (_w, _, _) = b.write_walk(t, Va(0));
        let _r = b.read(t, Va(0)); // reads initial: coherence violation
        let (w2, _, _) = b.write_walk(t, Va(1)); // unrelated
        let x = b.build();
        assert!(!mtm.permits(&x).is_permitted());
        assert!(!is_minimal(&x, &mtm));
        let witness = non_minimality_witness(&x, &mtm).expect("non-minimal");
        assert_eq!(witness, crate::relax::Relaxation::RemoveUserAccess(w2));
    }

    #[test]
    fn minimal_coherence_pair() {
        let mtm = x86t_elt_like();
        let mut b = EltBuilder::new();
        let t = b.thread();
        b.write_walk(t, Va(0));
        b.read(t, Va(0)); // reads initial
        let x = b.build();
        assert!(!mtm.permits(&x).is_permitted());
        assert!(is_minimal(&x, &mtm));
    }
}
