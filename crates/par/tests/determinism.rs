//! The parallel orchestrator's core contract: for any worker count, the
//! synthesized suite is byte-identical to the sequential engine's, on
//! both candidate-execution backends, and every counter aggregates
//! losslessly.

use proptest::prelude::*;
use transform_par::synthesize_suite_jobs;
use transform_synth::{Backend, Suite, SynthOptions};
use transform_x86::x86t_elt;

/// A byte-exact rendering of everything user-visible in a suite: the
/// programs in order, each witness's full structure, and the violated
/// axioms. Two suites are interchangeable iff their fingerprints match.
fn fingerprint(suite: &Suite) -> String {
    let mut out = format!("axiom {}\n", suite.axiom);
    for elt in &suite.elts {
        out.push_str(&format!(
            "program {:?}\nwitness {:?}\nviolated {:?}\n",
            elt.program,
            elt.witness.to_parts(),
            elt.violated,
        ));
    }
    out
}

fn opts(bound: usize, backend: Backend) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o.backend = backend;
    o
}

#[test]
fn jobs_1_and_8_are_byte_identical_on_both_backends() {
    let mtm = x86t_elt();
    for backend in [Backend::Explicit, Backend::Relational] {
        for axiom in ["sc_per_loc", "invlpg"] {
            let o = opts(4, backend);
            let one = synthesize_suite_jobs(&mtm, axiom, &o, 1);
            let eight = synthesize_suite_jobs(&mtm, axiom, &o, 8);
            assert!(
                !one.elts.is_empty(),
                "{axiom} via {backend:?}: empty suite makes this test vacuous"
            );
            assert_eq!(
                fingerprint(&one),
                fingerprint(&eight),
                "{axiom} via {backend:?}: suites diverge between jobs=1 and jobs=8"
            );
            // Lossless counter aggregation: per-shard sums equal the
            // sequential totals exactly.
            assert_eq!(one.stats.programs, eight.stats.programs);
            assert_eq!(one.stats.executions, eight.stats.executions);
            assert_eq!(one.stats.forbidden, eight.stats.forbidden);
            assert_eq!(one.stats.minimal, eight.stats.minimal);
            for suite in [&one, &eight] {
                let (items, execs, forb, min) =
                    suite
                        .stats
                        .shards
                        .iter()
                        .fold((0, 0, 0, 0), |(i, e, f, m), s| {
                            (
                                i + s.items,
                                e + s.executions,
                                f + s.forbidden,
                                m + s.minimal,
                            )
                        });
                assert_eq!(execs, suite.stats.executions);
                assert_eq!(forb, suite.stats.forbidden);
                assert_eq!(min, suite.stats.minimal);
                assert!(items > 0);
            }
        }
    }
}

#[test]
fn parallel_explicit_and_relational_backends_agree_on_programs() {
    // The two backends count different things (the relational generator
    // only materializes violating executions), but the synthesized
    // programs and witnesses must agree.
    let mtm = x86t_elt();
    for axiom in ["sc_per_loc", "invlpg"] {
        let explicit = synthesize_suite_jobs(&mtm, axiom, &opts(4, Backend::Explicit), 4);
        let relational = synthesize_suite_jobs(&mtm, axiom, &opts(4, Backend::Relational), 4);
        assert_eq!(
            explicit.elts.len(),
            relational.elts.len(),
            "{axiom}: suite sizes diverge across backends"
        );
        for (a, b) in explicit.elts.iter().zip(&relational.elts) {
            assert_eq!(a.program, b.program, "{axiom}");
            assert_eq!(a.witness, b.witness, "{axiom}");
        }
    }
}

#[test]
fn partition_sizes_never_change_the_suite() {
    // The streaming pipeline's batch granularity — fixed at any value or
    // autotuned — is pure scheduling: the suite must stay byte-identical
    // to the sequential engine.
    let mtm = x86t_elt();
    let reference = {
        let o = opts(4, Backend::Explicit);
        fingerprint(&synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 1))
    };
    for partition_size in [None, Some(1), Some(7), Some(100_000)] {
        for jobs in [2usize, 8] {
            let mut o = opts(4, Backend::Explicit);
            o.partition_size = partition_size;
            let suite = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, jobs);
            assert_eq!(
                reference,
                fingerprint(&suite),
                "partition_size={partition_size:?} jobs={jobs}"
            );
        }
    }
}

#[test]
fn streamed_bound_5_suite_is_byte_identical_to_sequential() {
    // The acceptance bar for the fused pipeline: an engine-level run at
    // bound 5 reproduces the sequential suite exactly.
    let mtm = x86t_elt();
    let o = opts(5, Backend::Explicit);
    let sequential = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 1);
    let streamed = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 4);
    assert!(!sequential.elts.is_empty());
    assert_eq!(fingerprint(&sequential), fingerprint(&streamed));
    assert_eq!(sequential.stats.programs, streamed.stats.programs);
    assert_eq!(sequential.stats.executions, streamed.stats.executions);
    assert_eq!(sequential.stats.forbidden, streamed.stats.forbidden);
    assert_eq!(sequential.stats.minimal, streamed.stats.minimal);
}

#[test]
fn eager_reference_path_matches_the_fused_pipeline() {
    let mtm = x86t_elt();
    for backend in [Backend::Explicit, Backend::Relational] {
        let o = opts(4, backend);
        let eager = transform_par::synthesize_suite_jobs_eager(&mtm, "invlpg", &o, 4);
        let fused = synthesize_suite_jobs(&mtm, "invlpg", &o, 4);
        assert_eq!(
            fingerprint(&eager),
            fingerprint(&fused),
            "{backend:?}: two-phase and fused pipelines diverge"
        );
        assert_eq!(eager.stats.programs, fused.stats.programs);
        assert_eq!(eager.stats.executions, fused.stats.executions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any job count — odd, even, oversubscribed far past the core
    /// count — reproduces the sequential suite.
    #[test]
    fn arbitrary_job_counts_stay_deterministic(jobs in 2usize..24) {
        let mtm = x86t_elt();
        let o = opts(4, Backend::Explicit);
        let reference = fingerprint(&synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 1));
        let suite = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, jobs);
        prop_assert_eq!(reference, fingerprint(&suite), "jobs={}", jobs);
    }

    /// Jobs × partition size together: still the sequential suite.
    #[test]
    fn job_and_partition_size_grid_stays_deterministic(
        jobs in 2usize..12,
        partition_size in 1usize..64,
    ) {
        let mtm = x86t_elt();
        let mut o = opts(4, Backend::Explicit);
        o.partition_size = Some(partition_size);
        let reference = {
            let o = opts(4, Backend::Explicit);
            fingerprint(&synthesize_suite_jobs(&mtm, "invlpg", &o, 1))
        };
        let suite = synthesize_suite_jobs(&mtm, "invlpg", &o, jobs);
        prop_assert_eq!(
            reference,
            fingerprint(&suite),
            "jobs={} partition_size={}",
            jobs,
            partition_size
        );
    }
}
