//! The parallel orchestrator's core contract: for any worker count, the
//! synthesized suite is byte-identical to the sequential engine's, on
//! both candidate-execution backends, and every counter aggregates
//! losslessly.

use proptest::prelude::*;
use transform_par::{synthesize_all_jobs, synthesize_suite_jobs};
use transform_synth::{Backend, Balance, Suite, SynthOptions};
use transform_x86::x86t_elt;

/// A byte-exact rendering of everything user-visible in a suite: the
/// programs in order, each witness's full structure, and the violated
/// axioms. Two suites are interchangeable iff their fingerprints match.
fn fingerprint(suite: &Suite) -> String {
    let mut out = format!("axiom {}\n", suite.axiom);
    for elt in &suite.elts {
        out.push_str(&format!(
            "program {:?}\nwitness {:?}\nviolated {:?}\n",
            elt.program,
            elt.witness.to_parts(),
            elt.violated,
        ));
    }
    out
}

fn opts(bound: usize, backend: Backend) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o.backend = backend;
    o
}

#[test]
fn jobs_1_and_8_are_byte_identical_on_both_backends() {
    let mtm = x86t_elt();
    for backend in [Backend::Explicit, Backend::Relational] {
        for axiom in ["sc_per_loc", "invlpg"] {
            let o = opts(4, backend);
            let one = synthesize_suite_jobs(&mtm, axiom, &o, 1);
            let eight = synthesize_suite_jobs(&mtm, axiom, &o, 8);
            assert!(
                !one.elts.is_empty(),
                "{axiom} via {backend:?}: empty suite makes this test vacuous"
            );
            assert_eq!(
                fingerprint(&one),
                fingerprint(&eight),
                "{axiom} via {backend:?}: suites diverge between jobs=1 and jobs=8"
            );
            // Lossless counter aggregation: per-shard sums equal the
            // sequential totals exactly.
            assert_eq!(one.stats.programs, eight.stats.programs);
            assert_eq!(one.stats.executions, eight.stats.executions);
            assert_eq!(one.stats.forbidden, eight.stats.forbidden);
            assert_eq!(one.stats.minimal, eight.stats.minimal);
            for suite in [&one, &eight] {
                let (items, execs, forb, min) =
                    suite
                        .stats
                        .shards
                        .iter()
                        .fold((0, 0, 0, 0), |(i, e, f, m), s| {
                            (
                                i + s.items,
                                e + s.executions,
                                f + s.forbidden,
                                m + s.minimal,
                            )
                        });
                assert_eq!(execs, suite.stats.executions);
                assert_eq!(forb, suite.stats.forbidden);
                assert_eq!(min, suite.stats.minimal);
                assert!(items > 0);
            }
        }
    }
}

#[test]
fn parallel_explicit_and_relational_backends_agree_on_programs() {
    // The two backends count different things (the relational generator
    // only materializes violating executions), but the synthesized
    // programs and witnesses must agree.
    let mtm = x86t_elt();
    for axiom in ["sc_per_loc", "invlpg"] {
        let explicit = synthesize_suite_jobs(&mtm, axiom, &opts(4, Backend::Explicit), 4);
        let relational = synthesize_suite_jobs(&mtm, axiom, &opts(4, Backend::Relational), 4);
        assert_eq!(
            explicit.elts.len(),
            relational.elts.len(),
            "{axiom}: suite sizes diverge across backends"
        );
        for (a, b) in explicit.elts.iter().zip(&relational.elts) {
            assert_eq!(a.program, b.program, "{axiom}");
            assert_eq!(a.witness, b.witness, "{axiom}");
        }
    }
}

#[test]
fn partition_sizes_never_change_the_suite() {
    // The streaming pipeline's batch granularity — fixed at any value or
    // autotuned — is pure scheduling: the suite must stay byte-identical
    // to the sequential engine.
    let mtm = x86t_elt();
    let reference = {
        let o = opts(4, Backend::Explicit);
        fingerprint(&synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 1))
    };
    for partition_size in [None, Some(1), Some(7), Some(100_000)] {
        for jobs in [2usize, 8] {
            let mut o = opts(4, Backend::Explicit);
            o.partition_size = partition_size;
            let suite = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, jobs);
            assert_eq!(
                reference,
                fingerprint(&suite),
                "partition_size={partition_size:?} jobs={jobs}"
            );
        }
    }
}

#[test]
fn streamed_bound_5_suite_is_byte_identical_to_sequential() {
    // The acceptance bar for the fused pipeline: an engine-level run at
    // bound 5 reproduces the sequential suite exactly, under both
    // balance modes and a pinned partition size.
    let mtm = x86t_elt();
    let o = opts(5, Backend::Explicit);
    let sequential = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 1);
    assert!(!sequential.elts.is_empty());
    for (balance, partition_size) in [
        (Balance::Mass, None),
        (Balance::Depth, None),
        (Balance::Mass, Some(13)),
    ] {
        let mut o = opts(5, Backend::Explicit);
        o.balance = balance;
        o.partition_size = partition_size;
        let streamed = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 4);
        let tag = format!("balance={balance:?} partition_size={partition_size:?}");
        assert_eq!(fingerprint(&sequential), fingerprint(&streamed), "{tag}");
        assert_eq!(sequential.stats.programs, streamed.stats.programs, "{tag}");
        assert_eq!(
            sequential.stats.executions, streamed.stats.executions,
            "{tag}"
        );
        assert_eq!(
            sequential.stats.forbidden, streamed.stats.forbidden,
            "{tag}"
        );
        assert_eq!(sequential.stats.minimal, streamed.stats.minimal, "{tag}");
    }
}

#[test]
fn balance_modes_are_byte_identical() {
    // Mass-estimated and depth splitting are pure scheduling: same
    // suite, byte for byte, as the sequential engine — on both
    // backends.
    let mtm = x86t_elt();
    for backend in [Backend::Explicit, Backend::Relational] {
        let reference = {
            let o = opts(4, backend);
            fingerprint(&synthesize_suite_jobs(&mtm, "invlpg", &o, 1))
        };
        for balance in [Balance::Mass, Balance::Depth] {
            let mut o = opts(4, backend);
            o.balance = balance;
            let suite = synthesize_suite_jobs(&mtm, "invlpg", &o, 4);
            assert_eq!(
                reference,
                fingerprint(&suite),
                "{backend:?} balance={balance:?}"
            );
        }
    }
}

#[test]
fn fused_all_axiom_run_matches_per_axiom_sequential_suites() {
    // The cross-axiom acceptance bar: one fused run (no shared plan
    // materialized up front) reproduces every per-axiom sequential
    // suite, counters included, at several worker counts.
    let mtm = x86t_elt();
    let o = opts(4, Backend::Explicit);
    let sequential: Vec<(String, String)> = mtm
        .axioms()
        .iter()
        .map(|ax| {
            (
                ax.name.clone(),
                fingerprint(&synthesize_suite_jobs(&mtm, &ax.name, &o, 1)),
            )
        })
        .collect();
    for jobs in [2usize, 4, 8] {
        let fused = synthesize_all_jobs(&mtm, &o, jobs);
        assert_eq!(fused.len(), sequential.len(), "jobs={jobs}");
        for (axiom, reference) in &sequential {
            let suite = &fused[axiom];
            assert_eq!(reference, &fingerprint(suite), "{axiom} jobs={jobs}");
            assert!(!suite.stats.timed_out, "{axiom} jobs={jobs}");
            let solo = synthesize_suite_jobs(&mtm, axiom, &o, 1);
            assert_eq!(suite.stats.programs, solo.stats.programs, "{axiom}");
            assert_eq!(suite.stats.executions, solo.stats.executions, "{axiom}");
            assert_eq!(suite.stats.forbidden, solo.stats.forbidden, "{axiom}");
            assert_eq!(suite.stats.minimal, solo.stats.minimal, "{axiom}");
        }
    }
}

#[test]
fn fused_all_axiom_run_matches_the_eager_shared_plan_baseline() {
    let mtm = x86t_elt();
    let o = opts(4, Backend::Explicit);
    let eager = transform_par::synthesize_all_jobs_eager(&mtm, &o, 4);
    let fused = synthesize_all_jobs(&mtm, &o, 4);
    assert_eq!(eager.len(), fused.len());
    for (axiom, a) in &eager {
        let b = &fused[axiom];
        assert_eq!(fingerprint(a), fingerprint(b), "{axiom}");
        assert_eq!(a.stats.programs, b.stats.programs, "{axiom}");
        assert_eq!(a.stats.executions, b.stats.executions, "{axiom}");
    }
}

#[test]
fn eager_reference_path_matches_the_fused_pipeline() {
    let mtm = x86t_elt();
    for backend in [Backend::Explicit, Backend::Relational] {
        let o = opts(4, backend);
        let eager = transform_par::synthesize_suite_jobs_eager(&mtm, "invlpg", &o, 4);
        let fused = synthesize_suite_jobs(&mtm, "invlpg", &o, 4);
        assert_eq!(
            fingerprint(&eager),
            fingerprint(&fused),
            "{backend:?}: two-phase and fused pipelines diverge"
        );
        assert_eq!(eager.stats.programs, fused.stats.programs);
        assert_eq!(eager.stats.executions, fused.stats.executions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any job count — odd, even, oversubscribed far past the core
    /// count — reproduces the sequential suite.
    #[test]
    fn arbitrary_job_counts_stay_deterministic(jobs in 2usize..24) {
        let mtm = x86t_elt();
        let o = opts(4, Backend::Explicit);
        let reference = fingerprint(&synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 1));
        let suite = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, jobs);
        prop_assert_eq!(reference, fingerprint(&suite), "jobs={}", jobs);
    }

    /// Jobs × partition size together: still the sequential suite.
    #[test]
    fn job_and_partition_size_grid_stays_deterministic(
        jobs in 2usize..12,
        partition_size in 1usize..64,
    ) {
        let mtm = x86t_elt();
        let mut o = opts(4, Backend::Explicit);
        o.partition_size = Some(partition_size);
        let reference = {
            let o = opts(4, Backend::Explicit);
            fingerprint(&synthesize_suite_jobs(&mtm, "invlpg", &o, 1))
        };
        let suite = synthesize_suite_jobs(&mtm, "invlpg", &o, jobs);
        prop_assert_eq!(
            reference,
            fingerprint(&suite),
            "jobs={} partition_size={}",
            jobs,
            partition_size
        );
    }

    /// Jobs × partition size × balance mode, through the fused
    /// all-axiom run: every per-axiom suite stays the sequential one.
    #[test]
    fn fused_all_jobs_partition_balance_grid_stays_deterministic(
        jobs in 2usize..10,
        partition_size in 0usize..48,
        depth_balance in any::<bool>(),
    ) {
        let mtm = x86t_elt();
        let mut o = opts(4, Backend::Explicit);
        // 0 stands in for "autotune" (the engine takes None).
        o.partition_size = (partition_size > 0).then_some(partition_size);
        o.balance = if depth_balance { Balance::Depth } else { Balance::Mass };
        let fused = synthesize_all_jobs(&mtm, &o, jobs);
        for ax in mtm.axioms() {
            let reference = {
                let o = opts(4, Backend::Explicit);
                fingerprint(&synthesize_suite_jobs(&mtm, &ax.name, &o, 1))
            };
            prop_assert_eq!(
                reference,
                fingerprint(&fused[&ax.name]),
                "{} jobs={} partition_size={:?} balance={:?}",
                &ax.name, jobs, partition_size, o.balance
            );
        }
    }
}
