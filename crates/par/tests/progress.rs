//! The telemetry layer's contract: progress counters are monotone over
//! a live run, the final snapshot agrees with the returned
//! [`StreamMetrics`], and observing a run never changes its output.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use transform_par::{
    synthesize_all_jobs, synthesize_all_jobs_observed, synthesize_axioms_streamed_observed,
    synthesize_suite_jobs, synthesize_suite_jobs_observed, AxiomState, ProgressSnapshot,
    ProgressState, SuiteSink,
};
use transform_synth::{ShardStats, Suite, SuiteRecord, SynthOptions};
use transform_x86::x86t_elt;

fn fingerprint(suite: &Suite) -> String {
    let mut out = format!("axiom {}\n", suite.axiom);
    for elt in &suite.elts {
        out.push_str(&format!(
            "program {:?}\nwitness {:?}\nviolated {:?}\n",
            elt.program,
            elt.witness.to_parts(),
            elt.violated,
        ));
    }
    out
}

fn opts(bound: usize) -> SynthOptions {
    let mut o = SynthOptions::new(bound);
    o.enumeration.allow_fences = false;
    o.enumeration.allow_rmw = false;
    o
}

/// Every counter that must never move backwards between two samples.
fn assert_monotone(prev: &ProgressSnapshot, next: &ProgressSnapshot) {
    assert!(next.partitions_retired >= prev.partitions_retired);
    assert!(next.mass_retired >= prev.mass_retired);
    assert!(next.programs >= prev.programs);
    assert!(next.items_planned >= prev.items_planned);
    assert!(next.peak_live_candidates >= prev.peak_live_candidates);
    assert!(next.batches >= prev.batches);
    assert!(next.partitions_total >= prev.partitions_total);
    assert!(next.mass_total >= prev.mass_total);
    for (p, n) in prev.axioms.iter().zip(&next.axioms) {
        assert_eq!(p.name, n.name);
        assert!(n.batches_done >= p.batches_done, "{}", n.name);
        assert!(n.items_examined >= p.items_examined, "{}", n.name);
        assert!(n.elts >= p.elts, "{}", n.name);
    }
}

struct NullSink;
impl SuiteSink for NullSink {
    fn shard_done(&self, _stats: ShardStats, _records: Vec<SuiteRecord>) {}
}

/// A sampler thread hammers `snapshot()` while the fused run executes:
/// every sampled counter is monotone, and the run's own output is
/// untouched by the observation.
#[test]
fn counters_are_monotone_under_concurrent_sampling() {
    let mtm = x86t_elt();
    let o = opts(4);
    let axioms: Vec<&str> = mtm.axioms().iter().map(|a| a.name.as_str()).collect();
    let progress = Arc::new(ProgressState::new(&axioms));
    let stop = Arc::new(AtomicBool::new(false));
    let samples = Arc::new(Mutex::new(Vec::new()));
    let sampler = {
        let progress = Arc::clone(&progress);
        let stop = Arc::clone(&stop);
        let samples = Arc::clone(&samples);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                samples.lock().unwrap().push(progress.snapshot());
                std::thread::yield_now();
            }
        })
    };
    let sinks: Vec<NullSink> = axioms.iter().map(|_| NullSink).collect();
    let sink_refs: Vec<&dyn SuiteSink> = sinks.iter().map(|s| s as &dyn SuiteSink).collect();
    let (stats, metrics) =
        synthesize_axioms_streamed_observed(&mtm, &axioms, &o, 4, &sink_refs, &progress);
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread");

    let mut samples = std::mem::take(&mut *samples.lock().unwrap());
    samples.push(progress.snapshot());
    assert!(samples.len() >= 2, "sampler never ran");
    for pair in samples.windows(2) {
        assert_monotone(&pair[0], &pair[1]);
    }

    // The final snapshot IS the returned metrics.
    let last = samples.last().unwrap();
    assert_eq!(metrics.axioms, axioms.len());
    assert_eq!(metrics.partitions, last.partitions_total);
    assert_eq!(metrics.cut_at_partition, last.cut_at_partition);
    assert_eq!(metrics.batches, last.batches);
    assert_eq!(metrics.peak_live_candidates, last.peak_live_candidates);
    assert_eq!(metrics.final_batch_size, last.final_batch_size);

    // And the run itself settled: all mass retired, every axiom
    // complete, per-axiom item counts equal to the examined totals.
    assert_eq!(last.partitions_retired, last.partitions_total);
    assert_eq!(last.mass_retired, last.mass_total);
    assert_eq!(last.live_candidates, 0);
    assert_eq!(last.frontier_depth, 0);
    for (ax, st) in last.axioms.iter().zip(&stats) {
        assert_eq!(ax.state, AxiomState::Complete, "{}", ax.name);
        let items: usize = st.shards.iter().map(|s| s.items).sum();
        assert_eq!(ax.items_examined, items, "{}", ax.name);
        assert_eq!(ax.batches_done, st.shards.len(), "{}", ax.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Observation changes nothing: at any worker count, the observed
    /// run's suites are byte-identical to the unobserved ones, and the
    /// final snapshot's ELT counts match the suites.
    #[test]
    fn observed_runs_are_byte_identical(jobs in 1usize..5) {
        let mtm = x86t_elt();
        let o = opts(4);
        let axioms: Vec<&str> = mtm.axioms().iter().map(|a| a.name.as_str()).collect();
        let progress = Arc::new(ProgressState::new(&axioms));
        let observed = synthesize_all_jobs_observed(&mtm, &o, jobs, &progress);
        let plain = synthesize_all_jobs(&mtm, &o, jobs);
        prop_assert_eq!(observed.len(), plain.len());
        for (axiom, suite) in &observed {
            prop_assert_eq!(fingerprint(suite), fingerprint(&plain[axiom]), "{}", axiom);
        }
        let snap = progress.snapshot();
        for ax in &snap.axioms {
            prop_assert_eq!(ax.elts, observed[&ax.name].elts.len(), "{}", &ax.name);
            prop_assert_eq!(ax.state, AxiomState::Complete, "{}", &ax.name);
        }
    }

    /// Single-axiom observed synthesis equals the sequential engine —
    /// including at jobs = 1, where the observed path still runs the
    /// streamed pipeline.
    #[test]
    fn observed_single_suite_matches_sequential(jobs in 1usize..5) {
        let mtm = x86t_elt();
        let o = opts(4);
        let progress = Arc::new(ProgressState::new(&["sc_per_loc"]));
        let observed =
            synthesize_suite_jobs_observed(&mtm, "sc_per_loc", &o, jobs, &progress);
        let sequential = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 1);
        prop_assert_eq!(fingerprint(&observed), fingerprint(&sequential));
        prop_assert!(!observed.elts.is_empty());
    }
}
