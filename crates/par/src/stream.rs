//! The fused streaming pipeline: program *generation* runs inside the
//! work-stealing pool, not in front of it.
//!
//! The two-phase orchestrator (plan everything, then examine) keeps the
//! pool idle behind a single-threaded, memory-hungry enumeration pass.
//! Here the enumeration's prefix partitions ([`EnumSpace`]) are
//! themselves pool tasks: workers alternate between *enumerating* a
//! partition (materializing its programs with canonical keys, computed
//! once) and *examining* a batch of already-planned items, so SAT and
//! relational solving start while later partitions are still being
//! generated and peak live candidates stay bounded by partition size.
//!
//! # Determinism
//!
//! Every enumerated program has a stable position `(partition ordinal,
//! offset)` that is a pure function of the space — never of scheduling.
//! Partitions may be *enumerated* out of order, but they are *admitted*
//! strictly in ordinal order through the admitter — the same
//! first-occurrence-per-canonical-key scan the sequential planner runs —
//! so plan indices, dedup outcomes, and therefore the merged suite are
//! byte-identical to the sequential engine at every worker count and
//! batch size.
//!
//! # Deadlines
//!
//! A deadline cuts the plan at partition granularity: the first
//! partition whose worker observed the expiry is recorded
//! ([`StreamMetrics::cut_at_partition`]), every partition below it is
//! fully planned, and everything from it on is dropped — a timed-out
//! plan is a well-defined prefix of the deadline-free plan, not a
//! worker-race-dependent subset. Examination stays best-effort after
//! expiry, exactly like the sequential engine's mid-plan stop.
//!
//! # Autotuned batch granularity
//!
//! Admitted items are chunked into examine batches. With
//! `SynthOptions::partition_size = None` the chunk size adapts: each
//! retired batch reports its items/second, and the tuner sizes the next
//! batches to a fixed wall-clock slice — cheap bounds get large batches
//! (incremental-solver reuse), expensive ones get small, stealable
//! batches. A fixed size pins the granularity instead. Neither changes
//! any result, only scheduling.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use transform_core::axiom::Mtm;
use transform_synth::programs::{EnumSpace, KeyedProgram};
use transform_synth::{
    branches_co_pa, Examiner, ShardStats, SuiteRecord, SuiteStats, SynthOptions, SynthesizedElt,
    WorkItem,
};

use crate::SuiteSink;

/// Scheduling facts of one streamed run — everything the pipeline knows
/// that the (format-frozen) [`SuiteStats`] cannot carry.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamMetrics {
    /// Enumeration partitions in the space.
    pub partitions: usize,
    /// First partition cut by the deadline (`None`: enumeration ran to
    /// completion). Everything below it was fully planned.
    pub cut_at_partition: Option<usize>,
    /// Examine batches created (a deadline cut abandons queued batches,
    /// which stay counted here but produce no shard stats).
    pub batches: usize,
    /// Peak number of simultaneously materialized candidate programs
    /// (enumerated but not yet examined or dropped) — bounded by the
    /// lookahead window (twice the worker count) times the largest
    /// partition, not by the size of the enumeration. Best-effort on
    /// timed-out runs.
    pub peak_live_candidates: usize,
    /// The tuner's final batch size.
    pub final_batch_size: usize,
}

/// The deterministic dedup frontier: admits partitions in enumeration
/// order, keeping the first occurrence of each canonical key — exactly
/// the scan [`transform_synth::plan_from_keyed`] runs over the eager
/// enumeration, so admitted items carry the sequential plan's indices.
pub(crate) struct Admitter {
    symmetry: bool,
    seen: BTreeSet<Vec<u64>>,
    /// Programs admitted so far (the post-symmetry-reduction enumeration
    /// count — [`SuiteStats::programs`]).
    pub programs: usize,
    next_index: usize,
}

impl Admitter {
    pub fn new(symmetry: bool) -> Admitter {
        Admitter {
            symmetry,
            seen: BTreeSet::new(),
            programs: 0,
            next_index: 0,
        }
    }

    /// Admits one partition's programs, in order; returns the plan items
    /// they contribute (write-bearing first occurrences).
    pub fn admit(&mut self, keyed: Vec<KeyedProgram>) -> Vec<WorkItem> {
        let mut items = Vec::new();
        for kp in keyed {
            if self.symmetry {
                // Enumeration-level symmetry reduction across partitions:
                // a later occurrence of a key is not even counted.
                let key = kp.key.expect("symmetry reduction keys every program");
                if !self.seen.insert(key.clone()) {
                    continue;
                }
                self.programs += 1;
                if kp.has_write {
                    items.push(WorkItem {
                        index: self.next_index,
                        program: kp.program,
                        key,
                    });
                    self.next_index += 1;
                }
            } else {
                // No symmetry reduction: every program counts, but the
                // plan still keeps one item per canonical key.
                self.programs += 1;
                let Some(key) = kp.key else { continue };
                if !self.seen.insert(key.clone()) {
                    continue;
                }
                items.push(WorkItem {
                    index: self.next_index,
                    program: kp.program,
                    key,
                });
                self.next_index += 1;
            }
        }
        items
    }
}

/// Wall-clock slice one examine batch should fill.
const TARGET_BATCH: Duration = Duration::from_millis(50);
/// Batch-size clamp and the pre-measurement default.
const MIN_BATCH: usize = 8;
const MAX_BATCH: usize = 8192;
const DEFAULT_BATCH: usize = 64;
/// EWMA smoothing for the observed examination rate.
const EWMA_ALPHA: f64 = 0.3;

/// Adapts examine-batch granularity to the measured per-item cost.
struct Tuner {
    fixed: Option<usize>,
    /// Items per second, exponentially smoothed.
    rate: Option<f64>,
}

impl Tuner {
    fn new(fixed: Option<usize>) -> Tuner {
        Tuner { fixed, rate: None }
    }

    fn batch_size(&self) -> usize {
        if let Some(n) = self.fixed {
            return n.max(1);
        }
        match self.rate {
            Some(rate) => {
                ((rate * TARGET_BATCH.as_secs_f64()) as usize).clamp(MIN_BATCH, MAX_BATCH)
            }
            None => DEFAULT_BATCH,
        }
    }

    fn observe(&mut self, items: usize, elapsed: Duration) {
        if self.fixed.is_some() || items == 0 {
            return;
        }
        let rate = items as f64 / elapsed.as_secs_f64().max(1e-9);
        self.rate = Some(match self.rate {
            Some(prev) => prev + EWMA_ALPHA * (rate - prev),
            None => rate,
        });
    }
}

/// A batch of plan items examined on one [`Examiner`] (one incremental
/// solver). Batches never span partitions, so every item in a batch
/// shares its first-thread shape — the prefix affinity that makes
/// solver reuse pay.
struct Batch {
    shard: usize,
    items: Vec<WorkItem>,
}

enum Task {
    Enumerate(usize),
    Examine(Batch),
}

struct State {
    /// Next partition ordinal to hand out.
    next_enum: usize,
    /// Partitions handed out but not yet resolved.
    enumerating: usize,
    /// Enumerated partitions waiting for the frontier (`None` = cut by
    /// the deadline).
    resolved: BTreeMap<usize, Option<Vec<KeyedProgram>>>,
    /// Next ordinal the admitter must process.
    frontier: usize,
    /// First partition the deadline cut, if any.
    cut_at: Option<usize>,
    /// The deadline struck (enumeration cut or examination stopped):
    /// drain everything and let workers exit.
    expired: bool,
    admitter: Admitter,
    exam: VecDeque<Batch>,
    next_shard: usize,
    batches: usize,
    live: usize,
    peak_live: usize,
    tuner: Tuner,
}

struct Pipeline<'s> {
    space: &'s EnumSpace,
    deadline: Option<Instant>,
    /// Lookahead backpressure: partitions may be *enumerated* at most
    /// this far beyond the dedup frontier. Without it, one slow head
    /// partition would let the other workers buffer the entire rest of
    /// the space ahead of the stalled frontier — peak live candidates
    /// would degrade to the full enumeration, exactly what streaming is
    /// meant to avoid. With it, live candidates are bounded by
    /// `window` × the largest partition, independent of the bound.
    window: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl<'s> Pipeline<'s> {
    fn new(
        space: &'s EnumSpace,
        deadline: Option<Instant>,
        jobs: usize,
        fixed_batch: Option<usize>,
    ) -> Self {
        Pipeline {
            space,
            deadline,
            window: (2 * jobs).max(2),
            state: Mutex::new(State {
                next_enum: 0,
                enumerating: 0,
                resolved: BTreeMap::new(),
                frontier: 0,
                cut_at: None,
                expired: false,
                admitter: Admitter::new(space.options().symmetry_reduction),
                exam: VecDeque::new(),
                next_shard: 0,
                batches: 0,
                live: 0,
                peak_live: 0,
                tuner: Tuner::new(fixed_batch),
            }),
            cv: Condvar::new(),
        }
    }

    fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// The next unit of work, examination first (it frees live
    /// candidates; enumeration creates them). `None` once nothing can
    /// produce further work.
    fn next_task(&self) -> Option<Task> {
        let mut st = self.state.lock().expect("pipeline lock is never poisoned");
        loop {
            if let Some(batch) = st.exam.pop_front() {
                return Some(Task::Examine(batch));
            }
            if !st.expired
                && st.next_enum < self.space.partition_count()
                && st.next_enum < st.frontier + self.window
            {
                let ord = st.next_enum;
                st.next_enum += 1;
                st.enumerating += 1;
                return Some(Task::Enumerate(ord));
            }
            let enumeration_settled =
                st.expired || (st.frontier == self.space.partition_count() && st.enumerating == 0);
            if enumeration_settled && st.exam.is_empty() {
                return None;
            }
            st = self.cv.wait(st).expect("pipeline lock is never poisoned");
        }
    }

    /// One partition's outcome: its keyed programs, or `None` when its
    /// worker saw the deadline expired before enumerating it.
    fn resolve(&self, ordinal: usize, outcome: Option<Vec<KeyedProgram>>) {
        let mut st = self.state.lock().expect("pipeline lock is never poisoned");
        st.enumerating -= 1;
        if st.expired {
            self.cv.notify_all();
            return; // everything past the cut is discarded
        }
        if let Some(keyed) = &outcome {
            st.live += keyed.len();
            st.peak_live = st.peak_live.max(st.live);
        }
        st.resolved.insert(ordinal, outcome);
        // Advance the frontier: admit in strict ordinal order.
        while let Some(entry) = {
            let frontier = st.frontier;
            st.resolved.remove(&frontier)
        } {
            match entry {
                None => {
                    // The deadline's cut reached the frontier: the plan
                    // ends here, reproducibly.
                    st.cut_at = Some(st.frontier);
                    Self::expire(&mut st);
                    break;
                }
                Some(keyed) => {
                    let delivered = keyed.len();
                    let items = st.admitter.admit(keyed);
                    st.live -= delivered - items.len(); // dropped by dedup
                    let size = st.tuner.batch_size();
                    let mut items = items;
                    while !items.is_empty() {
                        let rest = items.split_off(size.min(items.len()));
                        let batch = Batch {
                            shard: st.next_shard,
                            items: std::mem::replace(&mut items, rest),
                        };
                        st.next_shard += 1;
                        st.batches += 1;
                        st.exam.push_back(batch);
                    }
                    st.frontier += 1;
                }
            }
        }
        self.cv.notify_all();
    }

    /// One batch retired (possibly cut short by the deadline).
    fn batch_done(&self, examined: usize, batch_len: usize, elapsed: Duration, cut: bool) {
        let mut st = self.state.lock().expect("pipeline lock is never poisoned");
        st.live = st.live.saturating_sub(batch_len);
        st.tuner.observe(examined, elapsed);
        if cut {
            // Examination hit the deadline: the plan ends at the current
            // frontier (when enumeration was still in flight), and all
            // queued work is abandoned.
            if st.cut_at.is_none() && st.frontier < self.space.partition_count() {
                st.cut_at = Some(st.frontier);
            }
            Self::expire(&mut st);
        }
        self.cv.notify_all();
    }

    /// The deadline struck: discard all queued work. Live accounting for
    /// the discarded tail is not maintained — metrics are best-effort on
    /// timed-out runs.
    fn expire(st: &mut State) {
        st.expired = true;
        st.resolved.clear();
        st.exam.clear();
    }
}

/// One pool worker: alternates between enumerating partitions and
/// examining batches until the pipeline drains.
#[allow(clippy::too_many_arguments)]
fn worker(
    pipeline: &Pipeline<'_>,
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    branch_co_pa: bool,
    claimed: &crate::dedup::KeySet,
    shard_stats: &Mutex<Vec<ShardStats>>,
    sink: &dyn SuiteSink,
) {
    while let Some(task) = pipeline.next_task() {
        match task {
            Task::Enumerate(ordinal) => {
                // Enumeration honors the deadline inside the partition
                // too; a partition whose enumeration saw the expiry is
                // partial, so its output is discarded and the partition
                // counts as cut — the plan stays a reproducible prefix.
                let outcome = (!pipeline.past_deadline())
                    .then(|| {
                        pipeline
                            .space
                            .enumerate_keyed_within(ordinal, pipeline.deadline)
                    })
                    .filter(|_| !pipeline.past_deadline());
                pipeline.resolve(ordinal, outcome);
            }
            Task::Examine(batch) => {
                let start = Instant::now();
                // One examiner — and, for the relational backend, one
                // incremental SAT solver — per batch.
                let mut examiner = Examiner::new(mtm, axiom, opts.backend, branch_co_pa);
                let mut stats = ShardStats::new(batch.shard);
                let mut records = Vec::new();
                let mut cut = false;
                for item in &batch.items {
                    if pipeline.past_deadline() {
                        cut = true;
                        break;
                    }
                    let mut examined = examiner.examine(&item.program);
                    stats.absorb(&examined);
                    if examined.witness.is_some() && !claimed.claim(&item.key) {
                        // The admitter guarantees key uniqueness; dropping
                        // a duplicate witness (never its counters) keeps
                        // the merge correct even if a future enumerator
                        // breaks that invariant.
                        debug_assert!(false, "duplicate canonical key in admitted plan");
                        examined.witness = None;
                    }
                    if let Some((witness, violated)) = examined.witness {
                        records.push(SuiteRecord {
                            index: item.index,
                            elt: SynthesizedElt {
                                program: item.program.clone(),
                                witness,
                                violated,
                            },
                        });
                    }
                }
                shard_stats
                    .lock()
                    .expect("stats lock is never poisoned")
                    .push(stats);
                sink.shard_done(stats, records);
                pipeline.batch_done(stats.items, batch.items.len(), start.elapsed(), cut);
            }
        }
    }
}

/// Runs the fused enumerate-while-examining pipeline for one axiom on
/// `jobs` workers, streaming retired batches into `sink`. Returns the
/// run's counters and scheduling metrics.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub(crate) fn run_streamed(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    sink: &dyn SuiteSink,
) -> (SuiteStats, StreamMetrics) {
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let jobs = jobs.max(1);
    let start = Instant::now();
    let deadline = opts.timeout.map(|t| start + t);
    let space =
        EnumSpace::with_target_partitions(&opts.enumeration, jobs * crate::PARTITIONS_PER_WORKER);
    let branch_co_pa = branches_co_pa(mtm);
    let pipeline = Pipeline::new(&space, deadline, jobs, opts.partition_size);
    let claimed = crate::dedup::KeySet::new();
    let shard_stats: Mutex<Vec<ShardStats>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let pipeline = &pipeline;
            let claimed = &claimed;
            let shard_stats = &shard_stats;
            scope.spawn(move || {
                worker(
                    pipeline,
                    mtm,
                    axiom,
                    opts,
                    branch_co_pa,
                    claimed,
                    shard_stats,
                    sink,
                );
            });
        }
    });

    let st = pipeline
        .state
        .into_inner()
        .expect("pipeline lock is never poisoned");
    let mut shards = shard_stats
        .into_inner()
        .expect("stats lock is never poisoned");
    shards.sort_by_key(|s| s.shard);
    let mut stats = SuiteStats::from_shards(st.admitter.programs, shards);
    stats.elapsed = start.elapsed();
    stats.timed_out = st.expired;
    let metrics = StreamMetrics {
        partitions: space.partition_count(),
        cut_at_partition: st.cut_at,
        batches: st.batches,
        peak_live_candidates: st.peak_live,
        final_batch_size: st.tuner.batch_size(),
    };
    sink.run_done(&stats);
    (stats, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_synth::programs::EnumOptions;
    use transform_synth::{plan_from_keyed, plan_key};

    fn enum_opts(bound: usize, symmetry: bool) -> EnumOptions {
        let mut o = EnumOptions::new(bound);
        o.allow_fences = false;
        o.allow_rmw = false;
        o.symmetry_reduction = symmetry;
        o
    }

    fn mtm() -> Mtm {
        transform_core::spec::parse_mtm(
            "mtm m { axiom sc_per_loc: acyclic(rf | co | fr | po_loc) }",
        )
        .expect("spec parses")
    }

    /// The admitter over in-order partitions equals the sequential
    /// planner's scan over the eager enumeration.
    #[test]
    fn admitter_reproduces_the_sequential_plan() {
        let m = mtm();
        for symmetry in [true, false] {
            let eo = enum_opts(4, symmetry);
            let space = EnumSpace::with_target_partitions(&eo, 32);
            let mut admitter = Admitter::new(symmetry);
            let mut items = Vec::new();
            for p in 0..space.partition_count() {
                items.extend(admitter.admit(space.enumerate_keyed(p)));
            }
            let keyed = transform_synth::programs::programs(&eo)
                .into_iter()
                .map(|p| {
                    let key = plan_key(&p);
                    (p, key)
                })
                .collect();
            let reference = plan_from_keyed(&m, "sc_per_loc", keyed, false);
            assert_eq!(admitter.programs, reference.programs, "symmetry {symmetry}");
            assert_eq!(items.len(), reference.items.len(), "symmetry {symmetry}");
            for (a, b) in items.iter().zip(&reference.items) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.key, b.key);
                assert_eq!(a.program, b.program);
            }
        }
    }

    /// Out-of-order delivery with a cut partition: the frontier admits
    /// the prefix below the cut and drops everything from it on.
    #[test]
    fn frontier_cuts_reproducibly_on_out_of_order_delivery() {
        let eo = enum_opts(4, true);
        let space = EnumSpace::with_target_partitions(&eo, 8);
        assert!(space.partition_count() >= 3, "space too small for the test");
        let pipeline = Pipeline::new(&space, None, 2, None);
        // Claim the first three enumeration tasks.
        for expect in 0..3 {
            match pipeline.next_task() {
                Some(Task::Enumerate(ord)) => assert_eq!(ord, expect),
                _ => panic!("expected an enumeration task"),
            }
        }
        // Deliver 2 first, cut 1, then deliver 0: only partition 0 may
        // be admitted, and the cut lands at ordinal 1.
        pipeline.resolve(2, Some(space.enumerate_keyed(2)));
        pipeline.resolve(1, None);
        pipeline.resolve(0, Some(space.enumerate_keyed(0)));
        let st = pipeline.state.into_inner().expect("lock");
        assert_eq!(st.cut_at, Some(1));
        assert!(st.expired);
        let mut reference = Admitter::new(true);
        let expected_items = reference.admit(space.enumerate_keyed(0)).len();
        assert_eq!(st.admitter.programs, reference.programs);
        let queued: usize = st.exam.iter().map(|b| b.items.len()).sum();
        assert_eq!(queued, expected_items);
    }

    #[test]
    fn tuner_targets_the_batch_slice() {
        let mut tuner = Tuner::new(None);
        assert_eq!(tuner.batch_size(), DEFAULT_BATCH);
        // 1000 items/second → 50 items per 50 ms slice, clamped to ≥ 8.
        tuner.observe(1000, Duration::from_secs(1));
        assert_eq!(tuner.batch_size(), 50);
        // Very slow items clamp to the minimum, very fast to the maximum.
        let mut slow = Tuner::new(None);
        slow.observe(1, Duration::from_secs(10));
        assert_eq!(slow.batch_size(), MIN_BATCH);
        let mut fast = Tuner::new(None);
        fast.observe(10_000_000, Duration::from_millis(1));
        assert_eq!(fast.batch_size(), MAX_BATCH);
        // A fixed size ignores observations.
        let mut fixed = Tuner::new(Some(5));
        fixed.observe(1000, Duration::from_secs(1));
        assert_eq!(fixed.batch_size(), 5);
    }
}
