//! The fused streaming pipeline: program *generation* runs inside the
//! work-stealing pool, not in front of it — for one axiom or for every
//! axiom of an MTM at once.
//!
//! The two-phase orchestrator (plan everything, then examine) keeps the
//! pool idle behind a single-threaded, memory-hungry enumeration pass.
//! Here the enumeration's prefix partitions ([`EnumSpace`]) are
//! themselves pool tasks: workers alternate between *enumerating* a
//! partition (materializing its programs with canonical keys, computed
//! once) and *examining* an `(axiom, batch)` work item, so SAT and
//! relational solving start while later partitions are still being
//! generated and peak live candidates stay bounded by partition size.
//!
//! # The fused cross-axiom run
//!
//! The synthesis plan is axiom-independent (it keeps write-bearing
//! canonical first occurrences), so a multi-axiom run enumerates every
//! partition **once** and fans each admitted chunk out as one examine
//! batch *per axiom* — no shared plan is materialized before workers
//! start, and an axiom whose batches all retire is finished
//! immediately: its [`SuiteSink::run_done`] fires from the pool (the
//! per-axiom seal + push-on-seal hook), not at the end of the whole
//! run. Admitted chunks are shared by reference across axioms, so the
//! multi-axiom run holds each candidate program in memory once.
//!
//! # Determinism
//!
//! Every enumerated program has a stable position `(partition ordinal,
//! offset)` that is a pure function of the space — never of scheduling.
//! Partitions may be *enumerated* out of order, but they are *admitted*
//! strictly in ordinal order through the admitter — the same
//! first-occurrence-per-canonical-key scan the sequential planner runs —
//! so plan indices, dedup outcomes, and therefore every per-axiom suite
//! are byte-identical to the sequential engine at every worker count,
//! batch size, and balance mode.
//!
//! # Deadlines
//!
//! A deadline cuts the plan at partition granularity: the first
//! partition whose worker observed the expiry is recorded
//! ([`StreamMetrics::cut_at_partition`]), every partition below it is
//! fully planned, and everything from it on is dropped — a timed-out
//! plan is a well-defined prefix of the deadline-free plan, not a
//! worker-race-dependent subset. The cut is shared by every axiom of a
//! fused run (they examine the same plan). Examination stays
//! best-effort after expiry, exactly like the sequential engine's
//! mid-plan stop — but an axiom that already retired its whole schedule
//! before the expiry stays complete.
//!
//! # Autotuned batch granularity
//!
//! Admitted items are chunked into examine batches. With
//! `SynthOptions::partition_size = None` the chunk size adapts: each
//! retired batch reports its items/second, and the tuner sizes the next
//! batches to a fixed wall-clock slice — cheap bounds get large batches
//! (incremental-solver reuse), expensive ones get small, stealable
//! batches. A fixed size pins the granularity instead. Neither changes
//! any result, only scheduling.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use transform_core::axiom::Mtm;
use transform_synth::programs::{EnumSpace, KeyedProgram, NodeSpan, NodeStream};
use transform_synth::{
    branches_co_pa, Examiner, ShardStats, SuiteRecord, SuiteStats, SynthOptions, SynthesizedElt,
    WorkItem,
};

use crate::progress::{AxiomState, JournalEventKind, ProgressSnapshot, ProgressState};
use crate::SuiteSink;

/// Scheduling facts of one streamed run — everything the pipeline knows
/// that the (format-frozen) [`SuiteStats`] cannot carry.
///
/// This is the *final snapshot* of the run's [`ProgressState`]
/// ([`StreamMetrics::from_snapshot`]): the pipeline maintains one set
/// of counters, observers sample it live, and the returned metrics are
/// its value after the last worker exits — live telemetry and the final
/// record can never disagree.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamMetrics {
    /// Axioms sharing the run (1 for a single-suite synthesis).
    pub axioms: usize,
    /// Enumeration partitions in the space.
    pub partitions: usize,
    /// First partition cut by the deadline (`None`: enumeration ran to
    /// completion). Everything below it was fully planned.
    pub cut_at_partition: Option<usize>,
    /// Examine batches created across all axioms (a deadline cut
    /// abandons queued batches, which stay counted here but produce no
    /// shard stats).
    pub batches: usize,
    /// Peak number of simultaneously materialized candidate programs
    /// (enumerated but not yet examined by every axiom, or dropped) —
    /// bounded by the lookahead window (twice the worker count) times
    /// the largest partition, not by the size of the enumeration.
    ///
    /// Exact on timed-out runs too: a partition that was materialized
    /// and then discarded by the deadline cut (resolved behind the cut
    /// point, or delivered after expiry) is counted at its moment of
    /// materialization, and the discarded tail leaves the live count
    /// the moment it is dropped.
    pub peak_live_candidates: usize,
    /// The tuner's final batch size.
    pub final_batch_size: usize,
}

impl StreamMetrics {
    /// Builds the metrics from a progress snapshot — the identity that
    /// keeps live telemetry and the final record one set of numbers.
    /// `axioms` counts the snapshot's tracked axioms; fused runs over a
    /// subset (the store's cache-miss path) overwrite it with the
    /// number actually run.
    pub fn from_snapshot(snap: &ProgressSnapshot) -> StreamMetrics {
        StreamMetrics {
            axioms: snap.axioms.len(),
            partitions: snap.partitions_total,
            cut_at_partition: snap.cut_at_partition,
            batches: snap.batches,
            peak_live_candidates: snap.peak_live_candidates,
            final_batch_size: snap.final_batch_size,
        }
    }
}

/// One axiom's share of a warm-start seed: the parent suite's records
/// (plan indices in the *parent* run's numbering, strictly increasing)
/// and its aggregate counters, which the warm run splices in as one
/// synthetic shard instead of re-examining the parent's plan items.
#[derive(Clone, Debug)]
pub struct WarmParent {
    /// The parent suite's records, sorted by plan index (the order
    /// [`crate::SuiteSink::shard_done`] consumers merge by).
    pub records: Vec<SuiteRecord>,
    /// The parent run's plan-item total (sum of its shards' `items`).
    pub items: usize,
    /// The parent run's execution total.
    pub executions: usize,
    /// The parent run's forbidden-execution total.
    pub forbidden: usize,
    /// The parent run's minimality-pass total.
    pub minimal: usize,
}

/// A warm-start seed derived from a sealed bound-`parent_bound` run:
/// the per-node admission digest plus each axiom's parent suite. The
/// warm run skips every enumeration node the parent bound covers,
/// replays only the digest (never the parent's programs or keys — the
/// enumeration order makes covered-node keys disjoint from new ones),
/// and splices each parent suite back in with its plan indices rebased
/// into the child numbering.
#[derive(Clone, Debug)]
pub struct WarmSeed {
    /// The bound the parent run was synthesized at.
    pub parent_bound: usize,
    /// Per covered node, in enumeration (admission) order: the programs
    /// the parent admitted there and the plan items it created there —
    /// [`RunArtifacts::node_counts`] of the parent run.
    pub node_counts: Vec<(u64, u64)>,
    /// One entry per run axiom, in run-axiom order.
    pub parents: Vec<WarmParent>,
}

/// Byproducts of a streamed run that feed the *next* bound's warm
/// start, alongside the [`SuiteStats`] the run returns.
#[derive(Clone, Debug, Default)]
pub struct RunArtifacts {
    /// Per enumeration node, in admission order: (programs admitted,
    /// plan items created). This is the digest a bound-N+1 warm start
    /// consumes as [`WarmSeed::node_counts`]. Complete only when the
    /// run was not cut (`timed_out` on every stat is false); a cut run
    /// yields the admitted prefix.
    pub node_counts: Vec<(u64, u64)>,
    /// Warm runs only (`None` on cold runs): per axiom, the child plan
    /// index assigned to each parent record, in parent-record order —
    /// exactly the parent-map a delta store entry encodes.
    pub parent_maps: Option<Vec<Vec<u64>>>,
}

/// The deterministic dedup frontier: admits partitions in enumeration
/// order, keeping the first occurrence of each canonical key — exactly
/// the scan [`transform_synth::plan_from_keyed`] runs over the eager
/// enumeration, so admitted items carry the sequential plan's indices.
pub(crate) struct Admitter {
    symmetry: bool,
    seen: BTreeSet<Vec<u64>>,
    /// Programs admitted so far (the post-symmetry-reduction enumeration
    /// count — [`SuiteStats::programs`]).
    pub programs: usize,
    next_index: usize,
}

impl Admitter {
    pub fn new(symmetry: bool) -> Admitter {
        Admitter {
            symmetry,
            seen: BTreeSet::new(),
            programs: 0,
            next_index: 0,
        }
    }

    /// Admits one partition's programs, in order; returns the plan items
    /// they contribute (write-bearing first occurrences).
    pub fn admit(&mut self, keyed: Vec<KeyedProgram>) -> Vec<WorkItem> {
        let mut items = Vec::new();
        self.admit_node(keyed.into_iter(), &mut items);
        items
    }

    /// Admits one enumeration node's programs into `items`, returning
    /// this node's (programs admitted, plan items created) — one entry
    /// of the warm-start digest.
    fn admit_node(
        &mut self,
        keyed: impl Iterator<Item = KeyedProgram>,
        items: &mut Vec<WorkItem>,
    ) -> (u64, u64) {
        let programs_before = self.programs;
        let items_before = items.len();
        for kp in keyed {
            if self.symmetry {
                // Enumeration-level symmetry reduction across partitions:
                // a later occurrence of a key is not even counted.
                let key = kp.key.expect("symmetry reduction keys every program");
                if !self.seen.insert(key.clone()) {
                    continue;
                }
                self.programs += 1;
                if kp.has_write {
                    items.push(WorkItem {
                        index: self.next_index,
                        program: kp.program,
                        key,
                    });
                    self.next_index += 1;
                }
            } else {
                // No symmetry reduction: every program counts, but the
                // plan still keeps one item per canonical key.
                self.programs += 1;
                let Some(key) = kp.key else { continue };
                if !self.seen.insert(key.clone()) {
                    continue;
                }
                items.push(WorkItem {
                    index: self.next_index,
                    program: kp.program,
                    key,
                });
                self.next_index += 1;
            }
        }
        (
            (self.programs - programs_before) as u64,
            (items.len() - items_before) as u64,
        )
    }
}

/// Wall-clock slice one examine batch should fill.
const TARGET_BATCH: Duration = Duration::from_millis(50);
/// Batch-size clamp (in items) and the pre-measurement default.
const MIN_BATCH: usize = 8;
const MAX_BATCH: usize = 8192;
const DEFAULT_BATCH: usize = 64;
/// EWMA smoothing for the observed examination rate.
const EWMA_ALPHA: f64 = 0.3;

/// Static examination-cost proxy of one plan item: exponential in the
/// program's event count, because the candidate-execution count a
/// [`Examiner`] walks grows with the interleavings of those events —
/// a bound-6 item is worth many bound-4 items, not one more. The
/// absolute scale is irrelevant (the tuner calibrates weight/second
/// from measurements); only the ranking matters.
pub(crate) fn item_weight(item: &WorkItem) -> u64 {
    1u64 << item.program.size().min(24)
}

/// Adapts examine-batch granularity to the measured examination cost.
///
/// Batches are sized by *mass* (summed [`item_weight`]), not by item
/// count: the tuner smooths the observed examination weight/second and
/// aims each batch at the weight filling [`TARGET_BATCH`], so a chunk
/// of cheap small-bound items becomes one large batch while the same
/// item count of expensive deep items splits into small, stealable
/// ones. A fixed `partition_size` still pins the granularity in items
/// (the documented knob). Neither changes any result, only scheduling.
struct Tuner {
    fixed: Option<usize>,
    /// Examination weight per second, exponentially smoothed.
    rate: Option<f64>,
    /// Mean static weight of one plan item, exponentially smoothed —
    /// only for rendering the equivalent batch size in items.
    per_item: Option<f64>,
}

fn ewma(prev: Option<f64>, sample: f64) -> f64 {
    match prev {
        Some(prev) => prev + EWMA_ALPHA * (sample - prev),
        None => sample,
    }
}

impl Tuner {
    fn new(fixed: Option<usize>) -> Tuner {
        Tuner {
            fixed,
            rate: None,
            per_item: None,
        }
    }

    /// The weight one batch should carry to fill the target slice, or
    /// `None` before the first measurement / with a fixed item count.
    fn target_weight(&self) -> Option<f64> {
        if self.fixed.is_some() {
            return None;
        }
        self.rate.map(|rate| rate * TARGET_BATCH.as_secs_f64())
    }

    /// The equivalent batch size in items — the fixed size when pinned,
    /// the measurement-derived estimate otherwise (progress reporting
    /// and the pre-measurement default).
    fn batch_size(&self) -> usize {
        if let Some(n) = self.fixed {
            return n.max(1);
        }
        match (self.target_weight(), self.per_item) {
            (Some(target), Some(per_item)) => {
                ((target / per_item.max(1e-9)) as usize).clamp(MIN_BATCH, MAX_BATCH)
            }
            _ => DEFAULT_BATCH,
        }
    }

    /// One retired batch: `weight` is the summed [`item_weight`] of the
    /// `items` actually examined (the prefix, on a deadline cut).
    fn observe(&mut self, items: usize, weight: u64, elapsed: Duration) {
        if self.fixed.is_some() || items == 0 {
            return;
        }
        let secs = elapsed.as_secs_f64().max(1e-9);
        self.rate = Some(ewma(self.rate, weight as f64 / secs));
        self.per_item = Some(ewma(self.per_item, weight as f64 / items as f64));
    }
}

/// A batch of plan items examined for one axiom on one [`Examiner`]
/// (one incremental solver). The item chunk is shared by reference
/// across the axioms of a fused run; chunks never span partitions, so
/// every item in a batch shares its first-thread shape — the prefix
/// affinity that makes solver reuse pay.
struct Batch {
    axiom: usize,
    shard: usize,
    items: Arc<Vec<WorkItem>>,
}

enum Task {
    Enumerate(usize),
    Examine(Batch),
}

struct State {
    /// Next partition ordinal to hand out.
    next_enum: usize,
    /// Partitions handed out but not yet resolved.
    enumerating: usize,
    /// Enumerated partitions waiting for the frontier (`None` = cut by
    /// the deadline).
    resolved: BTreeMap<usize, Option<NodeStream>>,
    /// Next ordinal the admitter must process.
    frontier: usize,
    /// First partition the deadline cut, if any.
    cut_at: Option<usize>,
    /// The deadline struck (enumeration cut or examination stopped):
    /// drain everything and let workers exit.
    expired: bool,
    admitter: Admitter,
    exam: VecDeque<Batch>,
    /// Next chunk ordinal — the per-axiom shard id.
    next_shard: usize,
    /// Batches created, across all axioms.
    batches: usize,
    /// Outstanding (created, not yet retired) batches per axiom.
    remaining: Vec<usize>,
    /// An axiom whose batch was cut mid-way can never complete.
    axiom_cut: Vec<bool>,
    /// Axioms whose whole schedule retired cleanly (latched).
    complete: Vec<bool>,
    /// Live-candidate refcounts per chunk: (axioms outstanding, items).
    chunk_refs: BTreeMap<usize, (usize, usize)>,
    live: usize,
    peak_live: usize,
    /// Estimated subtree mass of the partitions admitted so far.
    mass_retired: u64,
    tuner: Tuner,
    /// Per enumeration node, in admission order: (programs, plan items)
    /// — the digest the next bound's warm start consumes.
    node_counts: Vec<(u64, u64)>,
    /// Warm runs: covered nodes admitted so far (cursor into
    /// [`WarmCtx::counts`]).
    warm_cursor: usize,
    /// Warm runs: per-axiom cursor into the parent's records.
    parent_cursors: Vec<usize>,
    /// Warm runs: per-axiom parent records rebased to child plan
    /// indices, accumulated until the synthetic-shard flush.
    parent_out: Vec<Vec<SuiteRecord>>,
    /// Warm runs: per-axiom child plan index of each parent record, in
    /// parent order — returned as [`RunArtifacts::parent_maps`].
    parent_maps: Vec<Vec<u64>>,
    /// Warm runs: the synthetic parent shard was handed to a worker.
    warm_flushed: bool,
}

/// Read-only warm-start context of one pipeline (derived from the
/// [`WarmSeed`] at construction).
struct WarmCtx {
    parent_bound: usize,
    /// Per covered node, in admission order: (programs, plan items).
    counts: Vec<(u64, u64)>,
    /// Prefix sums of the planned-item counts: `planned[j]` = parent
    /// plan items created strictly before covered node `j`. Length
    /// `counts.len() + 1`; the last entry is the parent's plan total.
    planned: Vec<u64>,
    /// Per run axiom, the parent suite to splice back in.
    parents: Vec<WarmParent>,
}

/// The parent-suite splice of a warm run, delivered by the worker that
/// admits the last covered node: one synthetic shard (id 0) per axiom
/// carrying the parent's aggregate counters and its rebased records.
struct WarmFlush {
    /// In run-axiom order.
    per_axiom: Vec<(ShardStats, Vec<SuiteRecord>)>,
}

impl State {
    /// No further batches will ever be created: every partition was
    /// admitted and none is still being enumerated.
    fn enum_settled(&self, partition_count: usize) -> bool {
        self.frontier == partition_count && self.enumerating == 0
    }

    /// Latches completion for every axiom whose schedule fully retired;
    /// returns the newly completed ones so the caller can finish them
    /// (assemble stats, fire `run_done`) outside the lock.
    fn newly_complete(&mut self, partition_count: usize) -> Vec<usize> {
        if !self.enum_settled(partition_count) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ai in 0..self.remaining.len() {
            if !self.complete[ai] && self.remaining[ai] == 0 && !self.axiom_cut[ai] {
                self.complete[ai] = true;
                out.push(ai);
            }
        }
        out
    }
}

struct Pipeline<'s> {
    space: &'s EnumSpace,
    axioms: usize,
    /// Per-partition estimated mass, by ordinal ([`EnumSpace::masses`]).
    masses: Vec<u64>,
    /// The run's live telemetry: published (relaxed stores) from inside
    /// every lock-held transition, sampled lock-free by observers. The
    /// final [`StreamMetrics`] is this state's last snapshot.
    progress: Arc<ProgressState>,
    /// Run-axiom index → progress slot (the observer's state may track
    /// more axioms than this run covers — cache hits, for one).
    slots: Vec<usize>,
    deadline: Option<Instant>,
    /// Lookahead backpressure: partitions may be *enumerated* at most
    /// this far beyond the dedup frontier. Without it, one slow head
    /// partition would let the other workers buffer the entire rest of
    /// the space ahead of the stalled frontier — peak live candidates
    /// would degrade to the full enumeration, exactly what streaming is
    /// meant to avoid. With it, live candidates are bounded by
    /// `window` × the largest partition, independent of the bound.
    window: usize,
    /// The partition-ordinal range this run *examines*: items admitted
    /// from partitions below `range.0` are dropped after feeding the
    /// dedup frontier (their admission state is what keeps plan indices
    /// global), and enumeration stops at `range.1`. A whole-space run
    /// is `(0, partition_count)`. This is the fleet's work unit: a
    /// worker leasing `[lo, hi)` replays the admission prefix `[0, lo)`
    /// and examines exactly the items planned in `[lo, hi)`, so
    /// per-range records concatenate into the byte-identical
    /// whole-space suite.
    range: (usize, usize),
    /// Warm-start context, `None` on cold runs.
    warm: Option<WarmCtx>,
    /// Warm runs: per-partition covered-node count (empty when cold) —
    /// a partition whose covered count equals its mass is skipped
    /// without enumerating.
    covered: Vec<u64>,
    state: Mutex<State>,
    cv: Condvar,
}

impl<'s> Pipeline<'s> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        space: &'s EnumSpace,
        axiom_names: &[&str],
        progress: Option<&Arc<ProgressState>>,
        deadline: Option<Instant>,
        jobs: usize,
        fixed_batch: Option<usize>,
        warm: Option<&WarmSeed>,
        range: Option<(usize, usize)>,
    ) -> Self {
        let range = range.unwrap_or((0, space.partition_count()));
        assert!(
            range.0 <= range.1 && range.1 <= space.partition_count(),
            "examine range {range:?} must lie within the {}-partition space",
            space.partition_count()
        );
        assert!(
            warm.is_none() || range == (0, space.partition_count()),
            "range-restricted runs are always cold (fleet jobs carry no warm seed)"
        );
        let axioms = axiom_names.len();
        // A seed with no covered nodes warms nothing: run cold.
        let warm = warm.filter(|w| !w.node_counts.is_empty());
        let warm_ctx = warm.map(|w| {
            assert_eq!(
                w.parents.len(),
                axioms,
                "one warm parent suite per run axiom"
            );
            let mut planned = Vec::with_capacity(w.node_counts.len() + 1);
            planned.push(0u64);
            for &(_, items) in &w.node_counts {
                planned.push(planned.last().expect("non-empty") + items);
            }
            WarmCtx {
                parent_bound: w.parent_bound,
                counts: w.node_counts.clone(),
                planned,
                parents: w.parents.clone(),
            }
        });
        let covered = match &warm_ctx {
            Some(ctx) => space.covered_masses(ctx.parent_bound),
            None => Vec::new(),
        };
        let progress = match progress {
            Some(p) => Arc::clone(p),
            None => Arc::new(ProgressState::new(axiom_names)),
        };
        let slots: Vec<usize> = axiom_names
            .iter()
            .map(|name| {
                progress
                    .slot_of(name)
                    .unwrap_or_else(|| panic!("progress state does not track axiom `{name}`"))
            })
            .collect();
        let masses = space.masses();
        use std::sync::atomic::Ordering::Relaxed;
        progress
            .partitions_total
            .store(space.partition_count(), Relaxed);
        progress.mass_total.store(
            masses.iter().fold(0u64, |a, &m| a.saturating_add(m)),
            Relaxed,
        );
        progress
            .final_batch_size
            .store(Tuner::new(fixed_batch).batch_size(), Relaxed);
        for &slot in &slots {
            progress.set_axiom_state(slot, AxiomState::Running);
        }
        let is_warm = warm_ctx.is_some();
        Pipeline {
            space,
            axioms,
            masses,
            progress,
            slots,
            deadline,
            window: (2 * jobs).max(2),
            range,
            warm: warm_ctx,
            covered,
            state: Mutex::new(State {
                next_enum: 0,
                enumerating: 0,
                resolved: BTreeMap::new(),
                frontier: 0,
                cut_at: None,
                expired: false,
                admitter: Admitter::new(space.options().symmetry_reduction),
                exam: VecDeque::new(),
                // Shard 0 is reserved for the warm splice of the parent
                // suite; examine shards start at 1 so the merged shard
                // order puts the parent's records' stats first.
                next_shard: if is_warm { 1 } else { 0 },
                batches: 0,
                // Warm runs owe one synthetic flush per axiom: the
                // pre-incremented slot keeps the axiom incomplete until
                // the worker that admits the last covered node delivers
                // the parent shard (and correctly never completes it if
                // a deadline cut lands first).
                remaining: vec![usize::from(is_warm); axioms],
                axiom_cut: vec![false; axioms],
                complete: vec![false; axioms],
                chunk_refs: BTreeMap::new(),
                live: 0,
                peak_live: 0,
                mass_retired: 0,
                tuner: Tuner::new(fixed_batch),
                node_counts: Vec::new(),
                warm_cursor: 0,
                parent_cursors: vec![0; axioms],
                parent_out: vec![Vec::new(); axioms],
                parent_maps: vec![Vec::new(); axioms],
                warm_flushed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mirrors the lock-held state into the progress atomics — called
    /// at the end of every state transition, while the lock is still
    /// held, so published counters advance in the same order the state
    /// does (each one individually monotone). Relaxed stores: observers
    /// only sample, they never synchronize with the run.
    fn publish(&self, st: &State) {
        use std::sync::atomic::Ordering::Relaxed;
        let p = &self.progress;
        p.partitions_retired.store(st.frontier, Relaxed);
        p.mass_retired.store(st.mass_retired, Relaxed);
        p.programs.store(st.admitter.programs, Relaxed);
        p.items_planned.store(st.admitter.next_index, Relaxed);
        p.frontier_depth.store(st.resolved.len(), Relaxed);
        p.live_candidates.store(st.live, Relaxed);
        p.peak_live_candidates.store(st.peak_live, Relaxed);
        p.batches.store(st.batches, Relaxed);
        if let Some(cut) = st.cut_at {
            p.cut_at_partition.store(cut, Relaxed);
        }
        p.final_batch_size.store(st.tuner.batch_size(), Relaxed);
    }

    fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// Materializes one partition's node stream. Warm runs skip the
    /// enumeration entirely for partitions every one of whose nodes the
    /// parent bound covers — the stream is just covered markers, whose
    /// count the mass table already knows.
    fn enumerate_partition(&self, ordinal: usize) -> NodeStream {
        if let Some(warm) = &self.warm {
            let covered = self.covered[ordinal];
            if covered > 0 && covered == self.masses[ordinal] {
                self.progress
                    .record(JournalEventKind::WarmSkip, None, ordinal as u64, covered, 0);
                return NodeStream {
                    nodes: vec![NodeSpan::Covered; covered as usize],
                    programs: Vec::new(),
                };
            }
            return self.space.enumerate_nodes_within(
                ordinal,
                Some(warm.parent_bound),
                self.deadline,
            );
        }
        self.space
            .enumerate_nodes_within(ordinal, None, self.deadline)
    }

    /// The count of admitted (post-symmetry-reduction) programs — final
    /// once enumeration settles, which is a precondition of any axiom
    /// completing.
    fn programs(&self) -> usize {
        self.state
            .lock()
            .expect("pipeline lock is never poisoned")
            .admitter
            .programs
    }

    /// The next unit of work, examination first (it frees live
    /// candidates; enumeration creates them). `None` once nothing can
    /// produce further work.
    fn next_task(&self) -> Option<Task> {
        let mut st = self.state.lock().expect("pipeline lock is never poisoned");
        loop {
            if let Some(batch) = st.exam.pop_front() {
                return Some(Task::Examine(batch));
            }
            if !st.expired
                && st.next_enum < self.range.1
                && st.next_enum < st.frontier + self.window
            {
                let ord = st.next_enum;
                st.next_enum += 1;
                st.enumerating += 1;
                return Some(Task::Enumerate(ord));
            }
            let enumeration_settled = st.expired || st.enum_settled(self.range.1);
            if enumeration_settled && st.exam.is_empty() {
                return None;
            }
            st = self.cv.wait(st).expect("pipeline lock is never poisoned");
        }
    }

    /// One partition's outcome: its node stream, or `None` when its
    /// worker saw the deadline expired before enumerating it. Returns
    /// the axioms this settles (an empty plan completes every axiom the
    /// moment the last partition is admitted) and, on the warm run's
    /// last covered node, the parent-suite splice the caller must
    /// deliver as each axiom's synthetic shard 0.
    fn resolve(
        &self,
        ordinal: usize,
        outcome: Option<NodeStream>,
    ) -> (Vec<usize>, Option<WarmFlush>) {
        let mut st = self.state.lock().expect("pipeline lock is never poisoned");
        st.enumerating -= 1;
        if let Some(ns) = &outcome {
            self.progress.record(
                JournalEventKind::PartitionEnumerated,
                None,
                ordinal as u64,
                ns.programs.len() as u64,
                0,
            );
        }
        if st.expired {
            // Everything past the cut is discarded — but this partition
            // *was* materialized, so it still counts toward the peak
            // (the whole point of `peak_live_candidates` is memory
            // pressure, and these programs existed).
            if let Some(ns) = &outcome {
                st.peak_live = st.peak_live.max(st.live + ns.programs.len());
            }
            self.publish(&st);
            self.cv.notify_all();
            return (Vec::new(), None);
        }
        if let Some(ns) = &outcome {
            st.live += ns.programs.len();
            st.peak_live = st.peak_live.max(st.live);
        }
        st.resolved.insert(ordinal, outcome);
        let mut flush = None;
        // Advance the frontier: admit in strict ordinal order.
        while let Some(entry) = {
            let frontier = st.frontier;
            st.resolved.remove(&frontier)
        } {
            match entry {
                None => {
                    // The deadline's cut reached the frontier: the plan
                    // ends here, reproducibly — for every axiom at once.
                    st.cut_at = Some(st.frontier);
                    self.progress
                        .record(JournalEventKind::Cut, None, st.frontier as u64, 0, 0);
                    Self::expire(&mut st);
                    break;
                }
                Some(ns) => {
                    let delivered = ns.programs.len();
                    let mut items = self.admit_stream(&mut st, ns);
                    st.live -= delivered - items.len(); // dropped by dedup
                    st.mass_retired = st.mass_retired.saturating_add(self.masses[st.frontier]);
                    self.progress.record(
                        JournalEventKind::PartitionRetired,
                        None,
                        st.frontier as u64,
                        self.masses[st.frontier],
                        0,
                    );
                    if st.frontier < self.range.0 {
                        // Below the leased range: this prefix partition
                        // only feeds the dedup frontier so plan indices
                        // stay global; nothing here is examined.
                        st.live -= items.len();
                        items.clear();
                    }
                    let target = st.tuner.target_weight();
                    while !items.is_empty() {
                        let take = match target {
                            // Greedy mass-weighted split: take items
                            // until the chunk's examination weight
                            // reaches the calibrated 50ms target.
                            Some(tw) => {
                                let mut weight = 0.0f64;
                                let mut n = 0usize;
                                while n < items.len()
                                    && n < MAX_BATCH
                                    && (n < MIN_BATCH || weight < tw)
                                {
                                    weight += item_weight(&items[n]) as f64;
                                    n += 1;
                                }
                                n
                            }
                            None => st.tuner.batch_size(),
                        };
                        let rest = items.split_off(take.min(items.len()).max(1));
                        let chunk = Arc::new(std::mem::replace(&mut items, rest));
                        let shard = st.next_shard;
                        st.next_shard += 1;
                        st.chunk_refs.insert(shard, (self.axioms, chunk.len()));
                        // One batch per axiom, axiom-major within the
                        // chunk, all sharing the item storage.
                        for axiom in 0..self.axioms {
                            st.exam.push_back(Batch {
                                axiom,
                                shard,
                                items: Arc::clone(&chunk),
                            });
                            st.batches += 1;
                            st.remaining[axiom] += 1;
                        }
                    }
                    st.frontier += 1;
                }
            }
        }
        // The last covered node passed the frontier: the parent suite
        // can be spliced in. The caller (not the lock holder) delivers
        // it through the sinks, exactly like a retired batch.
        if let Some(warm) = &self.warm {
            if !st.warm_flushed && st.warm_cursor == warm.counts.len() && !st.expired {
                st.warm_flushed = true;
                let per_axiom = warm
                    .parents
                    .iter()
                    .enumerate()
                    .map(|(ai, parent)| {
                        debug_assert_eq!(
                            st.parent_cursors[ai],
                            parent.records.len(),
                            "every parent record must rebase before the flush"
                        );
                        let stats = ShardStats {
                            shard: 0,
                            items: parent.items,
                            executions: parent.executions,
                            forbidden: parent.forbidden,
                            minimal: parent.minimal,
                        };
                        (stats, std::mem::take(&mut st.parent_out[ai]))
                    })
                    .collect();
                flush = Some(WarmFlush { per_axiom });
            }
        }
        // Head-of-line blocking: out-of-order delivery filled the whole
        // lookahead window behind a straggler frontier partition.
        if st.resolved.len() >= self.window && !st.expired {
            self.progress.record(
                JournalEventKind::FrontierStall,
                None,
                st.frontier as u64,
                st.resolved.len() as u64,
                0,
            );
        }
        let done = st.newly_complete(self.range.1);
        self.publish(&st);
        self.cv.notify_all();
        (done, flush)
    }

    /// Admits one partition's node stream in order: emitted nodes run
    /// the dedup scan (recording the per-node digest), covered nodes
    /// replay the parent digest — bumping the program and plan-item
    /// counters without materializing anything — and rebase the parent
    /// records planned there onto their child plan indices.
    fn admit_stream(&self, st: &mut State, ns: NodeStream) -> Vec<WorkItem> {
        let mut items = Vec::new();
        let mut programs = ns.programs.into_iter();
        let mut start = 0usize;
        for node in ns.nodes {
            match node {
                NodeSpan::Covered => {
                    let warm = self
                        .warm
                        .as_ref()
                        .expect("covered nodes only exist in warm runs");
                    let j = st.warm_cursor;
                    assert!(
                        j < warm.counts.len(),
                        "warm digest shorter than the covered node count"
                    );
                    let (node_programs, node_planned) = warm.counts[j];
                    let lo = warm.planned[j];
                    let hi = warm.planned[j + 1];
                    debug_assert_eq!(hi - lo, node_planned);
                    let base = st.admitter.next_index as u64;
                    for (ai, parent) in warm.parents.iter().enumerate() {
                        let cursor = &mut st.parent_cursors[ai];
                        while *cursor < parent.records.len()
                            && (parent.records[*cursor].index as u64) < hi
                        {
                            let rec = &parent.records[*cursor];
                            debug_assert!(
                                rec.index as u64 >= lo,
                                "parent records must be sorted by plan index"
                            );
                            let child_index = base + (rec.index as u64 - lo);
                            st.parent_maps[ai].push(child_index);
                            st.parent_out[ai].push(SuiteRecord {
                                index: child_index as usize,
                                elt: rec.elt.clone(),
                            });
                            *cursor += 1;
                        }
                    }
                    st.admitter.programs += node_programs as usize;
                    st.admitter.next_index += node_planned as usize;
                    st.node_counts.push((node_programs, node_planned));
                    st.warm_cursor += 1;
                }
                NodeSpan::Emitted { end } => {
                    let counts = st
                        .admitter
                        .admit_node(programs.by_ref().take(end - start), &mut items);
                    st.node_counts.push(counts);
                    start = end;
                }
            }
        }
        debug_assert!(programs.next().is_none(), "node spans cover every program");
        items
    }

    /// The synthetic parent shards of a warm run were delivered to
    /// every sink: release the per-axiom flush slots reserved at
    /// construction and return the axioms this completes. Also mirrors
    /// the parent's contribution into the live per-axiom telemetry so
    /// observers see totals consistent with the final stats.
    fn warm_flush_done(&self, delivered: &[(usize, usize)]) -> Vec<usize> {
        use std::sync::atomic::Ordering::Relaxed;
        for (ai, &(items, elts)) in delivered.iter().enumerate() {
            let ax = self.progress.axiom(self.slots[ai]);
            ax.items_examined.fetch_add(items, Relaxed);
            ax.elts.fetch_add(elts, Relaxed);
        }
        let mut st = self.state.lock().expect("pipeline lock is never poisoned");
        for ai in 0..self.axioms {
            st.remaining[ai] -= 1;
        }
        let done = st.newly_complete(self.range.1);
        self.publish(&st);
        self.cv.notify_all();
        done
    }

    /// One batch retired (possibly cut short by the deadline),
    /// `examined` of its plan items absorbed and `found` suite members
    /// emitted. Returns the axioms this completes.
    #[allow(clippy::too_many_arguments)]
    fn batch_done(
        &self,
        axiom: usize,
        shard: usize,
        examined: usize,
        weight: u64,
        found: usize,
        elapsed: Duration,
        cut: bool,
    ) -> Vec<usize> {
        use std::sync::atomic::Ordering::Relaxed;
        let ax = self.progress.axiom(self.slots[axiom]);
        ax.batches_done.fetch_add(1, Relaxed);
        ax.items_examined.fetch_add(examined, Relaxed);
        ax.elts.fetch_add(found, Relaxed);
        let mut st = self.state.lock().expect("pipeline lock is never poisoned");
        st.remaining[axiom] -= 1;
        // A candidate chunk stays live until its last axiom retires it.
        if let Some(refs) = st.chunk_refs.get_mut(&shard) {
            refs.0 -= 1;
            if refs.0 == 0 {
                let (_, len) = st.chunk_refs.remove(&shard).expect("present");
                st.live = st.live.saturating_sub(len);
            }
        }
        st.tuner.observe(examined, weight, elapsed);
        self.progress.record(
            JournalEventKind::BatchExamined,
            Some(self.slots[axiom] as u32),
            examined as u64,
            found as u64,
            elapsed.as_micros() as u64,
        );
        if cut {
            // Examination hit the deadline: this axiom's suite is
            // partial, the plan ends at the current frontier (when
            // enumeration was still in flight), and all queued work is
            // abandoned. Axioms whose schedule already retired stay
            // complete.
            st.axiom_cut[axiom] = true;
            if st.cut_at.is_none() && st.frontier < self.range.1 {
                st.cut_at = Some(st.frontier);
                self.progress
                    .record(JournalEventKind::Cut, None, st.frontier as u64, 0, 0);
            }
            Self::expire(&mut st);
        }
        let done = st.newly_complete(self.range.1);
        self.publish(&st);
        self.cv.notify_all();
        done
    }

    /// The deadline struck: discard all queued work, with exact live
    /// accounting for the discarded tail — enumerated-but-unadmitted
    /// partitions leave the live count, and queued batches drop their
    /// chunk references (a chunk whose every remaining reference was
    /// queued is freed now; in-flight batches still hold theirs and
    /// release them in [`Pipeline::batch_done`]). Abandoned batches
    /// stay counted in `remaining`, which (correctly) blocks their
    /// axioms from ever completing.
    fn expire(st: &mut State) {
        st.expired = true;
        for (_, outcome) in std::mem::take(&mut st.resolved) {
            if let Some(keyed) = outcome {
                st.live = st.live.saturating_sub(keyed.programs.len());
            }
        }
        for batch in std::mem::take(&mut st.exam) {
            if let Some(refs) = st.chunk_refs.get_mut(&batch.shard) {
                refs.0 -= 1;
                if refs.0 == 0 {
                    let (_, len) = st.chunk_refs.remove(&batch.shard).expect("present");
                    st.live = st.live.saturating_sub(len);
                }
            }
        }
    }
}

/// Everything a worker shares with its siblings for one fused run.
struct RunCtx<'r> {
    mtm: &'r Mtm,
    axioms: &'r [&'r str],
    opts: &'r SynthOptions,
    branch_co_pa: bool,
    start: Instant,
    /// Per-axiom streaming dedup of emitted ELT keys.
    claimed: &'r [crate::dedup::KeySet],
    /// Per-axiom shard counters, pushed as batches retire.
    shard_stats: &'r [Mutex<Vec<ShardStats>>],
    sinks: &'r [&'r dyn SuiteSink],
    /// Per-axiom final stats, written by whichever worker completes the
    /// axiom (the driver fills in timed-out axioms after the join).
    finished: &'r [Mutex<Option<SuiteStats>>],
}

/// One pool worker: alternates between enumerating partitions and
/// examining `(axiom, batch)` items until the pipeline drains.
fn worker(pipeline: &Pipeline<'_>, ctx: &RunCtx<'_>) {
    while let Some(task) = pipeline.next_task() {
        match task {
            Task::Enumerate(ordinal) => {
                // Enumeration honors the deadline inside the partition
                // too; a partition whose enumeration saw the expiry is
                // partial, so its output is discarded and the partition
                // counts as cut — the plan stays a reproducible prefix.
                let outcome = (!pipeline.past_deadline())
                    .then(|| pipeline.enumerate_partition(ordinal))
                    .filter(|_| !pipeline.past_deadline());
                let (done, flush) = pipeline.resolve(ordinal, outcome);
                for ai in done {
                    finish_axiom(pipeline, ctx, ai);
                }
                if let Some(flush) = flush {
                    // The warm splice: deliver the parent suite as each
                    // axiom's synthetic shard 0, then release the flush
                    // slots — which may complete axioms, exactly like a
                    // retiring batch.
                    let mut delivered = Vec::with_capacity(flush.per_axiom.len());
                    for (ai, (stats, records)) in flush.per_axiom.into_iter().enumerate() {
                        delivered.push((stats.items, records.len()));
                        ctx.shard_stats[ai]
                            .lock()
                            .expect("stats lock is never poisoned")
                            .push(stats);
                        ctx.sinks[ai].shard_done(stats, records);
                    }
                    for ai in pipeline.warm_flush_done(&delivered) {
                        finish_axiom(pipeline, ctx, ai);
                    }
                }
            }
            Task::Examine(batch) => {
                let ai = batch.axiom;
                let start = Instant::now();
                // One examiner — and, for the relational backend, one
                // incremental SAT solver — per batch.
                let mut examiner =
                    Examiner::new(ctx.mtm, ctx.axioms[ai], ctx.opts.backend, ctx.branch_co_pa);
                let mut stats = ShardStats::new(batch.shard);
                let mut records = Vec::new();
                let mut cut = false;
                let mut weight = 0u64;
                for item in batch.items.iter() {
                    if pipeline.past_deadline() {
                        cut = true;
                        break;
                    }
                    weight += item_weight(item);
                    let mut examined = examiner.examine(&item.program);
                    stats.absorb(&examined);
                    if examined.witness.is_some() && !ctx.claimed[ai].claim(&item.key) {
                        // The admitter guarantees key uniqueness; dropping
                        // a duplicate witness (never its counters) keeps
                        // the merge correct even if a future enumerator
                        // breaks that invariant.
                        debug_assert!(false, "duplicate canonical key in admitted plan");
                        examined.witness = None;
                    }
                    if let Some((witness, violated)) = examined.witness {
                        records.push(SuiteRecord {
                            index: item.index,
                            elt: SynthesizedElt {
                                program: item.program.clone(),
                                witness,
                                violated,
                            },
                        });
                    }
                }
                ctx.shard_stats[ai]
                    .lock()
                    .expect("stats lock is never poisoned")
                    .push(stats);
                let found = records.len();
                ctx.sinks[ai].shard_done(stats, records);
                for done in pipeline.batch_done(
                    ai,
                    batch.shard,
                    stats.items,
                    weight,
                    found,
                    start.elapsed(),
                    cut,
                ) {
                    finish_axiom(pipeline, ctx, done);
                }
            }
        }
    }
}

/// An axiom's whole schedule retired cleanly: assemble its final stats
/// and fire its sink's completion hook *now* — a fused run seals (and
/// pushes) each per-axiom suite as it finishes, not when the whole run
/// drains.
fn finish_axiom(pipeline: &Pipeline<'_>, ctx: &RunCtx<'_>, ai: usize) {
    let mut shards = ctx.shard_stats[ai]
        .lock()
        .expect("stats lock is never poisoned")
        .clone();
    shards.sort_by_key(|s| s.shard);
    let mut stats = SuiteStats::from_shards(pipeline.programs(), shards);
    stats.elapsed = ctx.start.elapsed();
    stats.timed_out = false;
    pipeline
        .progress
        .set_axiom_state(pipeline.slots[ai], AxiomState::Complete);
    pipeline.progress.record(
        JournalEventKind::AxiomComplete,
        Some(pipeline.slots[ai] as u32),
        stats.shards.iter().map(|s| s.items as u64).sum(),
        0,
        0,
    );
    ctx.sinks[ai].run_done(&stats);
    *ctx.finished[ai]
        .lock()
        .expect("finished lock is never poisoned") = Some(stats);
}

/// Runs the fused enumerate-while-examining pipeline for `axioms` (one
/// or many) on `jobs` workers, streaming retired batches into the
/// per-axiom sinks. Partitions are enumerated once and their admitted
/// chunks shared across axioms; each axiom's `run_done` fires the
/// moment its schedule retires. Returns per-axiom counters (in `axioms`
/// order), the run's scheduling metrics, and the artifacts a future
/// warm start consumes.
///
/// With a warm seed, partitions fully covered by the parent bound are
/// skipped, covered nodes replay the parent digest instead of
/// re-enumerating, and each parent suite is spliced back in as a
/// synthetic shard — the sealed result is byte-identical to the cold
/// run's (scheduling-dependent shard breakdowns aside), at any worker
/// count, with the deadline-cut semantics unchanged.
///
/// # Panics
///
/// Panics when any axiom is not part of `mtm`, `axioms` and `sinks`
/// disagree in length, or a warm seed's parent count disagrees with
/// `axioms`.
pub(crate) fn run_fused(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    jobs: usize,
    sinks: &[&dyn SuiteSink],
    progress: Option<&Arc<ProgressState>>,
    warm: Option<&WarmSeed>,
) -> (Vec<SuiteStats>, StreamMetrics, RunArtifacts) {
    run_fused_range(mtm, axioms, opts, jobs, jobs, sinks, progress, warm, None)
}

/// [`run_fused`] restricted to the partition range `range` (global
/// ordinals of the plan produced by `plan_jobs`-way partitioning): the
/// whole prefix `[0, range.1)` is enumerated and admitted so dedup
/// state and plan indices stay global, but only items admitted inside
/// `[range.0, range.1)` are examined and emitted. Ranges that tile the
/// space therefore produce shard results whose concatenation is exactly
/// the single-machine run — the fleet's work unit. `plan_jobs` fixes
/// the partition shape (the coordinator's choice, shared fleet-wide);
/// `jobs` is only this run's local thread count and never affects the
/// output.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fused_range(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    plan_jobs: usize,
    jobs: usize,
    sinks: &[&dyn SuiteSink],
    progress: Option<&Arc<ProgressState>>,
    warm: Option<&WarmSeed>,
    range: Option<(usize, usize)>,
) -> (Vec<SuiteStats>, StreamMetrics, RunArtifacts) {
    assert_eq!(axioms.len(), sinks.len(), "one sink per axiom");
    for axiom in axioms {
        assert!(
            mtm.axiom(axiom).is_some(),
            "axiom `{axiom}` is not part of {}",
            mtm.name()
        );
    }
    let jobs = jobs.max(1);
    let start = Instant::now();
    let deadline = opts.timeout.map(|t| start + t);
    let space = crate::space_for(opts, plan_jobs.max(1));
    let range = range.unwrap_or((0, space.partition_count()));
    let branch_co_pa = branches_co_pa(mtm);
    let pipeline = Pipeline::new(
        &space,
        axioms,
        progress,
        deadline,
        jobs,
        opts.partition_size,
        warm,
        Some(range),
    );
    pipeline.progress.record(
        JournalEventKind::RunStart,
        None,
        space.partition_count() as u64,
        space.total_mass(),
        jobs as u64,
    );
    if let Some(ctx) = &pipeline.warm {
        pipeline.progress.record(
            JournalEventKind::WarmStart,
            None,
            ctx.counts.len() as u64,
            *ctx.planned.last().expect("non-empty prefix sums"),
            ctx.parent_bound as u64,
        );
    }
    let claimed: Vec<crate::dedup::KeySet> =
        axioms.iter().map(|_| crate::dedup::KeySet::new()).collect();
    let shard_stats: Vec<Mutex<Vec<ShardStats>>> =
        axioms.iter().map(|_| Mutex::new(Vec::new())).collect();
    let finished: Vec<Mutex<Option<SuiteStats>>> =
        axioms.iter().map(|_| Mutex::new(None)).collect();
    let ctx = RunCtx {
        mtm,
        axioms,
        opts,
        branch_co_pa,
        start,
        claimed: &claimed,
        shard_stats: &shard_stats,
        sinks,
        finished: &finished,
    };

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let pipeline = &pipeline;
            let ctx = &ctx;
            scope.spawn(move || worker(pipeline, ctx));
        }
    });

    let progress = Arc::clone(&pipeline.progress);
    let slots = pipeline.slots.clone();
    let is_warm = pipeline.warm.is_some();
    let st = pipeline
        .state
        .into_inner()
        .expect("pipeline lock is never poisoned");
    let elapsed = start.elapsed();
    let all_stats: Vec<SuiteStats> = finished
        .into_iter()
        .enumerate()
        .zip(&shard_stats)
        .zip(sinks)
        .map(|(((ai, slot), shards), sink)| {
            match slot.into_inner().expect("finished lock is never poisoned") {
                Some(stats) => stats,
                None => {
                    // No worker latched completion. Either the deadline
                    // cut this axiom's plan or examination (timed out,
                    // best-effort partial counters), or the space was
                    // empty and no pipeline event ever fired (complete,
                    // trivially). Its run_done still fires exactly once
                    // — sinks never seal timed-out runs.
                    let complete = !st.expired
                        && st.enum_settled(range.1)
                        && st.remaining[ai] == 0
                        && !st.axiom_cut[ai];
                    progress.set_axiom_state(
                        slots[ai],
                        if complete {
                            AxiomState::Complete
                        } else {
                            AxiomState::Cut
                        },
                    );
                    let mut shards = shards.lock().expect("stats lock is never poisoned").clone();
                    shards.sort_by_key(|s| s.shard);
                    let mut stats = SuiteStats::from_shards(st.admitter.programs, shards);
                    stats.elapsed = elapsed;
                    stats.timed_out = !complete;
                    sink.run_done(&stats);
                    stats
                }
            }
        })
        .collect();
    progress.record(
        JournalEventKind::RunEnd,
        None,
        st.admitter.programs as u64,
        st.admitter.next_index as u64,
        st.batches as u64,
    );
    // The returned metrics ARE the final progress snapshot — one set of
    // counters from first live sample to final record.
    let mut metrics = StreamMetrics::from_snapshot(&progress.snapshot());
    metrics.axioms = axioms.len();
    let artifacts = RunArtifacts {
        node_counts: st.node_counts,
        parent_maps: is_warm.then_some(st.parent_maps),
    };
    (all_stats, metrics, artifacts)
}

/// Runs the fused pipeline for one axiom — the single-suite entry the
/// orchestrator and the store's cold path use.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub(crate) fn run_streamed(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    sink: &dyn SuiteSink,
    progress: Option<&Arc<ProgressState>>,
) -> (SuiteStats, StreamMetrics) {
    let (mut stats, metrics, _) = run_fused(mtm, &[axiom], opts, jobs, &[sink], progress, None);
    (stats.remove(0), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transform_synth::programs::EnumOptions;
    use transform_synth::{plan_from_keyed, plan_key};

    fn enum_opts(bound: usize, symmetry: bool) -> EnumOptions {
        let mut o = EnumOptions::new(bound);
        o.allow_fences = false;
        o.allow_rmw = false;
        o.symmetry_reduction = symmetry;
        o
    }

    fn mtm() -> Mtm {
        transform_core::spec::parse_mtm(
            "mtm m { axiom sc_per_loc: acyclic(rf | co | fr | po_loc) }",
        )
        .expect("spec parses")
    }

    /// A cold node stream for `ordinal` — what the worker feeds
    /// `resolve` on non-warm runs.
    fn ns(space: &EnumSpace, ordinal: usize) -> NodeStream {
        space.enumerate_nodes_within(ordinal, None, None)
    }

    /// The admitter over in-order partitions equals the sequential
    /// planner's scan over the eager enumeration.
    #[test]
    fn admitter_reproduces_the_sequential_plan() {
        let m = mtm();
        for symmetry in [true, false] {
            let eo = enum_opts(4, symmetry);
            let space = EnumSpace::with_target_partitions(&eo, 32);
            let mut admitter = Admitter::new(symmetry);
            let mut items = Vec::new();
            for p in 0..space.partition_count() {
                items.extend(admitter.admit(space.enumerate_keyed(p)));
            }
            let keyed = transform_synth::programs::programs(&eo)
                .into_iter()
                .map(|p| {
                    let key = plan_key(&p);
                    (p, key)
                })
                .collect();
            let reference = plan_from_keyed(&m, "sc_per_loc", keyed, false);
            assert_eq!(admitter.programs, reference.programs, "symmetry {symmetry}");
            assert_eq!(items.len(), reference.items.len(), "symmetry {symmetry}");
            for (a, b) in items.iter().zip(&reference.items) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.key, b.key);
                assert_eq!(a.program, b.program);
            }
        }
    }

    /// The admitter is partition-shape-blind: a mass-balanced space
    /// admits the identical plan.
    #[test]
    fn admitter_is_identical_over_balanced_partitions() {
        let eo = enum_opts(4, true);
        let depth = EnumSpace::with_target_partitions(&eo, 32);
        let mass = EnumSpace::balanced(&eo, 3);
        let admit_all = |space: &EnumSpace| {
            let mut admitter = Admitter::new(true);
            let mut items = Vec::new();
            for p in 0..space.partition_count() {
                items.extend(admitter.admit(space.enumerate_keyed(p)));
            }
            (admitter.programs, items)
        };
        let (programs_a, items_a) = admit_all(&depth);
        let (programs_b, items_b) = admit_all(&mass);
        assert_eq!(programs_a, programs_b);
        assert_eq!(items_a.len(), items_b.len());
        for (a, b) in items_a.iter().zip(&items_b) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.program, b.program);
        }
    }

    /// Out-of-order delivery with a cut partition: the frontier admits
    /// the prefix below the cut and drops everything from it on.
    #[test]
    fn frontier_cuts_reproducibly_on_out_of_order_delivery() {
        let eo = enum_opts(4, true);
        let space = EnumSpace::with_target_partitions(&eo, 8);
        assert!(space.partition_count() >= 3, "space too small for the test");
        let pipeline = Pipeline::new(&space, &["a"], None, None, 2, None, None, None);
        // Claim the first three enumeration tasks.
        for expect in 0..3 {
            match pipeline.next_task() {
                Some(Task::Enumerate(ord)) => assert_eq!(ord, expect),
                _ => panic!("expected an enumeration task"),
            }
        }
        // Deliver 2 first, cut 1, then deliver 0: only partition 0 may
        // be admitted, and the cut lands at ordinal 1.
        pipeline.resolve(2, Some(ns(&space, 2)));
        pipeline.resolve(1, None);
        pipeline.resolve(0, Some(ns(&space, 0)));
        let st = pipeline.state.into_inner().expect("lock");
        assert_eq!(st.cut_at, Some(1));
        assert!(st.expired);
        let mut reference = Admitter::new(true);
        let expected_items = reference.admit(space.enumerate_keyed(0)).len();
        assert_eq!(st.admitter.programs, reference.programs);
        let queued: usize = st.exam.iter().map(|b| b.items.len()).sum();
        assert_eq!(queued, expected_items);
    }

    /// A fused two-axiom pipeline fans each admitted chunk out once per
    /// axiom, sharing the chunk storage.
    #[test]
    fn fused_pipeline_fans_chunks_out_per_axiom() {
        let eo = enum_opts(4, true);
        let space = EnumSpace::with_target_partitions(&eo, 4);
        // A window wide enough to claim every partition before any
        // examine batch exists (examination has pop priority).
        let pipeline = Pipeline::new(
            &space,
            &["a", "b", "c"],
            None,
            None,
            space.partition_count(),
            None,
            None,
            None,
        );
        for ordinal in 0..space.partition_count() {
            match pipeline.next_task() {
                Some(Task::Enumerate(ord)) => assert_eq!(ord, ordinal),
                _ => panic!("expected an enumeration task"),
            }
        }
        for ordinal in 0..space.partition_count() {
            pipeline.resolve(ordinal, Some(ns(&space, ordinal)));
        }
        let st = pipeline.state.into_inner().expect("lock");
        assert_eq!(st.batches % 3, 0, "every chunk spawns one batch per axiom");
        assert_eq!(st.remaining, vec![st.batches / 3; 3]);
        // Each chunk appears three times, as the same shared storage.
        let mut by_shard: BTreeMap<usize, Vec<&Batch>> = BTreeMap::new();
        for b in &st.exam {
            by_shard.entry(b.shard).or_default().push(b);
        }
        for (_, batches) in by_shard {
            assert_eq!(batches.len(), 3);
            assert!(batches
                .windows(2)
                .all(|w| Arc::ptr_eq(&w[0].items, &w[1].items)));
        }
    }

    /// Regression for the former "best-effort on timed-out runs" peak
    /// accounting: a deadline cut now (a) counts discarded partitions
    /// delivered after expiry toward the peak — they were materialized
    /// — and (b) returns every queued-but-abandoned candidate to the
    /// live count, so `live` drains to exactly the in-flight batches.
    #[test]
    fn deadline_cut_keeps_live_accounting_exact() {
        let eo = enum_opts(4, true);
        let space = EnumSpace::with_target_partitions(&eo, 8);
        assert!(space.partition_count() >= 3, "space too small for the test");
        let pipeline = Pipeline::new(&space, &["a"], None, None, 3, None, None, None);
        for expect in 0..3 {
            match pipeline.next_task() {
                Some(Task::Enumerate(ord)) => assert_eq!(ord, expect),
                _ => panic!("expected an enumeration task"),
            }
        }
        let n0 = space.enumerate_keyed(0).len();
        let n2 = space.enumerate_keyed(2).len();
        // Partition 0 admits: its items go live and queue as batches.
        pipeline.resolve(0, Some(ns(&space, 0)));
        // Partition 1 is cut: expire() discards the queued batches and
        // drains their candidates from the live count on the spot.
        pipeline.resolve(1, None);
        {
            let st = pipeline.state.lock().expect("lock");
            assert!(st.expired);
            assert_eq!(st.cut_at, Some(1));
            assert_eq!(st.live, 0, "abandoned queue drained exactly");
            assert!(st.exam.is_empty());
            assert!(st.chunk_refs.is_empty());
        }
        // Partition 2 lands after expiry: discarded, but its programs
        // were materialized — the peak must include them.
        pipeline.resolve(2, Some(ns(&space, 2)));
        let st = pipeline.state.into_inner().expect("lock");
        assert_eq!(st.live, 0);
        assert!(
            st.peak_live >= n0.max(n2),
            "peak {} must cover both the admitted ({n0}) and the \
             discarded ({n2}) materializations",
            st.peak_live
        );
        // The progress mirror agrees with the final state.
        let snap = pipeline.progress.snapshot();
        assert_eq!(snap.peak_live_candidates, st.peak_live);
        assert_eq!(snap.live_candidates, 0);
        assert_eq!(snap.cut_at_partition, Some(1));
    }

    /// The progress mirror tracks the frontier: partitions retired,
    /// mass retired, programs, and plan items all advance with
    /// admission, and the mass total is the space's.
    #[test]
    fn progress_mirrors_frontier_advance() {
        let eo = enum_opts(4, true);
        let space = EnumSpace::with_target_partitions(&eo, 8);
        let masses = space.masses();
        let pipeline = Pipeline::new(&space, &["a"], None, None, 2, None, None, None);
        assert_eq!(pipeline.progress.snapshot().mass_total, space.total_mass());
        for ordinal in 0..space.partition_count() {
            loop {
                match pipeline.next_task() {
                    Some(Task::Enumerate(ord)) => {
                        assert_eq!(ord, ordinal);
                        break;
                    }
                    Some(Task::Examine(b)) => {
                        // Examination has pop priority; retire it untouched.
                        pipeline.batch_done(b.axiom, b.shard, 0, 0, 0, Duration::ZERO, false);
                    }
                    None => panic!("pipeline drained early"),
                }
            }
            pipeline.resolve(ordinal, Some(ns(&space, ordinal)));
            let snap = pipeline.progress.snapshot();
            assert_eq!(snap.partitions_retired, ordinal + 1);
            assert_eq!(snap.mass_retired, masses[..=ordinal].iter().sum::<u64>());
        }
        let st = pipeline.state.into_inner().expect("lock");
        let snap = pipeline.progress.snapshot();
        assert_eq!(snap.partitions_retired, space.partition_count());
        assert_eq!(snap.mass_retired, space.total_mass());
        assert_eq!(snap.programs, st.admitter.programs);
        assert_eq!(snap.items_planned, st.admitter.next_index);
        assert_eq!(snap.batches, st.batches);
        assert!(snap.enumeration_eta().is_some());
    }

    /// A sink retaining every record with its plan index — what the
    /// store's shard files keep, and what a warm seed needs back.
    struct RecordSink {
        records: Mutex<Vec<SuiteRecord>>,
    }

    impl RecordSink {
        fn new() -> RecordSink {
            RecordSink {
                records: Mutex::new(Vec::new()),
            }
        }

        fn take(self) -> Vec<SuiteRecord> {
            let mut records = self.records.into_inner().expect("sink lock");
            records.sort_by_key(|r| r.index);
            records
        }
    }

    impl SuiteSink for RecordSink {
        fn shard_done(&self, _stats: ShardStats, records: Vec<SuiteRecord>) {
            self.records
                .lock()
                .expect("sink lock is never poisoned")
                .extend(records);
        }
    }

    fn synth_opts(bound: usize) -> SynthOptions {
        let mut o = SynthOptions::new(bound);
        o.enumeration.allow_fences = false;
        o.enumeration.allow_rmw = false;
        o
    }

    fn run_cold(
        m: &Mtm,
        bound: usize,
        jobs: usize,
    ) -> (Vec<SuiteRecord>, SuiteStats, RunArtifacts) {
        let opts = synth_opts(bound);
        let sink = RecordSink::new();
        let (mut stats, _, artifacts) =
            run_fused(m, &["sc_per_loc"], &opts, jobs, &[&sink], None, None);
        (sink.take(), stats.remove(0), artifacts)
    }

    fn seed_from(
        parent_bound: usize,
        artifacts: &RunArtifacts,
        records: &[SuiteRecord],
        stats: &SuiteStats,
    ) -> WarmSeed {
        WarmSeed {
            parent_bound,
            node_counts: artifacts.node_counts.clone(),
            parents: vec![WarmParent {
                records: records.to_vec(),
                items: stats.shards.iter().map(|s| s.items).sum(),
                executions: stats.executions,
                forbidden: stats.forbidden,
                minimal: stats.minimal,
            }],
        }
    }

    /// The tentpole invariant at the pipeline level: a warm-started
    /// bound-N run reproduces the cold bound-N suite exactly — same
    /// records at the same plan indices, same semantic totals, and the
    /// same admission digest for the *next* bound — at several worker
    /// counts.
    #[test]
    fn warm_run_reproduces_the_cold_suite() {
        let m = mtm();
        for jobs in [1usize, 2, 4] {
            let (parent_records, parent_stats, parent_art) = run_cold(&m, 3, jobs);
            let seed = seed_from(3, &parent_art, &parent_records, &parent_stats);
            let (cold_records, cold_stats, cold_art) = run_cold(&m, 4, jobs);

            let opts = synth_opts(4);
            let sink = RecordSink::new();
            let (mut warm_stats, _, warm_art) = run_fused(
                &m,
                &["sc_per_loc"],
                &opts,
                jobs,
                &[&sink],
                None,
                Some(&seed),
            );
            let warm_stats = warm_stats.remove(0);
            let warm_records = sink.take();

            assert!(!warm_stats.timed_out, "jobs {jobs}");
            assert_eq!(warm_records.len(), cold_records.len(), "jobs {jobs}");
            for (w, c) in warm_records.iter().zip(&cold_records) {
                assert_eq!(w.index, c.index, "jobs {jobs}");
                assert_eq!(w.elt.program, c.elt.program, "jobs {jobs}");
                assert_eq!(w.elt.violated, c.elt.violated, "jobs {jobs}");
            }
            assert_eq!(warm_stats.programs, cold_stats.programs, "jobs {jobs}");
            assert_eq!(warm_stats.executions, cold_stats.executions, "jobs {jobs}");
            assert_eq!(warm_stats.forbidden, cold_stats.forbidden, "jobs {jobs}");
            assert_eq!(warm_stats.minimal, cold_stats.minimal, "jobs {jobs}");
            // The digest this warm run hands the next bound matches the
            // cold run's — warm starts chain.
            assert_eq!(warm_art.node_counts, cold_art.node_counts, "jobs {jobs}");
            // Every parent record was rebased, in parent order, onto
            // strictly increasing child indices — the delta parent map.
            let maps = warm_art.parent_maps.expect("warm runs produce parent maps");
            assert_eq!(maps.len(), 1);
            assert_eq!(maps[0].len(), parent_records.len(), "jobs {jobs}");
            assert!(maps[0].windows(2).all(|w| w[0] < w[1]), "jobs {jobs}");
            // The rebased indices are exactly where the parent's
            // programs landed in the cold child suite.
            let by_index: BTreeMap<usize, &SuiteRecord> =
                cold_records.iter().map(|r| (r.index, r)).collect();
            for (rec, &child_index) in parent_records.iter().zip(&maps[0]) {
                let child = by_index
                    .get(&(child_index as usize))
                    .expect("mapped index exists in the cold suite");
                assert_eq!(child.elt.program, rec.elt.program, "jobs {jobs}");
            }
        }
    }

    /// The fleet invariant at the pipeline level: partition ranges that
    /// tile the space produce shard results whose concatenation is
    /// exactly the single-machine run — same records at the same global
    /// plan indices, semantic counters summing to the full totals — at
    /// several worker counts and split points.
    #[test]
    fn range_runs_tile_into_the_full_suite() {
        let m = mtm();
        let opts = synth_opts(4);
        for jobs in [1usize, 2, 3] {
            let space = crate::space_for(&opts, jobs);
            let n = space.partition_count();
            let (full_records, full_stats, full_art) = run_cold(&m, 4, jobs);
            for split in [1, n / 3, n / 2, n - 1] {
                let split = split.clamp(1, n - 1);
                let mut records = Vec::new();
                let mut executions = 0usize;
                let mut forbidden = 0usize;
                let mut minimal = 0usize;
                let mut arts = Vec::new();
                for range in [(0, split), (split, n)] {
                    let sink = RecordSink::new();
                    let (mut stats, _, art) = run_fused_range(
                        &m,
                        &["sc_per_loc"],
                        &opts,
                        jobs,
                        2,
                        &[&sink],
                        None,
                        None,
                        Some(range),
                    );
                    let stats = stats.remove(0);
                    assert!(!stats.timed_out, "jobs {jobs} split {split}");
                    executions += stats.executions;
                    forbidden += stats.forbidden;
                    minimal += stats.minimal;
                    records.extend(sink.take());
                    arts.push(art);
                }
                records.sort_by_key(|r| r.index);
                assert_eq!(records.len(), full_records.len(), "jobs {jobs} split {split}");
                for (r, f) in records.iter().zip(&full_records) {
                    assert_eq!(r.index, f.index, "jobs {jobs} split {split}");
                    assert_eq!(r.elt.program, f.elt.program, "jobs {jobs} split {split}");
                    assert_eq!(r.elt.violated, f.elt.violated, "jobs {jobs} split {split}");
                }
                assert_eq!(executions, full_stats.executions, "jobs {jobs} split {split}");
                assert_eq!(forbidden, full_stats.forbidden, "jobs {jobs} split {split}");
                assert_eq!(minimal, full_stats.minimal, "jobs {jobs} split {split}");
                // The digest each range run accumulates is a prefix of
                // the full run's — the tail range admits the whole
                // prefix, so its digest IS the full digest.
                assert_eq!(
                    arts[0].node_counts[..],
                    full_art.node_counts[..arts[0].node_counts.len()],
                    "jobs {jobs} split {split}"
                );
                assert_eq!(arts[1].node_counts, full_art.node_counts, "jobs {jobs} split {split}");
            }
        }
    }

    /// A warm run journals its provenance: one `WarmStart` event with
    /// the digest size and parent bound, and (for this space, where
    /// early partitions sit fully under the parent bound) `WarmSkip`
    /// events whose covered counts match the space's.
    #[test]
    fn warm_run_journals_skips() {
        let m = mtm();
        let (parent_records, parent_stats, parent_art) = run_cold(&m, 3, 2);
        let seed = seed_from(3, &parent_art, &parent_records, &parent_stats);
        let opts = synth_opts(4);
        let progress = Arc::new(ProgressState::with_journal(&["sc_per_loc"]));
        let sink = RecordSink::new();
        let (stats, _, _) = run_fused(
            &m,
            &["sc_per_loc"],
            &opts,
            2,
            &[&sink],
            Some(&progress),
            Some(&seed),
        );
        assert!(!stats[0].timed_out);
        let journal = progress.take_journal();
        let warm_starts: Vec<_> = journal
            .iter()
            .filter(|e| e.kind == JournalEventKind::WarmStart)
            .collect();
        assert_eq!(warm_starts.len(), 1);
        assert_eq!(warm_starts[0].a, seed.node_counts.len() as u64);
        assert_eq!(
            warm_starts[0].b,
            seed.node_counts.iter().map(|&(_, i)| i).sum::<u64>()
        );
        assert_eq!(warm_starts[0].c, 3);
        let space = crate::space_for(&opts, 2);
        let masses = space.masses();
        let covered = space.covered_masses(3);
        let fully_covered: Vec<u64> = (0..space.partition_count())
            .filter(|&o| covered[o] > 0 && covered[o] == masses[o])
            .map(|o| o as u64)
            .collect();
        let skipped: Vec<u64> = journal
            .iter()
            .filter(|e| e.kind == JournalEventKind::WarmSkip)
            .map(|e| e.a)
            .collect();
        let mut sorted = skipped.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fully_covered, "every fully covered partition skips");
        for e in journal
            .iter()
            .filter(|e| e.kind == JournalEventKind::WarmSkip)
        {
            assert_eq!(e.b, covered[e.a as usize]);
        }
    }

    /// The deadline-cut satellite: a cut warm-start run keeps the same
    /// partition-granular invariants as a cold one — retired mass in
    /// the progress mirror equals the sum of `PartitionRetired` journal
    /// events, and a recorded cut matches `cut_at_partition`.
    #[test]
    fn deadline_cut_warm_run_keeps_journal_invariants() {
        let m = mtm();
        let (parent_records, parent_stats, parent_art) = run_cold(&m, 3, 2);
        let seed = seed_from(3, &parent_art, &parent_records, &parent_stats);
        for (label, warm) in [("cold", None), ("warm", Some(&seed))] {
            let mut opts = synth_opts(4);
            opts.timeout = Some(Duration::from_millis(1));
            let progress = Arc::new(ProgressState::with_journal(&["sc_per_loc"]));
            let sink = RecordSink::new();
            let (stats, metrics, _) = run_fused(
                &m,
                &["sc_per_loc"],
                &opts,
                2,
                &[&sink],
                Some(&progress),
                warm,
            );
            let journal = progress.take_journal();
            let snap = progress.snapshot();
            let retired: u64 = journal
                .iter()
                .filter(|e| e.kind == JournalEventKind::PartitionRetired)
                .map(|e| e.b)
                .sum();
            assert_eq!(snap.mass_retired, retired, "{label}");
            if let Some(cut) = metrics.cut_at_partition {
                assert!(stats[0].timed_out, "{label}");
                let cuts: Vec<u64> = journal
                    .iter()
                    .filter(|e| e.kind == JournalEventKind::Cut)
                    .map(|e| e.a)
                    .collect();
                assert_eq!(cuts, vec![cut as u64], "{label}");
            }
        }
    }

    #[test]
    fn tuner_targets_the_batch_slice() {
        let mut tuner = Tuner::new(None);
        assert_eq!(tuner.batch_size(), DEFAULT_BATCH);
        assert!(tuner.target_weight().is_none(), "uncalibrated until observed");
        // 1000 items of uniform weight 32 in one second → rate 32000
        // weight/sec, 32 weight/item → 50 items per 50 ms slice.
        tuner.observe(1000, 32_000, Duration::from_secs(1));
        assert_eq!(tuner.batch_size(), 50);
        let tw = tuner.target_weight().expect("calibrated");
        assert!((tw - 1600.0).abs() < 1e-6, "50 ms of 32000 weight/sec");
        // Very slow items clamp to the minimum, very fast to the maximum.
        let mut slow = Tuner::new(None);
        slow.observe(1, 16, Duration::from_secs(10));
        assert_eq!(slow.batch_size(), MIN_BATCH);
        let mut fast = Tuner::new(None);
        fast.observe(10_000_000, 10_000_000, Duration::from_millis(1));
        assert_eq!(fast.batch_size(), MAX_BATCH);
        // A fixed size ignores observations and disables weight targets.
        let mut fixed = Tuner::new(Some(5));
        fixed.observe(1000, 32_000, Duration::from_secs(1));
        assert_eq!(fixed.batch_size(), 5);
        assert!(fixed.target_weight().is_none());
    }

    /// Heavier programs shrink the batch: after observing a heavy mix,
    /// the same weight target takes fewer items per chunk.
    #[test]
    fn tuner_weights_shrink_batches_for_heavy_items() {
        let mut light = Tuner::new(None);
        let mut heavy = Tuner::new(None);
        // Same wall-clock rate in weight/sec, but heavy items carry 16×
        // the weight each — so a 50 ms slice holds 16× fewer of them.
        light.observe(16_000, 512_000, Duration::from_secs(1));
        heavy.observe(1_000, 512_000, Duration::from_secs(1));
        assert_eq!(light.batch_size(), 16 * heavy.batch_size());
    }
}
