//! Live telemetry for streamed synthesis runs.
//!
//! A [`ProgressState`] is a block of atomics the fused pipeline
//! ([`crate::stream`]) publishes into as partitions retire and examine
//! batches drain — partitions and subtree mass retired (against the
//! totals from [`EnumSpace::masses`]), programs admitted through the
//! dedup frontier, the frontier's depth, live/peak candidate counts,
//! and per-axiom batch/item/ELT counters. Observers (the CLI's
//! `--progress` reporter) poll [`ProgressState::snapshot`] from any
//! thread without touching the pipeline's lock; the pipeline itself
//! writes with relaxed stores from inside lock-held transitions, so
//! observation adds no synchronization to the hot path.
//!
//! The same state is the run's final record: the returned
//! [`StreamMetrics`] *is* the last snapshot (see
//! [`StreamMetrics::from_snapshot`]), so live counters can never drift
//! from the numbers a run reports at the end.
//!
//! Cached-vs-live rendering: a store-tier lookup that serves an axiom
//! from a sealed entry marks its slot [`AxiomState::Cached`]
//! ([`ProgressState::mark_cached`]), while axioms entering the fused
//! run move through [`AxiomState::Running`] to [`AxiomState::Complete`]
//! (or [`AxiomState::Cut`] on a deadline).
//!
//! [`EnumSpace::masses`]: transform_synth::programs::EnumSpace::masses
//! [`StreamMetrics`]: crate::StreamMetrics
//! [`StreamMetrics::from_snapshot`]: crate::StreamMetrics::from_snapshot

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// All progress stores/loads are relaxed: every write happens inside a
/// pipeline-lock-held transition (mutually ordered already), and
/// readers only ever sample — they never synchronize with the run.
const ORD: Ordering = Ordering::Relaxed;

/// Sentinel for "no deadline cut" in the `cut_at_partition` atomic.
const NO_CUT: usize = usize::MAX;

/// Where one axiom's suite stands in a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AxiomState {
    /// Known to the run but not started (a fused run that has not
    /// reached it, or a tiered lookup still probing the cache).
    Pending,
    /// Its examine batches are in flight.
    Running,
    /// Its whole schedule retired cleanly; the suite is final.
    Complete,
    /// The deadline cut its schedule; the suite is partial.
    Cut,
    /// Served from a sealed store entry — no synthesis ran for it.
    Cached,
}

impl AxiomState {
    fn from_u8(v: u8) -> AxiomState {
        match v {
            1 => AxiomState::Running,
            2 => AxiomState::Complete,
            3 => AxiomState::Cut,
            4 => AxiomState::Cached,
            _ => AxiomState::Pending,
        }
    }

    /// The machine-readable spelling (`--progress json`, tests).
    pub fn name(self) -> &'static str {
        match self {
            AxiomState::Pending => "pending",
            AxiomState::Running => "running",
            AxiomState::Complete => "complete",
            AxiomState::Cut => "cut",
            AxiomState::Cached => "cached",
        }
    }
}

/// What one [`JournalEvent`] records — a span or instant in a
/// synthesis run's life, emitted by the fused pipeline's lock-held
/// transitions when the run's [`ProgressState`] was built with
/// [`ProgressState::with_journal`].
///
/// The payload fields `a`/`b`/`c` are kind-specific (documented per
/// variant); unused ones are zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JournalEventKind {
    /// The fused run bound its space: `a` = partition count, `b` =
    /// total subtree mass, `c` = worker count.
    RunStart,
    /// One partition was enumerated (materialized): `a` = its ordinal,
    /// `b` = programs delivered.
    PartitionEnumerated,
    /// The dedup frontier admitted one partition: `a` = its ordinal,
    /// `b` = its subtree mass.
    PartitionRetired,
    /// One examine batch retired for `axiom`: `a` = plan items
    /// examined, `b` = suite members found, `c` = batch wall-clock in
    /// microseconds (so `t_micros - c` is the batch's start).
    BatchExamined,
    /// Out-of-order delivery head-blocked the dedup frontier past the
    /// lookahead window: `a` = the frontier ordinal being waited on,
    /// `b` = partitions queued behind it.
    FrontierStall,
    /// `axiom`'s whole schedule retired cleanly.
    AxiomComplete,
    /// The deadline cut the run's shared plan: `a` = the first cut
    /// partition.
    Cut,
    /// The run drained: `a` = programs admitted, `b` = plan items,
    /// `c` = batches created.
    RunEnd,
    /// A store tier sealed `axiom`'s suite: `a` = sealed entry bytes.
    Seal,
    /// A sealed suite for `axiom` was pushed to a remote tier.
    Push,
    /// The run warm-started from a cached smaller-bound suite: `a` =
    /// covered recursion nodes (skipped, spliced from the parent), `b`
    /// = parent plan items inherited, `c` = the parent bound.
    WarmStart,
    /// A partition every one of whose nodes the parent bound covers was
    /// skipped without enumerating: `a` = its ordinal, `b` = its
    /// covered node count.
    WarmSkip,
    /// A fleet coordinator granted a partition-range lease: `a` = the
    /// job id, `b` = the packed range (`lo << 32 | hi`), `c` = the
    /// lease id.
    LeaseGranted,
    /// A lease's heartbeat lapsed and its range returned to the queue:
    /// `a` = the job id, `b` = the packed range, `c` = the lease id.
    LeaseExpired,
    /// A worker's shard result was accepted: `a` = the job id, `b` =
    /// the packed range, `c` = the shard payload bytes.
    ShardUploaded,
    /// A worker retried a shard upload (or re-ran an expired range):
    /// `a` = the job id, `b` = the packed range, `c` = the attempt.
    ShardRetry,
}

impl JournalEventKind {
    /// The wire byte of the kind (stable across releases — the journal
    /// codec persists it).
    pub fn as_u8(self) -> u8 {
        match self {
            JournalEventKind::RunStart => 0,
            JournalEventKind::PartitionEnumerated => 1,
            JournalEventKind::PartitionRetired => 2,
            JournalEventKind::BatchExamined => 3,
            JournalEventKind::FrontierStall => 4,
            JournalEventKind::AxiomComplete => 5,
            JournalEventKind::Cut => 6,
            JournalEventKind::RunEnd => 7,
            JournalEventKind::Seal => 8,
            JournalEventKind::Push => 9,
            JournalEventKind::WarmStart => 10,
            JournalEventKind::WarmSkip => 11,
            JournalEventKind::LeaseGranted => 12,
            JournalEventKind::LeaseExpired => 13,
            JournalEventKind::ShardUploaded => 14,
            JournalEventKind::ShardRetry => 15,
        }
    }

    /// The inverse of [`JournalEventKind::as_u8`].
    pub fn from_u8(v: u8) -> Option<JournalEventKind> {
        Some(match v {
            0 => JournalEventKind::RunStart,
            1 => JournalEventKind::PartitionEnumerated,
            2 => JournalEventKind::PartitionRetired,
            3 => JournalEventKind::BatchExamined,
            4 => JournalEventKind::FrontierStall,
            5 => JournalEventKind::AxiomComplete,
            6 => JournalEventKind::Cut,
            7 => JournalEventKind::RunEnd,
            8 => JournalEventKind::Seal,
            9 => JournalEventKind::Push,
            10 => JournalEventKind::WarmStart,
            11 => JournalEventKind::WarmSkip,
            12 => JournalEventKind::LeaseGranted,
            13 => JournalEventKind::LeaseExpired,
            14 => JournalEventKind::ShardUploaded,
            15 => JournalEventKind::ShardRetry,
            _ => return None,
        })
    }

    /// The human-readable spelling (`transform runs show`).
    pub fn name(self) -> &'static str {
        match self {
            JournalEventKind::RunStart => "run_start",
            JournalEventKind::PartitionEnumerated => "partition_enumerated",
            JournalEventKind::PartitionRetired => "partition_retired",
            JournalEventKind::BatchExamined => "batch_examined",
            JournalEventKind::FrontierStall => "frontier_stall",
            JournalEventKind::AxiomComplete => "axiom_complete",
            JournalEventKind::Cut => "cut",
            JournalEventKind::RunEnd => "run_end",
            JournalEventKind::Seal => "seal",
            JournalEventKind::Push => "push",
            JournalEventKind::WarmStart => "warm_start",
            JournalEventKind::WarmSkip => "warm_skip",
            JournalEventKind::LeaseGranted => "lease_granted",
            JournalEventKind::LeaseExpired => "lease_expired",
            JournalEventKind::ShardUploaded => "shard_uploaded",
            JournalEventKind::ShardRetry => "shard_retry",
        }
    }
}

/// One timestamped span event of a journaled synthesis run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JournalEvent {
    /// Microseconds since the run's [`ProgressState`] was created.
    pub t_micros: u64,
    /// What happened.
    pub kind: JournalEventKind,
    /// The axiom slot the event belongs to (an index into the state's
    /// axiom list), or `None` for run-level events.
    pub axiom: Option<u32>,
    /// First kind-specific payload (see [`JournalEventKind`]).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
    /// Third kind-specific payload.
    pub c: u64,
}

/// One axiom's live counters.
pub(crate) struct AxiomProgress {
    name: String,
    pub(crate) batches_done: AtomicUsize,
    pub(crate) items_examined: AtomicUsize,
    pub(crate) elts: AtomicUsize,
    pub(crate) state: AtomicU8,
}

/// Shared live counters of one (possibly multi-axiom) synthesis run.
///
/// Created by the observer (e.g. the CLI) with the run's axiom names,
/// wrapped in an [`Arc`](std::sync::Arc), and handed to an `_observed`
/// entry point ([`crate::synthesize_axioms_streamed_observed`] and
/// friends, or the store's `cached_or_synthesize*_observed` paths).
/// Poll [`ProgressState::snapshot`] from any thread.
pub struct ProgressState {
    started: Instant,
    axioms: Vec<AxiomProgress>,
    pub(crate) partitions_total: AtomicUsize,
    pub(crate) partitions_retired: AtomicUsize,
    pub(crate) mass_total: AtomicU64,
    pub(crate) mass_retired: AtomicU64,
    pub(crate) programs: AtomicUsize,
    pub(crate) items_planned: AtomicUsize,
    pub(crate) frontier_depth: AtomicUsize,
    pub(crate) live_candidates: AtomicUsize,
    pub(crate) peak_live_candidates: AtomicUsize,
    pub(crate) batches: AtomicUsize,
    pub(crate) cut_at_partition: AtomicUsize,
    pub(crate) final_batch_size: AtomicUsize,
    /// The run journal, when enabled ([`ProgressState::with_journal`]):
    /// timestamped span events appended by the pipeline's lock-held
    /// transitions and drained once by [`ProgressState::take_journal`].
    journal: Option<Mutex<Vec<JournalEvent>>>,
}

impl ProgressState {
    /// A fresh state tracking `axioms` (every axiom the observer wants
    /// rendered — including ones a tiered lookup may serve from cache
    /// without ever entering the fused run).
    pub fn new<S: AsRef<str>>(axioms: &[S]) -> ProgressState {
        Self::build(axioms, false)
    }

    /// Like [`ProgressState::new`], additionally recording a run
    /// journal: the pipeline appends timestamped [`JournalEvent`]s as
    /// its transitions fire, for persistence alongside store entries.
    /// Journaling only ever *adds* a side buffer — published counters,
    /// scheduling, and therefore sealed suites are byte-identical with
    /// and without it.
    pub fn with_journal<S: AsRef<str>>(axioms: &[S]) -> ProgressState {
        Self::build(axioms, true)
    }

    fn build<S: AsRef<str>>(axioms: &[S], journal: bool) -> ProgressState {
        ProgressState {
            started: Instant::now(),
            journal: journal.then(|| Mutex::new(Vec::new())),
            axioms: axioms
                .iter()
                .map(|name| AxiomProgress {
                    name: name.as_ref().to_string(),
                    batches_done: AtomicUsize::new(0),
                    items_examined: AtomicUsize::new(0),
                    elts: AtomicUsize::new(0),
                    state: AtomicU8::new(AxiomState::Pending as u8),
                })
                .collect(),
            partitions_total: AtomicUsize::new(0),
            partitions_retired: AtomicUsize::new(0),
            mass_total: AtomicU64::new(0),
            mass_retired: AtomicU64::new(0),
            programs: AtomicUsize::new(0),
            items_planned: AtomicUsize::new(0),
            frontier_depth: AtomicUsize::new(0),
            live_candidates: AtomicUsize::new(0),
            peak_live_candidates: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            cut_at_partition: AtomicUsize::new(NO_CUT),
            final_batch_size: AtomicUsize::new(0),
        }
    }

    /// The slot index of `axiom`, or `None` when the state was built
    /// without it.
    pub(crate) fn slot_of(&self, axiom: &str) -> Option<usize> {
        self.axioms.iter().position(|a| a.name == axiom)
    }

    pub(crate) fn axiom(&self, slot: usize) -> &AxiomProgress {
        &self.axioms[slot]
    }

    pub(crate) fn set_axiom_state(&self, slot: usize, state: AxiomState) {
        self.axioms[slot].state.store(state as u8, ORD);
    }

    /// Marks `axiom` as served from a sealed cache entry with `elts`
    /// suite members — the store tier's hook, so cached and live axioms
    /// render distinctly. Unknown names are ignored (the observer chose
    /// not to track them).
    pub fn mark_cached(&self, axiom: &str, elts: usize) {
        if let Some(slot) = self.slot_of(axiom) {
            self.axioms[slot].elts.store(elts, ORD);
            self.set_axiom_state(slot, AxiomState::Cached);
        }
    }

    /// Time since the state was created (the observer's clock — it
    /// starts when the run is requested, cache probing included).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether this state records a run journal.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Appends one journal event, timestamped against the state's
    /// creation. A no-op (one branch) when journaling is off — the
    /// pipeline calls this unconditionally from its transitions.
    pub fn record(&self, kind: JournalEventKind, axiom: Option<u32>, a: u64, b: u64, c: u64) {
        let Some(journal) = &self.journal else { return };
        let t_micros = self.started.elapsed().as_micros() as u64;
        journal
            .lock()
            .expect("journal lock is never poisoned")
            .push(JournalEvent {
                t_micros,
                kind,
                axiom,
                a,
                b,
                c,
            });
    }

    /// Drains the recorded journal (empty when journaling is off or the
    /// events were already taken). The order is exactly emission order.
    pub fn take_journal(&self) -> Vec<JournalEvent> {
        match &self.journal {
            Some(journal) => {
                std::mem::take(&mut *journal.lock().expect("journal lock is never poisoned"))
            }
            None => Vec::new(),
        }
    }

    /// The number of the state's tracked axioms (the journal's `axiom`
    /// slots index into this range).
    pub fn axiom_count(&self) -> usize {
        self.axioms.len()
    }

    /// The name of axiom slot `slot`, or `None` out of range.
    pub fn axiom_name(&self, slot: usize) -> Option<&str> {
        self.axioms.get(slot).map(|a| a.name.as_str())
    }

    /// A consistent-enough point-in-time copy of every counter: each
    /// counter is individually monotone (they are only ever increased,
    /// gauges aside), so repeated snapshots never move backwards, but
    /// no cross-counter invariant stronger than that is promised while
    /// the run is live. After the run returns, the snapshot is exact.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let cut = self.cut_at_partition.load(ORD);
        ProgressSnapshot {
            elapsed: self.started.elapsed(),
            partitions_total: self.partitions_total.load(ORD),
            partitions_retired: self.partitions_retired.load(ORD),
            mass_total: self.mass_total.load(ORD),
            mass_retired: self.mass_retired.load(ORD),
            programs: self.programs.load(ORD),
            items_planned: self.items_planned.load(ORD),
            frontier_depth: self.frontier_depth.load(ORD),
            live_candidates: self.live_candidates.load(ORD),
            peak_live_candidates: self.peak_live_candidates.load(ORD),
            batches: self.batches.load(ORD),
            cut_at_partition: (cut != NO_CUT).then_some(cut),
            final_batch_size: self.final_batch_size.load(ORD),
            axioms: self
                .axioms
                .iter()
                .map(|a| AxiomSnapshot {
                    name: a.name.clone(),
                    batches_done: a.batches_done.load(ORD),
                    items_examined: a.items_examined.load(ORD),
                    elts: a.elts.load(ORD),
                    state: AxiomState::from_u8(a.state.load(ORD)),
                })
                .collect(),
        }
    }
}

/// One axiom's counters at a sampling instant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AxiomSnapshot {
    /// The axiom's name.
    pub name: String,
    /// Examine batches retired for this axiom.
    pub batches_done: usize,
    /// Plan items examined for this axiom.
    pub items_examined: usize,
    /// Suite members (ELTs) emitted so far — or, for a
    /// [`AxiomState::Cached`] axiom, the sealed suite's size.
    pub elts: usize,
    /// Where the axiom stands.
    pub state: AxiomState,
}

/// A point-in-time copy of a run's [`ProgressState`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgressSnapshot {
    /// Time since the progress state was created.
    pub elapsed: Duration,
    /// Enumeration partitions in the space (0 until the run binds).
    pub partitions_total: usize,
    /// Partitions admitted through the dedup frontier.
    pub partitions_retired: usize,
    /// Total estimated subtree mass of the space
    /// ([`EnumSpace::total_mass`]).
    ///
    /// [`EnumSpace::total_mass`]: transform_synth::programs::EnumSpace::total_mass
    pub mass_total: u64,
    /// Mass of the partitions admitted so far.
    pub mass_retired: u64,
    /// Programs admitted (post symmetry reduction).
    pub programs: usize,
    /// Plan items produced by the admitter (write-bearing first
    /// occurrences — each one examine unit per axiom).
    pub items_planned: usize,
    /// Enumerated partitions queued behind the in-order frontier.
    pub frontier_depth: usize,
    /// Candidate programs currently materialized.
    pub live_candidates: usize,
    /// Peak of [`ProgressSnapshot::live_candidates`] over the run,
    /// deadline-discarded tails included.
    pub peak_live_candidates: usize,
    /// Examine batches created, across all axioms.
    pub batches: usize,
    /// First partition the deadline cut, if any.
    pub cut_at_partition: Option<usize>,
    /// The autotuner's current batch size.
    pub final_batch_size: usize,
    /// Per-axiom counters, in the order given to [`ProgressState::new`].
    pub axioms: Vec<AxiomSnapshot>,
}

impl ProgressSnapshot {
    /// Fraction of the space's subtree mass retired, in `[0, 1]`.
    pub fn mass_fraction(&self) -> f64 {
        if self.mass_total == 0 {
            return 0.0;
        }
        (self.mass_retired as f64 / self.mass_total as f64).min(1.0)
    }

    /// Projected time until *enumeration* completes, from the observed
    /// mass-retirement rate ([`transform_synth::programs::mass_eta`]).
    /// `None` before any mass retired.
    pub fn enumeration_eta(&self) -> Option<Duration> {
        transform_synth::programs::mass_eta(self.mass_retired, self.mass_total, self.elapsed)
    }

    /// Projected final plan-item count: the items planned so far scaled
    /// by the inverse retired-mass fraction (exact once enumeration
    /// finishes). `None` before any mass retired.
    pub fn estimated_plan_items(&self) -> Option<usize> {
        if self.partitions_retired >= self.partitions_total {
            return Some(self.items_planned);
        }
        if self.mass_retired == 0 {
            return None;
        }
        let scale = self.mass_total as f64 / self.mass_retired as f64;
        Some((self.items_planned as f64 * scale).ceil() as usize)
    }

    /// Projected time until `axiom` (a member of
    /// [`ProgressSnapshot::axioms`]) finishes examining its estimated
    /// schedule, from its observed examination rate. `None` for
    /// cached/complete/cut axioms (nothing left to project) and before
    /// any examination happened.
    pub fn axiom_eta(&self, axiom: &AxiomSnapshot) -> Option<Duration> {
        match axiom.state {
            AxiomState::Running | AxiomState::Pending => {}
            _ => return None,
        }
        let total = self.estimated_plan_items()?;
        if axiom.items_examined == 0 {
            return None;
        }
        let remaining = total.saturating_sub(axiom.items_examined);
        let rate = axiom.items_examined as f64 / self.elapsed.as_secs_f64().max(1e-9);
        Some(Duration::from_secs_f64(remaining as f64 / rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_snapshots_to_zeroes_and_pending_axioms() {
        let state = ProgressState::new(&["a", "b"]);
        let snap = state.snapshot();
        assert_eq!(snap.partitions_total, 0);
        assert_eq!(snap.mass_retired, 0);
        assert_eq!(snap.cut_at_partition, None);
        assert_eq!(snap.axioms.len(), 2);
        assert!(snap.axioms.iter().all(|a| a.state == AxiomState::Pending));
        assert_eq!(snap.mass_fraction(), 0.0);
        assert_eq!(snap.enumeration_eta(), None);
    }

    #[test]
    fn mark_cached_sets_the_slot_and_ignores_unknown_names() {
        let state = ProgressState::new(&["a", "b"]);
        state.mark_cached("b", 17);
        state.mark_cached("nonexistent", 99);
        let snap = state.snapshot();
        assert_eq!(snap.axioms[1].state, AxiomState::Cached);
        assert_eq!(snap.axioms[1].elts, 17);
        assert_eq!(snap.axioms[0].state, AxiomState::Pending);
    }

    #[test]
    fn etas_project_from_retired_fractions() {
        let state = ProgressState::new(&["a"]);
        state.partitions_total.store(10, ORD);
        state.mass_total.store(100, ORD);
        state.mass_retired.store(50, ORD);
        state.items_planned.store(40, ORD);
        state.set_axiom_state(0, AxiomState::Running);
        state.axiom(0).items_examined.store(20, ORD);
        let snap = state.snapshot();
        assert!((snap.mass_fraction() - 0.5).abs() < 1e-9);
        // Half the mass planned 40 items → ~80 projected.
        assert_eq!(snap.estimated_plan_items(), Some(80));
        let eta = snap.axiom_eta(&snap.axioms[0]).expect("rate exists");
        // 20 items examined, 60 projected remaining → ETA ≈ 3 × elapsed.
        let ratio = eta.as_secs_f64() / snap.elapsed.as_secs_f64();
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
        assert!(snap.enumeration_eta().is_some());
    }

    #[test]
    fn journal_records_only_when_enabled_and_drains_once() {
        let off = ProgressState::new(&["a"]);
        assert!(!off.journal_enabled());
        off.record(JournalEventKind::RunStart, None, 1, 2, 3);
        assert!(off.take_journal().is_empty());

        let on = ProgressState::with_journal(&["a"]);
        assert!(on.journal_enabled());
        on.record(JournalEventKind::RunStart, None, 10, 20, 2);
        on.record(JournalEventKind::BatchExamined, Some(0), 5, 1, 900);
        let events = on.take_journal();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, JournalEventKind::RunStart);
        assert_eq!(events[0].axiom, None);
        assert_eq!((events[0].a, events[0].b, events[0].c), (10, 20, 2));
        assert_eq!(events[1].axiom, Some(0));
        assert!(events[1].t_micros >= events[0].t_micros);
        assert!(on.take_journal().is_empty(), "drained exactly once");
    }

    #[test]
    fn journal_kinds_round_trip_their_wire_byte() {
        for kind in [
            JournalEventKind::RunStart,
            JournalEventKind::PartitionEnumerated,
            JournalEventKind::PartitionRetired,
            JournalEventKind::BatchExamined,
            JournalEventKind::FrontierStall,
            JournalEventKind::AxiomComplete,
            JournalEventKind::Cut,
            JournalEventKind::RunEnd,
            JournalEventKind::Seal,
            JournalEventKind::Push,
            JournalEventKind::WarmStart,
            JournalEventKind::WarmSkip,
            JournalEventKind::LeaseGranted,
            JournalEventKind::LeaseExpired,
            JournalEventKind::ShardUploaded,
            JournalEventKind::ShardRetry,
        ] {
            assert_eq!(JournalEventKind::from_u8(kind.as_u8()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(JournalEventKind::from_u8(250), None);
    }

    #[test]
    fn finished_axioms_have_no_eta() {
        let state = ProgressState::new(&["a"]);
        state.mass_total.store(10, ORD);
        state.mass_retired.store(10, ORD);
        state.partitions_total.store(1, ORD);
        state.partitions_retired.store(1, ORD);
        state.items_planned.store(5, ORD);
        state.axiom(0).items_examined.store(5, ORD);
        for s in [AxiomState::Complete, AxiomState::Cut, AxiomState::Cached] {
            state.set_axiom_state(0, s);
            let snap = state.snapshot();
            assert_eq!(snap.axiom_eta(&snap.axioms[0]), None, "{s:?}");
        }
        assert_eq!(state.snapshot().enumeration_eta(), Some(Duration::ZERO));
    }
}
