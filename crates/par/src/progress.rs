//! Live telemetry for streamed synthesis runs.
//!
//! A [`ProgressState`] is a block of atomics the fused pipeline
//! ([`crate::stream`]) publishes into as partitions retire and examine
//! batches drain — partitions and subtree mass retired (against the
//! totals from [`EnumSpace::masses`]), programs admitted through the
//! dedup frontier, the frontier's depth, live/peak candidate counts,
//! and per-axiom batch/item/ELT counters. Observers (the CLI's
//! `--progress` reporter) poll [`ProgressState::snapshot`] from any
//! thread without touching the pipeline's lock; the pipeline itself
//! writes with relaxed stores from inside lock-held transitions, so
//! observation adds no synchronization to the hot path.
//!
//! The same state is the run's final record: the returned
//! [`StreamMetrics`] *is* the last snapshot (see
//! [`StreamMetrics::from_snapshot`]), so live counters can never drift
//! from the numbers a run reports at the end.
//!
//! Cached-vs-live rendering: a store-tier lookup that serves an axiom
//! from a sealed entry marks its slot [`AxiomState::Cached`]
//! ([`ProgressState::mark_cached`]), while axioms entering the fused
//! run move through [`AxiomState::Running`] to [`AxiomState::Complete`]
//! (or [`AxiomState::Cut`] on a deadline).
//!
//! [`EnumSpace::masses`]: transform_synth::programs::EnumSpace::masses
//! [`StreamMetrics`]: crate::StreamMetrics
//! [`StreamMetrics::from_snapshot`]: crate::StreamMetrics::from_snapshot

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// All progress stores/loads are relaxed: every write happens inside a
/// pipeline-lock-held transition (mutually ordered already), and
/// readers only ever sample — they never synchronize with the run.
const ORD: Ordering = Ordering::Relaxed;

/// Sentinel for "no deadline cut" in the `cut_at_partition` atomic.
const NO_CUT: usize = usize::MAX;

/// Where one axiom's suite stands in a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AxiomState {
    /// Known to the run but not started (a fused run that has not
    /// reached it, or a tiered lookup still probing the cache).
    Pending,
    /// Its examine batches are in flight.
    Running,
    /// Its whole schedule retired cleanly; the suite is final.
    Complete,
    /// The deadline cut its schedule; the suite is partial.
    Cut,
    /// Served from a sealed store entry — no synthesis ran for it.
    Cached,
}

impl AxiomState {
    fn from_u8(v: u8) -> AxiomState {
        match v {
            1 => AxiomState::Running,
            2 => AxiomState::Complete,
            3 => AxiomState::Cut,
            4 => AxiomState::Cached,
            _ => AxiomState::Pending,
        }
    }

    /// The machine-readable spelling (`--progress json`, tests).
    pub fn name(self) -> &'static str {
        match self {
            AxiomState::Pending => "pending",
            AxiomState::Running => "running",
            AxiomState::Complete => "complete",
            AxiomState::Cut => "cut",
            AxiomState::Cached => "cached",
        }
    }
}

/// One axiom's live counters.
pub(crate) struct AxiomProgress {
    name: String,
    pub(crate) batches_done: AtomicUsize,
    pub(crate) items_examined: AtomicUsize,
    pub(crate) elts: AtomicUsize,
    pub(crate) state: AtomicU8,
}

/// Shared live counters of one (possibly multi-axiom) synthesis run.
///
/// Created by the observer (e.g. the CLI) with the run's axiom names,
/// wrapped in an [`Arc`](std::sync::Arc), and handed to an `_observed`
/// entry point ([`crate::synthesize_axioms_streamed_observed`] and
/// friends, or the store's `cached_or_synthesize*_observed` paths).
/// Poll [`ProgressState::snapshot`] from any thread.
pub struct ProgressState {
    started: Instant,
    axioms: Vec<AxiomProgress>,
    pub(crate) partitions_total: AtomicUsize,
    pub(crate) partitions_retired: AtomicUsize,
    pub(crate) mass_total: AtomicU64,
    pub(crate) mass_retired: AtomicU64,
    pub(crate) programs: AtomicUsize,
    pub(crate) items_planned: AtomicUsize,
    pub(crate) frontier_depth: AtomicUsize,
    pub(crate) live_candidates: AtomicUsize,
    pub(crate) peak_live_candidates: AtomicUsize,
    pub(crate) batches: AtomicUsize,
    pub(crate) cut_at_partition: AtomicUsize,
    pub(crate) final_batch_size: AtomicUsize,
}

impl ProgressState {
    /// A fresh state tracking `axioms` (every axiom the observer wants
    /// rendered — including ones a tiered lookup may serve from cache
    /// without ever entering the fused run).
    pub fn new<S: AsRef<str>>(axioms: &[S]) -> ProgressState {
        ProgressState {
            started: Instant::now(),
            axioms: axioms
                .iter()
                .map(|name| AxiomProgress {
                    name: name.as_ref().to_string(),
                    batches_done: AtomicUsize::new(0),
                    items_examined: AtomicUsize::new(0),
                    elts: AtomicUsize::new(0),
                    state: AtomicU8::new(AxiomState::Pending as u8),
                })
                .collect(),
            partitions_total: AtomicUsize::new(0),
            partitions_retired: AtomicUsize::new(0),
            mass_total: AtomicU64::new(0),
            mass_retired: AtomicU64::new(0),
            programs: AtomicUsize::new(0),
            items_planned: AtomicUsize::new(0),
            frontier_depth: AtomicUsize::new(0),
            live_candidates: AtomicUsize::new(0),
            peak_live_candidates: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            cut_at_partition: AtomicUsize::new(NO_CUT),
            final_batch_size: AtomicUsize::new(0),
        }
    }

    /// The slot index of `axiom`, or `None` when the state was built
    /// without it.
    pub(crate) fn slot_of(&self, axiom: &str) -> Option<usize> {
        self.axioms.iter().position(|a| a.name == axiom)
    }

    pub(crate) fn axiom(&self, slot: usize) -> &AxiomProgress {
        &self.axioms[slot]
    }

    pub(crate) fn set_axiom_state(&self, slot: usize, state: AxiomState) {
        self.axioms[slot].state.store(state as u8, ORD);
    }

    /// Marks `axiom` as served from a sealed cache entry with `elts`
    /// suite members — the store tier's hook, so cached and live axioms
    /// render distinctly. Unknown names are ignored (the observer chose
    /// not to track them).
    pub fn mark_cached(&self, axiom: &str, elts: usize) {
        if let Some(slot) = self.slot_of(axiom) {
            self.axioms[slot].elts.store(elts, ORD);
            self.set_axiom_state(slot, AxiomState::Cached);
        }
    }

    /// Time since the state was created (the observer's clock — it
    /// starts when the run is requested, cache probing included).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// A consistent-enough point-in-time copy of every counter: each
    /// counter is individually monotone (they are only ever increased,
    /// gauges aside), so repeated snapshots never move backwards, but
    /// no cross-counter invariant stronger than that is promised while
    /// the run is live. After the run returns, the snapshot is exact.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let cut = self.cut_at_partition.load(ORD);
        ProgressSnapshot {
            elapsed: self.started.elapsed(),
            partitions_total: self.partitions_total.load(ORD),
            partitions_retired: self.partitions_retired.load(ORD),
            mass_total: self.mass_total.load(ORD),
            mass_retired: self.mass_retired.load(ORD),
            programs: self.programs.load(ORD),
            items_planned: self.items_planned.load(ORD),
            frontier_depth: self.frontier_depth.load(ORD),
            live_candidates: self.live_candidates.load(ORD),
            peak_live_candidates: self.peak_live_candidates.load(ORD),
            batches: self.batches.load(ORD),
            cut_at_partition: (cut != NO_CUT).then_some(cut),
            final_batch_size: self.final_batch_size.load(ORD),
            axioms: self
                .axioms
                .iter()
                .map(|a| AxiomSnapshot {
                    name: a.name.clone(),
                    batches_done: a.batches_done.load(ORD),
                    items_examined: a.items_examined.load(ORD),
                    elts: a.elts.load(ORD),
                    state: AxiomState::from_u8(a.state.load(ORD)),
                })
                .collect(),
        }
    }
}

/// One axiom's counters at a sampling instant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AxiomSnapshot {
    /// The axiom's name.
    pub name: String,
    /// Examine batches retired for this axiom.
    pub batches_done: usize,
    /// Plan items examined for this axiom.
    pub items_examined: usize,
    /// Suite members (ELTs) emitted so far — or, for a
    /// [`AxiomState::Cached`] axiom, the sealed suite's size.
    pub elts: usize,
    /// Where the axiom stands.
    pub state: AxiomState,
}

/// A point-in-time copy of a run's [`ProgressState`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProgressSnapshot {
    /// Time since the progress state was created.
    pub elapsed: Duration,
    /// Enumeration partitions in the space (0 until the run binds).
    pub partitions_total: usize,
    /// Partitions admitted through the dedup frontier.
    pub partitions_retired: usize,
    /// Total estimated subtree mass of the space
    /// ([`EnumSpace::total_mass`]).
    ///
    /// [`EnumSpace::total_mass`]: transform_synth::programs::EnumSpace::total_mass
    pub mass_total: u64,
    /// Mass of the partitions admitted so far.
    pub mass_retired: u64,
    /// Programs admitted (post symmetry reduction).
    pub programs: usize,
    /// Plan items produced by the admitter (write-bearing first
    /// occurrences — each one examine unit per axiom).
    pub items_planned: usize,
    /// Enumerated partitions queued behind the in-order frontier.
    pub frontier_depth: usize,
    /// Candidate programs currently materialized.
    pub live_candidates: usize,
    /// Peak of [`ProgressSnapshot::live_candidates`] over the run,
    /// deadline-discarded tails included.
    pub peak_live_candidates: usize,
    /// Examine batches created, across all axioms.
    pub batches: usize,
    /// First partition the deadline cut, if any.
    pub cut_at_partition: Option<usize>,
    /// The autotuner's current batch size.
    pub final_batch_size: usize,
    /// Per-axiom counters, in the order given to [`ProgressState::new`].
    pub axioms: Vec<AxiomSnapshot>,
}

impl ProgressSnapshot {
    /// Fraction of the space's subtree mass retired, in `[0, 1]`.
    pub fn mass_fraction(&self) -> f64 {
        if self.mass_total == 0 {
            return 0.0;
        }
        (self.mass_retired as f64 / self.mass_total as f64).min(1.0)
    }

    /// Projected time until *enumeration* completes, from the observed
    /// mass-retirement rate ([`transform_synth::programs::mass_eta`]).
    /// `None` before any mass retired.
    pub fn enumeration_eta(&self) -> Option<Duration> {
        transform_synth::programs::mass_eta(self.mass_retired, self.mass_total, self.elapsed)
    }

    /// Projected final plan-item count: the items planned so far scaled
    /// by the inverse retired-mass fraction (exact once enumeration
    /// finishes). `None` before any mass retired.
    pub fn estimated_plan_items(&self) -> Option<usize> {
        if self.partitions_retired >= self.partitions_total {
            return Some(self.items_planned);
        }
        if self.mass_retired == 0 {
            return None;
        }
        let scale = self.mass_total as f64 / self.mass_retired as f64;
        Some((self.items_planned as f64 * scale).ceil() as usize)
    }

    /// Projected time until `axiom` (a member of
    /// [`ProgressSnapshot::axioms`]) finishes examining its estimated
    /// schedule, from its observed examination rate. `None` for
    /// cached/complete/cut axioms (nothing left to project) and before
    /// any examination happened.
    pub fn axiom_eta(&self, axiom: &AxiomSnapshot) -> Option<Duration> {
        match axiom.state {
            AxiomState::Running | AxiomState::Pending => {}
            _ => return None,
        }
        let total = self.estimated_plan_items()?;
        if axiom.items_examined == 0 {
            return None;
        }
        let remaining = total.saturating_sub(axiom.items_examined);
        let rate = axiom.items_examined as f64 / self.elapsed.as_secs_f64().max(1e-9);
        Some(Duration::from_secs_f64(remaining as f64 / rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_snapshots_to_zeroes_and_pending_axioms() {
        let state = ProgressState::new(&["a", "b"]);
        let snap = state.snapshot();
        assert_eq!(snap.partitions_total, 0);
        assert_eq!(snap.mass_retired, 0);
        assert_eq!(snap.cut_at_partition, None);
        assert_eq!(snap.axioms.len(), 2);
        assert!(snap.axioms.iter().all(|a| a.state == AxiomState::Pending));
        assert_eq!(snap.mass_fraction(), 0.0);
        assert_eq!(snap.enumeration_eta(), None);
    }

    #[test]
    fn mark_cached_sets_the_slot_and_ignores_unknown_names() {
        let state = ProgressState::new(&["a", "b"]);
        state.mark_cached("b", 17);
        state.mark_cached("nonexistent", 99);
        let snap = state.snapshot();
        assert_eq!(snap.axioms[1].state, AxiomState::Cached);
        assert_eq!(snap.axioms[1].elts, 17);
        assert_eq!(snap.axioms[0].state, AxiomState::Pending);
    }

    #[test]
    fn etas_project_from_retired_fractions() {
        let state = ProgressState::new(&["a"]);
        state.partitions_total.store(10, ORD);
        state.mass_total.store(100, ORD);
        state.mass_retired.store(50, ORD);
        state.items_planned.store(40, ORD);
        state.set_axiom_state(0, AxiomState::Running);
        state.axiom(0).items_examined.store(20, ORD);
        let snap = state.snapshot();
        assert!((snap.mass_fraction() - 0.5).abs() < 1e-9);
        // Half the mass planned 40 items → ~80 projected.
        assert_eq!(snap.estimated_plan_items(), Some(80));
        let eta = snap.axiom_eta(&snap.axioms[0]).expect("rate exists");
        // 20 items examined, 60 projected remaining → ETA ≈ 3 × elapsed.
        let ratio = eta.as_secs_f64() / snap.elapsed.as_secs_f64();
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
        assert!(snap.enumeration_eta().is_some());
    }

    #[test]
    fn finished_axioms_have_no_eta() {
        let state = ProgressState::new(&["a"]);
        state.mass_total.store(10, ORD);
        state.mass_retired.store(10, ORD);
        state.partitions_total.store(1, ORD);
        state.partitions_retired.store(1, ORD);
        state.items_planned.store(5, ORD);
        state.axiom(0).items_examined.store(5, ORD);
        for s in [AxiomState::Complete, AxiomState::Cut, AxiomState::Cached] {
            state.set_axiom_state(0, s);
            let snap = state.snapshot();
            assert_eq!(snap.axiom_eta(&snap.axioms[0]), None, "{s:?}");
        }
        assert_eq!(state.snapshot().enumeration_eta(), Some(Duration::ZERO));
    }
}
