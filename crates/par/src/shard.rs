//! Sharding of the synthesis plan and the work-stealing queue.
//!
//! A *shard* is a batch of plan items a worker processes on one
//! [`transform_synth::Examiner`] (and, for the relational backend, one
//! incremental SAT solver). Shards are built by grouping items on their
//! *skeleton prefix* — the shape of the program's first thread — so the
//! programs sharing a shard are structurally similar and the solver's
//! learnt clauses, activities, and phases transfer between them.
//!
//! Workers pull shards from a work-stealing queue: each worker drains its
//! own deque from the front and, when empty, steals from the back of the
//! most loaded victim. Stealing from the back hands over the largest
//! untouched batches while the owner keeps its cache-warm front.

use std::collections::VecDeque;
use std::sync::Mutex;
use transform_synth::programs::{PaRef, Program, SlotOp};
use transform_synth::WorkItem;

/// A batch of plan-item indices processed on one examiner.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Dense shard id (stable across runs for a fixed plan and count).
    pub id: usize,
    /// Indices into the plan's item list.
    pub items: Vec<usize>,
}

/// A 64-bit fingerprint of a program's skeleton prefix: the op sequence
/// of its first thread. Programs equal under this key start with the same
/// instruction shapes, which is what makes per-shard solver reuse pay.
pub fn prefix_key(program: &Program) -> u64 {
    let first = program.threads.first().map(Vec::as_slice).unwrap_or(&[]);
    let words = first
        .iter()
        .flat_map(|op| {
            let (tag, a, b) = match *op {
                SlotOp::Read { va, walk } => (1, va as u64, u64::from(walk)),
                SlotOp::Write { va, walk } => (2, va as u64, u64::from(walk)),
                SlotOp::Fence => (3, 0, 0),
                SlotOp::Invlpg { va } => (4, va as u64, 0),
                SlotOp::TlbFlush => (5, 0, 0),
                SlotOp::PteWrite { va, pa } => {
                    let pa = match pa {
                        PaRef::Initial(v) => v as u64,
                        PaRef::Fresh(k) => 1000 + k as u64,
                    };
                    (6, va as u64, pa)
                }
            };
            [tag, a, b]
        })
        .chain([program.threads.len() as u64]);
    crate::dedup::fnv1a(words)
}

/// Partitions plan items into at most `target` shards.
///
/// Items are first grouped by [`prefix_key`] (in first-appearance order,
/// keeping each group's items in enumeration order), then groups are
/// packed onto shards largest-first onto the least-loaded shard. The
/// result is deterministic: a fixed plan and target always shard the same
/// way.
pub fn make_shards(items: &[WorkItem], target: usize) -> Vec<Shard> {
    let target = target.max(1);
    // Group indices by prefix, preserving first-appearance group order
    // and enumeration order within each group.
    let mut group_index: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for item in items {
        let key = prefix_key(&item.program);
        let next = groups.len();
        let slot = *group_index.entry(key).or_insert(next);
        if slot == next {
            groups.push(Vec::new());
        }
        groups[slot].push(item.index);
    }
    // Largest group first onto the least-loaded shard; the sort is
    // stable and ties break by shard id, so packing is deterministic.
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    let shard_count = target.min(groups.len()).max(1);
    let mut shards: Vec<Shard> = (0..shard_count)
        .map(|id| Shard {
            id,
            items: Vec::new(),
        })
        .collect();
    for group in groups {
        let least = shards
            .iter_mut()
            .min_by_key(|s| (s.items.len(), s.id))
            .expect("at least one shard");
        least.items.extend(group);
    }
    shards.retain(|s| !s.items.is_empty());
    shards
}

/// A work-stealing task queue for a fixed worker count.
///
/// Tasks are any unit of claimable work — plain [`Shard`]s for a
/// single-suite run, or `(axiom, Shard)` pairs when one pool serves
/// every axiom of an MTM at once.
pub struct WorkQueue<T> {
    decks: Vec<Mutex<VecDeque<T>>>,
}

impl<T> WorkQueue<T> {
    /// Distributes `tasks` round-robin over `workers` local deques.
    pub fn new(tasks: Vec<T>, workers: usize) -> WorkQueue<T> {
        let workers = workers.max(1);
        let mut decks: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            decks[i % workers].push_back(task);
        }
        WorkQueue {
            decks: decks.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next task for `worker`: its own front, else a steal from the
    /// back of the fullest other deque. `None` once all work is claimed.
    pub fn next(&self, worker: usize) -> Option<T> {
        if let Some(shard) = self.decks[worker]
            .lock()
            .expect("queue lock is never poisoned")
            .pop_front()
        {
            return Some(shard);
        }
        loop {
            // Pick the currently fullest victim, then steal from its back.
            let victim = (0..self.decks.len())
                .filter(|&v| v != worker)
                .max_by_key(|&v| {
                    self.decks[v]
                        .lock()
                        .expect("queue lock is never poisoned")
                        .len()
                })?;
            let stolen = self.decks[victim]
                .lock()
                .expect("queue lock is never poisoned")
                .pop_back();
            match stolen {
                Some(shard) => return Some(shard),
                // Raced with the victim draining its own deque: rescan,
                // and give up once every deque is empty.
                None => {
                    if self
                        .decks
                        .iter()
                        .all(|d| d.lock().expect("queue lock is never poisoned").is_empty())
                    {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(index: usize, ops: Vec<SlotOp>) -> WorkItem {
        let program = Program {
            threads: vec![ops],
            remap: vec![],
            rmw: vec![],
        };
        let key = transform_synth::canon::canonical_key(&program);
        WorkItem {
            index,
            program,
            key,
        }
    }

    fn read(va: usize) -> SlotOp {
        SlotOp::Read { va, walk: true }
    }

    fn write(va: usize) -> SlotOp {
        SlotOp::Write { va, walk: true }
    }

    #[test]
    fn shards_cover_every_item_exactly_once() {
        let items: Vec<WorkItem> = (0..23)
            .map(|i| item(i, vec![if i % 3 == 0 { read(0) } else { write(i % 5) }]))
            .collect();
        for target in [1, 2, 4, 16, 64] {
            let shards = make_shards(&items, target);
            let mut seen: Vec<usize> = shards.iter().flat_map(|s| s.items.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..23).collect::<Vec<_>>(), "target {target}");
            assert!(shards.len() <= target.max(1));
        }
    }

    #[test]
    fn sharding_is_deterministic_and_prefix_grouped() {
        let items: Vec<WorkItem> = (0..12)
            .map(|i| item(i, vec![read(i % 2), write(0)]))
            .collect();
        let a = make_shards(&items, 4);
        let b = make_shards(&items, 4);
        assert_eq!(
            a.iter().map(|s| s.items.clone()).collect::<Vec<_>>(),
            b.iter().map(|s| s.items.clone()).collect::<Vec<_>>()
        );
        // Two prefix groups (read(0)- and read(1)-led) means at most two
        // non-empty shards, each holding one whole group.
        assert_eq!(a.len(), 2);
        for shard in &a {
            let keys: Vec<u64> = shard
                .items
                .iter()
                .map(|&i| prefix_key(&items[i].program))
                .collect();
            assert!(keys.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn queue_drains_completely_under_stealing() {
        let items: Vec<WorkItem> = (0..40).map(|i| item(i, vec![write(i % 7)])).collect();
        let shards = make_shards(&items, 8);
        let queue = WorkQueue::new(shards, 3);
        // Worker 2 claims everything (workers 0 and 1 never show up): all
        // items must still drain, via steals.
        let mut claimed = Vec::new();
        while let Some(shard) = queue.next(2) {
            claimed.extend(shard.items);
        }
        claimed.sort_unstable();
        assert_eq!(claimed, (0..40).collect::<Vec<_>>());
        assert!(queue.next(0).is_none());
    }
}
