//! A concurrent streaming dedup set over canonical program keys.
//!
//! Workers claim the canonical key of every ELT they emit as they stream
//! results in. For a single suite the plan already guarantees key
//! uniqueness, so claims act as a cross-thread invariant check; across
//! *suites* (one per axiom, as synthesized by
//! [`crate::synthesize_all_jobs`]) the same set computes the paper's
//! unique-union counts while suites are still being produced.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// FNV-1a over a word stream — the crate's one hash, shared by the
/// stripe selector here and [`crate::shard::prefix_key`].
pub(crate) fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in words {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of internal stripes; claims on different stripes never contend.
const STRIPES: usize = 16;

/// A striped concurrent set of canonical keys.
pub struct KeySet {
    stripes: Vec<Mutex<BTreeSet<Vec<u64>>>>,
}

impl KeySet {
    /// Creates an empty set.
    pub fn new() -> KeySet {
        KeySet {
            stripes: (0..STRIPES).map(|_| Mutex::new(BTreeSet::new())).collect(),
        }
    }

    fn stripe(&self, key: &[u64]) -> &Mutex<BTreeSet<Vec<u64>>> {
        &self.stripes[(fnv1a(key.iter().copied()) as usize) % STRIPES]
    }

    /// Claims `key`; `true` when this call was the first to claim it.
    pub fn claim(&self, key: &[u64]) -> bool {
        self.stripe(key)
            .lock()
            .expect("stripe lock is never poisoned")
            .insert(key.to_vec())
    }

    /// Whether `key` has been claimed.
    pub fn contains(&self, key: &[u64]) -> bool {
        self.stripe(key)
            .lock()
            .expect("stripe lock is never poisoned")
            .contains(key)
    }

    /// Total number of distinct keys claimed.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe lock is never poisoned").len())
            .sum()
    }

    /// Whether no key has been claimed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for KeySet {
    fn default() -> KeySet {
        KeySet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_claim_wins_across_threads() {
        let set = Arc::new(KeySet::new());
        let keys: Vec<Vec<u64>> = (0..200u64).map(|i| vec![i % 50, i / 50]).collect();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let set = Arc::clone(&set);
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                keys.iter().filter(|k| set.claim(k)).count()
            }));
        }
        let total: usize = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .sum();
        // 200 key values with 200 distinct (i%50, i/50) pairs.
        assert_eq!(total, 200);
        assert_eq!(set.len(), 200);
        assert!(set.contains(&[0, 0]));
        assert!(!set.claim(&[0, 0]));
    }
}
