//! `transform-par` — the parallel synthesis orchestrator.
//!
//! The TransForm paper reports synthesis runtimes up to its one-week
//! timeout on the Alloy/Kodkod/MiniSat stack; the sequential engine in
//! [`transform_synth`] is the same single-threaded architecture. This
//! crate distributes that engine across worker threads while reproducing
//! its output *exactly*: for any worker count, the synthesized suite is
//! byte-identical to the sequential one, and every work counter aggregates
//! losslessly.
//!
//! # Pipeline
//!
//! The paper's Fig. 7 engine factors into three phases (see
//! [`transform_synth::engine`]); this crate fuses the first two into one
//! streaming pool:
//!
//! 1. **Plan ∥ Examine** — the program space is split by *skeleton
//!    prefix* into independently enumerable partitions
//!    ([`transform_synth::programs::EnumSpace`]); partitions are pool
//!    tasks alongside examine batches, so workers generate, canonically
//!    key, and examine programs concurrently ([`stream`]). Partitions
//!    are *admitted* strictly in ordinal order through a dedup frontier
//!    — the same first-occurrence scan the sequential planner runs — so
//!    plan indices never depend on scheduling. Each examine batch runs
//!    on one [`transform_synth::Examiner`]; with the
//!    [`SynthBackend::Relational`] backend that examiner owns one incremental
//!    SAT solver (`tsat` solving under assumptions) serving every
//!    program in the batch, and batch granularity autotunes to the
//!    observed examination rate. Workers claim emitted ELT keys in a
//!    concurrent streaming dedup set ([`dedup::KeySet`]) as results
//!    stream in.
//! 2. **Merge** — per-item results are re-ordered by plan index and
//!    stitched into the suite; per-batch counters are kept and summed
//!    losslessly.
//!
//! The cross-axiom driver ([`synthesize_all_jobs`]) is the same fused
//! pipeline: the synthesis plan is axiom-independent, so one run
//! enumerates every partition once and fans each admitted chunk out as
//! one examine batch per axiom — no shared plan is materialized before
//! workers start, and each axiom's [`SuiteSink::run_done`] fires the
//! moment its schedule retires (the per-axiom seal + push-on-seal
//! hook). Partition splitting is *mass-balanced* by default: the exact
//! shape-combination node count below every prefix is memoized
//! ([`EnumSpace::balanced_for_target`]), so work units carry comparable
//! enumeration work instead of whatever a fixed-depth split happens to
//! produce ([`transform_synth::programs::Balance`] selects the mode).
//! The pre-streaming two-phase path ([`synthesize_suite_jobs_eager`],
//! [`synthesize_all_jobs_eager`]: full plan first via [`plan_par`],
//! then `(axiom, shard)` tasks on the [`shard::WorkQueue`]) is kept as
//! the baseline the `enum_throughput` bench measures against.
//!
//! Determinism holds because every per-item examination is a pure
//! function of the item: candidate executions are examined in a canonical
//! order rather than backend generation order, so not even shared-solver
//! learning can change which witness a program contributes.
//!
//! # Examples
//!
//! ```
//! use transform_core::spec::parse_mtm;
//! use transform_par::synthesize_suite_jobs;
//! use transform_synth::SynthOptions;
//!
//! let mtm = parse_mtm(
//!     "mtm x86t_elt {
//!        axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
//!      }",
//! ).expect("spec parses");
//! let mut opts = SynthOptions::new(4);
//! opts.enumeration.allow_fences = false;
//! opts.enumeration.allow_rmw = false;
//! let sequential = transform_synth::synthesize_suite(&mtm, "sc_per_loc", &opts);
//! let parallel = synthesize_suite_jobs(&mtm, "sc_per_loc", &opts, 4);
//! assert_eq!(sequential.elts.len(), parallel.elts.len());
//! ```

#![deny(missing_docs)]

pub mod dedup;
pub mod progress;
pub mod shard;
pub mod stream;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use transform_core::axiom::Mtm;
use transform_synth::programs::{Balance, EnumSpace, KeyedProgram};
use transform_synth::{
    branches_co_pa, Examiner, ShardStats, Suite, SuiteRecord, SuiteStats, SynthOptions, SynthPlan,
    SynthesizedElt,
};

pub use progress::{
    AxiomSnapshot, AxiomState, JournalEvent, JournalEventKind, ProgressSnapshot, ProgressState,
};
pub use stream::{RunArtifacts, StreamMetrics, WarmParent, WarmSeed};

/// Shards per worker: enough granularity for stealing to balance uneven
/// shards without shrinking them into solver-reuse-defeating slivers.
const SHARDS_PER_WORKER: usize = 4;

/// Enumeration partitions per worker: fine enough that the dedup
/// frontier rarely stalls on one straggler partition, coarse enough
/// that per-partition overhead stays negligible.
pub(crate) const PARTITIONS_PER_WORKER: usize = 8;

/// The machine's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Builds the enumeration space for a `jobs`-worker run under the
/// configured balance mode: mass-estimated splitting aims the same
/// `jobs × PARTITIONS_PER_WORKER` partition count as the depth split,
/// but sizes each partition by its exact shape-combination node count.
pub fn space_for(opts: &SynthOptions, jobs: usize) -> EnumSpace {
    let target = jobs * PARTITIONS_PER_WORKER;
    match opts.balance {
        Balance::Mass => EnumSpace::balanced_for_target(&opts.enumeration, target),
        Balance::Depth => EnumSpace::with_target_partitions(&opts.enumeration, target),
    }
}

/// The exact enumeration-node count of the space `opts` describes.
/// Node counts are partition-invariant (any `--jobs` or balance mode
/// yields the same figure), so this is the cross-check a warm-start
/// caller runs against a persisted admission digest before trusting
/// it: a digest with any other node count belongs to different
/// enumeration options and must not seed a warm run.
pub fn enumeration_nodes(opts: &SynthOptions) -> u64 {
    space_for(opts, 1).total_mass()
}

/// Parallel plan construction over the prefix-partitioned enumeration:
/// `jobs` workers enumerate (and canonically key — computed once, not
/// recomputed as the eager path did) the partitions of the program
/// space; the dedup frontier then admits partitions in ordinal order,
/// producing exactly the plan of [`transform_synth::plan_suite`] when no
/// deadline strikes.
///
/// A deadline cuts the plan at partition granularity: the first
/// partition whose worker observed the expiry is recorded in
/// [`SynthPlan::cut_at_partition`], every partition below it is fully
/// planned, and everything from it on is dropped — a timed-out plan is
/// a reproducible prefix of the deadline-free plan instead of a
/// worker-race-dependent subset.
///
/// `jobs <= 1` delegates to [`transform_synth::plan_suite`].
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn plan_par(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    deadline: Option<Instant>,
    jobs: usize,
) -> SynthPlan {
    if jobs <= 1 {
        return transform_synth::plan_suite(mtm, axiom, opts, deadline);
    }
    assert!(
        mtm.axiom(axiom).is_some(),
        "axiom `{axiom}` is not part of {}",
        mtm.name()
    );
    let space = space_for(opts, jobs);
    let count = space.partition_count();
    let next = AtomicUsize::new(0);
    // The smallest partition ordinal whose worker saw the deadline
    // expired; everything below it is guaranteed enumerated.
    let cut = AtomicUsize::new(usize::MAX);
    let slots: Vec<Mutex<Option<Vec<KeyedProgram>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(count).max(1) {
            let space = &space;
            let next = &next;
            let cut = &cut;
            let slots = &slots;
            scope.spawn(move || loop {
                let ordinal = next.fetch_add(1, Ordering::Relaxed);
                if ordinal >= count || ordinal >= cut.load(Ordering::Relaxed) {
                    break;
                }
                if deadline.is_some_and(|d| Instant::now() > d) {
                    cut.fetch_min(ordinal, Ordering::Relaxed);
                    break;
                }
                // The deadline is also honored *inside* the partition; a
                // partition whose enumeration saw the expiry is partial,
                // so it is discarded and becomes the cut point.
                let keyed = space.enumerate_keyed_within(ordinal, deadline);
                if deadline.is_some_and(|d| Instant::now() > d) {
                    cut.fetch_min(ordinal, Ordering::Relaxed);
                    break;
                }
                *slots[ordinal].lock().expect("slot lock is never poisoned") = Some(keyed);
            });
        }
    });
    let cutoff = cut.load(Ordering::Relaxed).min(count);
    let mut admitter = stream::Admitter::new(opts.enumeration.symmetry_reduction);
    let mut items = Vec::new();
    for slot in slots.into_iter().take(cutoff) {
        let keyed = slot
            .into_inner()
            .expect("slot lock is never poisoned")
            .expect("every partition below the cutoff was enumerated");
        items.extend(admitter.admit(keyed));
    }
    SynthPlan {
        items,
        programs: admitter.programs,
        timed_out: cutoff < count,
        cut_at_partition: (cutoff < count).then_some(cutoff),
        branch_co_pa: branches_co_pa(mtm),
    }
}

/// Receives a suite's members as parallel shards finish, instead of the
/// orchestrator collecting them in memory.
///
/// The persistent suite store (`transform-store`) implements this to
/// append shard files as workers retire shards; a collecting
/// implementation reproduces the in-memory [`Suite`]. Calls arrive from
/// worker threads in completion order — implementations must be
/// thread-safe, and must not assume record indices arrive sorted. Every
/// shard of a run is reported exactly once, including shards cut short
/// by the deadline (their counters are partial, and the run's
/// [`SuiteStats::timed_out`] is set).
pub trait SuiteSink: Sync {
    /// One shard retired: its work counters and the suite members
    /// (witness-bearing plan items) it produced.
    fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>);

    /// The run finished: called exactly once per synthesis run, after
    /// the final [`SuiteSink::shard_done`], with the run's aggregated
    /// counters. The default does nothing.
    ///
    /// This is the push-on-seal hook for tiered caches: a sink that
    /// streams shards into a pending store entry learns here whether the
    /// run completed (`stats.timed_out == false`) and can arrange for
    /// the sealed artifact to be published to a remote cache tier —
    /// timed-out runs are never sealed, hence never pushed.
    fn run_done(&self, _stats: &SuiteStats) {}
}

/// A [`SuiteSink`] that collects records in memory — the sink behind
/// [`synthesize_suite_jobs`].
struct CollectSink {
    records: Mutex<Vec<SuiteRecord>>,
}

impl CollectSink {
    fn new() -> CollectSink {
        CollectSink {
            records: Mutex::new(Vec::new()),
        }
    }

    fn into_elts(self) -> Vec<SynthesizedElt> {
        let mut records = self
            .records
            .into_inner()
            .expect("record lock is never poisoned");
        records.sort_by_key(|r| r.index);
        records.into_iter().map(|r| r.elt).collect()
    }
}

impl SuiteSink for CollectSink {
    fn shard_done(&self, _stats: ShardStats, records: Vec<SuiteRecord>) {
        self.records
            .lock()
            .expect("record lock is never poisoned")
            .extend(records);
    }
}

/// The shared worker pool: distributes `(axiom, shard)` tasks over
/// `jobs` workers and streams each finished shard to its axiom's sink.
/// Returns the per-axiom shard counters (sorted by shard id) and
/// per-axiom deadline flags.
fn run_pool(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    jobs: usize,
    deadline: Option<Instant>,
    plan: &SynthPlan,
    sinks: &[&dyn SuiteSink],
) -> (Vec<Vec<ShardStats>>, Vec<bool>) {
    assert_eq!(axioms.len(), sinks.len(), "one sink per axiom");
    let shards = shard::make_shards(&plan.items, jobs * SHARDS_PER_WORKER);
    // Axiom-major order: workers drain the first axiom's shards before
    // starting the next, so an expiring deadline leaves whole early
    // suites complete rather than every suite partial.
    let tasks: Vec<(usize, shard::Shard)> = axioms
        .iter()
        .enumerate()
        .flat_map(|(ai, _)| shards.iter().map(move |s| (ai, s.clone())))
        .collect();
    let queue = shard::WorkQueue::new(tasks, jobs);
    let claimed: Vec<dedup::KeySet> = axioms.iter().map(|_| dedup::KeySet::new()).collect();
    let shard_stats: Vec<Mutex<Vec<ShardStats>>> =
        axioms.iter().map(|_| Mutex::new(Vec::new())).collect();
    let examined_items: Vec<AtomicUsize> = axioms.iter().map(|_| AtomicUsize::new(0)).collect();
    let expired = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let queue = &queue;
            let claimed = &claimed;
            let shard_stats = &shard_stats;
            let examined_items = &examined_items;
            let expired = &expired;
            scope.spawn(move || {
                let past_deadline = || deadline.is_some_and(|d| Instant::now() > d);
                while let Some((ai, batch)) = queue.next(worker) {
                    if expired.load(Ordering::Relaxed) || past_deadline() {
                        expired.store(true, Ordering::Relaxed);
                        break;
                    }
                    // One examiner — and, for the relational backend, one
                    // incremental SAT solver — per shard.
                    let mut examiner =
                        Examiner::new(mtm, axioms[ai], opts.backend, plan.branch_co_pa);
                    let mut stats = ShardStats::new(batch.id);
                    let mut records = Vec::new();
                    for &index in &batch.items {
                        if past_deadline() {
                            expired.store(true, Ordering::Relaxed);
                            break;
                        }
                        let item = &plan.items[index];
                        let mut examined = examiner.examine(&item.program);
                        stats.absorb(&examined);
                        if examined.witness.is_some() && !claimed[ai].claim(&item.key) {
                            // The plan guarantees key uniqueness; dropping
                            // a duplicate witness (never its counters)
                            // keeps the merge correct even if a future
                            // enumerator breaks that invariant.
                            debug_assert!(false, "duplicate canonical key in plan");
                            examined.witness = None;
                        }
                        if let Some((witness, violated)) = examined.witness {
                            records.push(SuiteRecord {
                                index,
                                elt: SynthesizedElt {
                                    program: item.program.clone(),
                                    witness,
                                    violated,
                                },
                            });
                        }
                    }
                    examined_items[ai].fetch_add(stats.items, Ordering::Relaxed);
                    shard_stats[ai]
                        .lock()
                        .expect("stats lock is never poisoned")
                        .push(stats);
                    sinks[ai].shard_done(stats, records);
                }
            });
        }
    });

    let hit_deadline = expired.load(Ordering::Relaxed);
    let per_axiom: Vec<Vec<ShardStats>> = shard_stats
        .into_iter()
        .map(|m| {
            let mut shards = m.into_inner().expect("stats lock is never poisoned");
            shards.sort_by_key(|s| s.shard);
            shards
        })
        .collect();
    // An axiom is complete when every plan item was examined for it —
    // the deadline may strike after early axioms already finished.
    let timed_out: Vec<bool> = examined_items
        .iter()
        .map(|n| hit_deadline && n.load(Ordering::Relaxed) < plan.items.len())
        .collect();
    (per_axiom, timed_out)
}

/// Synthesizes the per-axiom suite on `jobs` workers through the fused
/// streaming pipeline (enumeration, canonical keying, dedup, and
/// examination all inside one work-stealing pool — see [`stream`]),
/// streaming every retired batch into `sink` instead of collecting
/// members in memory. Returns the run's work counters; the suite itself
/// lives wherever the sink put it (for the persistent store: sealed
/// shard files whose merge reproduces the canonical suite order).
///
/// The records streamed are exactly the members of
/// [`synthesize_suite_jobs`]'s suite — sorting them by
/// [`SuiteRecord::index`] recovers the byte-identical sequential suite.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn synthesize_suite_streamed(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    sink: &dyn SuiteSink,
) -> SuiteStats {
    synthesize_suite_streamed_metrics(mtm, axiom, opts, jobs, sink).0
}

/// Like [`synthesize_suite_streamed`], additionally returning the
/// pipeline's scheduling metrics (partition count, deadline cut point,
/// batch count, peak live candidates) — the side channel the
/// `enum_throughput` bench records.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn synthesize_suite_streamed_metrics(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    sink: &dyn SuiteSink,
) -> (SuiteStats, StreamMetrics) {
    stream::run_streamed(mtm, axiom, opts, jobs, sink, None)
}

/// Like [`synthesize_suite_streamed_metrics`], publishing live counters
/// into `progress` as the run advances — partitions and subtree mass
/// retired, programs admitted, per-axiom batch/item/ELT counts
/// ([`progress`] has the full inventory). The returned
/// [`StreamMetrics`] is the final snapshot of the same state.
/// Observation is lock-free sampling; it adds no synchronization to the
/// pipeline's hot path.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm` or not tracked by
/// `progress`.
pub fn synthesize_suite_streamed_observed(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    sink: &dyn SuiteSink,
    progress: &std::sync::Arc<ProgressState>,
) -> (SuiteStats, StreamMetrics) {
    stream::run_streamed(mtm, axiom, opts, jobs, sink, Some(progress))
}

/// Synthesizes the per-axiom suites of several axioms in **one fused
/// streamed run** on `jobs` workers: the program space is enumerated
/// once (the plan is axiom-independent), every admitted chunk fans out
/// as one examine batch per axiom, and each axiom's sink receives its
/// retired shards as they finish — `run_done` fires per axiom the
/// moment that axiom's schedule retires, so a store-backed sink seals
/// (and pushes) early suites while later ones are still examining. No
/// shared plan is materialized before workers start.
///
/// Returns the per-axiom counters in `axioms` order. Each axiom's
/// records are exactly the members of its [`synthesize_suite_jobs`]
/// suite — sorting them by [`SuiteRecord::index`] recovers the
/// byte-identical sequential suite.
///
/// # Panics
///
/// Panics when any axiom is not part of `mtm` or `axioms` and `sinks`
/// disagree in length.
pub fn synthesize_axioms_streamed(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    jobs: usize,
    sinks: &[&dyn SuiteSink],
) -> Vec<SuiteStats> {
    synthesize_axioms_streamed_metrics(mtm, axioms, opts, jobs, sinks).0
}

/// Like [`synthesize_axioms_streamed`], additionally returning the
/// fused run's scheduling metrics.
///
/// # Panics
///
/// Panics when any axiom is not part of `mtm` or `axioms` and `sinks`
/// disagree in length.
pub fn synthesize_axioms_streamed_metrics(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    jobs: usize,
    sinks: &[&dyn SuiteSink],
) -> (Vec<SuiteStats>, StreamMetrics) {
    let (stats, metrics, _) = stream::run_fused(mtm, axioms, opts, jobs, sinks, None, None);
    (stats, metrics)
}

/// Like [`synthesize_axioms_streamed_metrics`] with the incremental
/// cross-bound machinery exposed: an optional [`WarmSeed`] derived from
/// a sealed bound-N−1 run warm-starts the pipeline (covered enumeration
/// nodes replay the parent's admission digest instead of
/// re-enumerating, fully covered partitions are skipped outright, and
/// each parent suite is spliced back in as one synthetic shard), and
/// the returned [`RunArtifacts`] carry this run's own digest — the seed
/// of the *next* bound — plus, on warm runs, the parent-record index
/// maps a delta store entry encodes. Warm output is byte-identical to
/// the cold run's records and semantic totals at every worker count;
/// only the scheduling-dependent shard breakdown (and `elapsed`)
/// differs. `progress` is optional, exactly as in the `_observed`
/// variant.
///
/// # Panics
///
/// Panics when any axiom is not part of `mtm`, `axioms` and `sinks`
/// disagree in length, a warm seed's parent count disagrees with
/// `axioms`, or `progress` is given but does not track every axiom.
pub fn synthesize_axioms_streamed_incremental(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    jobs: usize,
    sinks: &[&dyn SuiteSink],
    progress: Option<&std::sync::Arc<ProgressState>>,
    warm: Option<&WarmSeed>,
) -> (Vec<SuiteStats>, StreamMetrics, RunArtifacts) {
    stream::run_fused(mtm, axioms, opts, jobs, sinks, progress, warm)
}

/// The fleet's per-worker entry: a fused run restricted to the
/// partition range `[range.0, range.1)` of the plan a `plan_jobs`-way
/// partitioning produces (global ordinals of [`space_for`]`(opts,
/// plan_jobs)`). The whole prefix `[0, range.1)` is enumerated and
/// admitted — dedup state and plan indices stay global — but only items
/// admitted inside the range are examined and delivered to the sinks,
/// so ranges that tile `[0, partition_count)` yield records and
/// semantic counters whose ordinal-ordered concatenation is exactly the
/// single-machine fused run, at any worker count.
///
/// `jobs` is this worker's local thread count and never affects the
/// output; `plan_jobs` (fixed by the coordinator for the whole fleet)
/// alone determines the partition shape. Range runs are always cold —
/// fleet jobs carry no warm seed. The returned [`RunArtifacts`] hold
/// this run's admission digest over `[0, range.1)` enumeration nodes.
///
/// # Panics
///
/// Panics when any axiom is not part of `mtm`, `axioms` and `sinks`
/// disagree in length, or the range is not ordered inside
/// `[0, partition_count]`.
pub fn synthesize_axioms_fused_range(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    plan_jobs: usize,
    jobs: usize,
    range: (usize, usize),
    sinks: &[&dyn SuiteSink],
) -> (Vec<SuiteStats>, StreamMetrics, RunArtifacts) {
    stream::run_fused_range(
        mtm,
        axioms,
        opts,
        plan_jobs,
        jobs,
        sinks,
        None,
        None,
        Some(range),
    )
}

/// Like [`synthesize_axioms_streamed_metrics`], publishing live
/// counters into `progress` as the fused run advances. `progress` may
/// track more axioms than this run covers (the tiered store passes its
/// caller's state, with cache-served axioms already marked
/// [`AxiomState::Cached`]); the run binds its own axioms by name.
///
/// # Panics
///
/// Panics when any axiom is not part of `mtm`, not tracked by
/// `progress`, or `axioms` and `sinks` disagree in length.
pub fn synthesize_axioms_streamed_observed(
    mtm: &Mtm,
    axioms: &[&str],
    opts: &SynthOptions,
    jobs: usize,
    sinks: &[&dyn SuiteSink],
    progress: &std::sync::Arc<ProgressState>,
) -> (Vec<SuiteStats>, StreamMetrics) {
    let (stats, metrics, _) =
        stream::run_fused(mtm, axioms, opts, jobs, sinks, Some(progress), None);
    (stats, metrics)
}

/// The pre-streaming two-phase reference: the full plan is materialized
/// first (every program enumerated and keyed before any examination),
/// then sharded across the pool. Output is byte-identical to
/// [`synthesize_suite_jobs`]; kept as the baseline the `enum_throughput`
/// bench measures the fused pipeline against.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn synthesize_suite_jobs_eager(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
) -> Suite {
    let jobs = jobs.max(1);
    let start = Instant::now();
    let deadline = opts.timeout.map(|t| start + t);
    let plan = plan_par(mtm, axiom, opts, deadline, jobs);
    let sink = CollectSink::new();
    let (mut per_axiom, timed_out) = run_pool(mtm, &[axiom], opts, jobs, deadline, &plan, &[&sink]);
    let mut stats = SuiteStats::from_shards(plan.programs, per_axiom.remove(0));
    stats.elapsed = start.elapsed();
    stats.timed_out = timed_out[0] || plan.timed_out;
    sink.run_done(&stats);
    Suite {
        axiom: axiom.to_string(),
        elts: sink.into_elts(),
        stats,
    }
}

/// Synthesizes the per-axiom suite on `jobs` worker threads.
///
/// For any `jobs`, the resulting suite (programs, order, witnesses) is
/// byte-identical to [`transform_synth::synthesize_suite`], and the
/// `executions`/`forbidden`/`minimal` counters sum to the same totals;
/// only the per-shard breakdown and wall-clock differ. Runs that hit
/// `opts.timeout` are best-effort, exactly like the sequential engine.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn synthesize_suite_jobs(mtm: &Mtm, axiom: &str, opts: &SynthOptions, jobs: usize) -> Suite {
    let jobs = jobs.max(1);
    if jobs == 1 {
        return transform_synth::synthesize_suite(mtm, axiom, opts);
    }
    let sink = CollectSink::new();
    let stats = synthesize_suite_streamed(mtm, axiom, opts, jobs, &sink);
    Suite {
        axiom: axiom.to_string(),
        elts: sink.into_elts(),
        stats,
    }
}

/// [`synthesize_suite_jobs`] with live telemetry: the run publishes
/// into `progress` while it executes. Always runs the streamed pipeline
/// (even at `jobs == 1` — there is nothing to observe in the sequential
/// engine), whose suite is byte-identical to the sequential one at
/// every worker count.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm` or not tracked by
/// `progress`.
pub fn synthesize_suite_jobs_observed(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    jobs: usize,
    progress: &std::sync::Arc<ProgressState>,
) -> Suite {
    let sink = CollectSink::new();
    let (stats, _) =
        synthesize_suite_streamed_observed(mtm, axiom, opts, jobs.max(1), &sink, progress);
    Suite {
        axiom: axiom.to_string(),
        elts: sink.into_elts(),
        stats,
    }
}

/// Synthesizes every per-axiom suite of `mtm` on `jobs` workers — the
/// parallel counterpart of [`transform_synth::synthesize_all`].
///
/// One fused streamed run serves all axioms: the program space is
/// enumerated once (partitions are work items alongside the per-axiom
/// examine batches — no shared plan is materialized before workers
/// start), and workers idled by an exhausted axiom immediately pick up
/// another's batches instead of waiting at a per-axiom barrier. Each
/// per-axiom suite is byte-identical to its sequential counterpart.
/// With a timeout, the budget covers the whole run; an axiom whose
/// schedule fully retired before the expiry stays complete, and each
/// suite's `elapsed` reports the shared run's wall-clock at its own
/// completion.
pub fn synthesize_all_jobs(mtm: &Mtm, opts: &SynthOptions, jobs: usize) -> BTreeMap<String, Suite> {
    synthesize_all_jobs_with_union(mtm, opts, jobs).0
}

/// Like [`synthesize_all_jobs`], additionally claiming every emitted
/// ELT's canonical key in one cross-suite [`dedup::KeySet`]. The second
/// component is the number of distinct programs across all per-axiom
/// suites — the paper's headline unique-union count ("140 unique
/// ELTs"), available without a second pass over the suites.
pub fn synthesize_all_jobs_with_union(
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
) -> (BTreeMap<String, Suite>, usize) {
    let jobs = jobs.max(1);
    let suites: BTreeMap<String, Suite> = if jobs == 1 {
        transform_synth::synthesize_all(mtm, opts)
    } else {
        let axioms: Vec<&str> = mtm.axioms().iter().map(|a| a.name.as_str()).collect();
        let sinks: Vec<CollectSink> = axioms.iter().map(|_| CollectSink::new()).collect();
        let sink_refs: Vec<&dyn SuiteSink> = sinks.iter().map(|s| s as &dyn SuiteSink).collect();
        let all_stats = synthesize_axioms_streamed(mtm, &axioms, opts, jobs, &sink_refs);
        axioms
            .iter()
            .zip(sinks)
            .zip(all_stats)
            .map(|((axiom, sink), stats)| {
                (
                    axiom.to_string(),
                    Suite {
                        axiom: axiom.to_string(),
                        elts: sink.into_elts(),
                        stats,
                    },
                )
            })
            .collect()
    };
    let union = dedup::KeySet::new();
    for suite in suites.values() {
        for elt in &suite.elts {
            union.claim(&transform_synth::canon::canonical_key(&elt.program));
        }
    }
    let distinct = union.len();
    (suites, distinct)
}

/// [`synthesize_all_jobs`] with live telemetry: one fused streamed run
/// over every axiom of `mtm`, publishing into `progress` while it
/// executes (always streamed, even at `jobs == 1`). Each per-axiom
/// suite is byte-identical to its sequential counterpart.
///
/// # Panics
///
/// Panics when `progress` does not track every axiom of `mtm`.
pub fn synthesize_all_jobs_observed(
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
    progress: &std::sync::Arc<ProgressState>,
) -> BTreeMap<String, Suite> {
    let axioms: Vec<&str> = mtm.axioms().iter().map(|a| a.name.as_str()).collect();
    let sinks: Vec<CollectSink> = axioms.iter().map(|_| CollectSink::new()).collect();
    let sink_refs: Vec<&dyn SuiteSink> = sinks.iter().map(|s| s as &dyn SuiteSink).collect();
    let (all_stats, _) =
        synthesize_axioms_streamed_observed(mtm, &axioms, opts, jobs.max(1), &sink_refs, progress);
    axioms
        .iter()
        .zip(sinks)
        .zip(all_stats)
        .map(|((axiom, sink), stats)| {
            (
                axiom.to_string(),
                Suite {
                    axiom: axiom.to_string(),
                    elts: sink.into_elts(),
                    stats,
                },
            )
        })
        .collect()
}

/// The pre-fusion cross-axiom reference: one shared plan is fully
/// materialized first ([`plan_par`]), then every `(axiom, shard)` pair
/// runs on the work-stealing pool. Output is byte-identical to
/// [`synthesize_all_jobs`]; kept as the baseline the `enum_throughput`
/// bench measures the fused cross-axiom pipeline against.
pub fn synthesize_all_jobs_eager(
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
) -> BTreeMap<String, Suite> {
    let jobs = jobs.max(1);
    let start = Instant::now();
    let deadline = opts.timeout.map(|t| start + t);
    let axioms: Vec<&str> = mtm.axioms().iter().map(|a| a.name.as_str()).collect();
    // The plan is axiom-independent (it filters on write-bearing
    // canonical forms), so one plan serves every axiom's tasks.
    let plan = plan_par(mtm, axioms[0], opts, deadline, jobs);
    let sinks: Vec<CollectSink> = axioms.iter().map(|_| CollectSink::new()).collect();
    let sink_refs: Vec<&dyn SuiteSink> = sinks.iter().map(|s| s as &dyn SuiteSink).collect();
    let (per_axiom, timed_out) = run_pool(mtm, &axioms, opts, jobs, deadline, &plan, &sink_refs);
    let elapsed = start.elapsed();
    axioms
        .iter()
        .zip(sinks)
        .zip(per_axiom.into_iter().zip(timed_out))
        .map(|((axiom, sink), (shards, cut))| {
            let mut stats = SuiteStats::from_shards(plan.programs, shards);
            stats.elapsed = elapsed;
            stats.timed_out = cut || plan.timed_out;
            sink.run_done(&stats);
            (
                axiom.to_string(),
                Suite {
                    axiom: axiom.to_string(),
                    elts: sink.into_elts(),
                    stats,
                },
            )
        })
        .collect()
}

/// Re-exported so callers of the parallel API can name the backend
/// without a direct `transform_synth` dependency.
pub use transform_synth::Backend as SynthBackend;

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::spec::parse_mtm;

    fn small_mtm() -> Mtm {
        parse_mtm(
            "mtm x86t_elt {
               axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
               axiom invlpg:     acyclic(fr_va | ^po | remap)
             }",
        )
        .expect("spec parses")
    }

    fn opts(bound: usize) -> SynthOptions {
        let mut o = SynthOptions::new(bound);
        o.enumeration.allow_fences = false;
        o.enumeration.allow_rmw = false;
        o
    }

    #[test]
    fn plan_par_equals_sequential_plan() {
        let mtm = small_mtm();
        let o = opts(4);
        let sequential = transform_synth::plan_suite(&mtm, "invlpg", &o, None);
        for jobs in [1, 2, 8] {
            let parallel = plan_par(&mtm, "invlpg", &o, None, jobs);
            assert_eq!(sequential.programs, parallel.programs);
            assert_eq!(sequential.items.len(), parallel.items.len());
            for (a, b) in sequential.items.iter().zip(&parallel.items) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.key, b.key);
                assert_eq!(a.program, b.program);
            }
        }
    }

    #[test]
    fn parallel_suite_matches_sequential_engine() {
        let mtm = small_mtm();
        let o = opts(4);
        let sequential = transform_synth::synthesize_suite(&mtm, "sc_per_loc", &o);
        let parallel = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 4);
        assert_eq!(sequential.elts.len(), parallel.elts.len());
        for (a, b) in sequential.elts.iter().zip(&parallel.elts) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.witness, b.witness);
            assert_eq!(a.violated, b.violated);
        }
        assert_eq!(sequential.stats.executions, parallel.stats.executions);
        assert_eq!(sequential.stats.forbidden, parallel.stats.forbidden);
        assert_eq!(sequential.stats.minimal, parallel.stats.minimal);
        assert_eq!(sequential.stats.programs, parallel.stats.programs);
        // The parallel run actually sharded.
        assert!(parallel.stats.shards.len() > 1);
        let item_sum: usize = parallel.stats.shards.iter().map(|s| s.items).sum();
        assert_eq!(item_sum, sequential.stats.shards[0].items);
    }

    #[test]
    fn pooled_all_matches_per_axiom_suites() {
        let mtm = small_mtm();
        let o = opts(4);
        let pooled = synthesize_all_jobs(&mtm, &o, 4);
        for (axiom, suite) in &pooled {
            let solo = synthesize_suite_jobs(&mtm, axiom, &o, 4);
            assert_eq!(suite.elts.len(), solo.elts.len(), "{axiom}");
            for (a, b) in suite.elts.iter().zip(&solo.elts) {
                assert_eq!(a.program, b.program, "{axiom}");
                assert_eq!(a.witness, b.witness, "{axiom}");
                assert_eq!(a.violated, b.violated, "{axiom}");
            }
            assert_eq!(suite.stats.programs, solo.stats.programs);
            assert_eq!(suite.stats.executions, solo.stats.executions);
            assert_eq!(suite.stats.forbidden, solo.stats.forbidden);
            assert_eq!(suite.stats.minimal, solo.stats.minimal);
            assert!(!suite.stats.timed_out);
        }
    }

    #[test]
    fn streamed_sink_reproduces_the_suite() {
        struct TestSink {
            records: Mutex<Vec<SuiteRecord>>,
            shards: Mutex<Vec<ShardStats>>,
            done: Mutex<Vec<SuiteStats>>,
        }
        impl SuiteSink for TestSink {
            fn shard_done(&self, stats: ShardStats, records: Vec<SuiteRecord>) {
                self.shards.lock().unwrap().push(stats);
                self.records.lock().unwrap().extend(records);
            }
            fn run_done(&self, stats: &SuiteStats) {
                self.done.lock().unwrap().push(stats.clone());
            }
        }
        let mtm = small_mtm();
        let o = opts(4);
        let sink = TestSink {
            records: Mutex::new(Vec::new()),
            shards: Mutex::new(Vec::new()),
            done: Mutex::new(Vec::new()),
        };
        let stats = synthesize_suite_streamed(&mtm, "sc_per_loc", &o, 4, &sink);
        let suite = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 4);
        let mut records = sink.records.into_inner().unwrap();
        records.sort_by_key(|r| r.index);
        assert_eq!(records.len(), suite.elts.len());
        for (r, e) in records.iter().zip(&suite.elts) {
            assert_eq!(r.elt.program, e.program);
            assert_eq!(r.elt.witness, e.witness);
            assert_eq!(r.elt.violated, e.violated);
        }
        // Record indices strictly increase after sorting (plan indices
        // are unique), and every shard was reported exactly once.
        assert!(records.windows(2).all(|w| w[0].index < w[1].index));
        assert_eq!(sink.shards.into_inner().unwrap().len(), stats.shards.len());
        assert_eq!(stats.executions, suite.stats.executions);
        assert!(!stats.timed_out);
        // The completion hook fired exactly once, with the final counters.
        let done = sink.done.into_inner().unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].executions, stats.executions);
        assert!(!done[0].timed_out);
    }

    #[test]
    fn expired_deadline_cuts_the_streamed_run_cleanly() {
        let mtm = small_mtm();
        let mut o = opts(6);
        o.timeout = Some(std::time::Duration::ZERO);
        let suite = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 4);
        assert!(suite.stats.timed_out);
        assert!(suite.elts.is_empty());
        // The plan-level counterpart records the reproducible cut point.
        let deadline = Some(Instant::now() - std::time::Duration::from_secs(1));
        let plan = plan_par(&mtm, "sc_per_loc", &o, deadline, 4);
        assert!(plan.timed_out);
        assert_eq!(plan.cut_at_partition, Some(0));
        assert!(plan.items.is_empty());
    }

    /// The tentpole invariant: journaling is a pure side buffer.
    /// Suites from a journal-recording run are byte-identical to the
    /// sequential engine's at every worker count, and the journal
    /// itself brackets the run with start/end events.
    #[test]
    fn journaled_runs_reproduce_the_sequential_suite_at_any_jobs() {
        let mtm = small_mtm();
        let o = opts(4);
        let reference = transform_synth::synthesize_suite(&mtm, "sc_per_loc", &o);
        for jobs in [1, 2, 4] {
            let progress = std::sync::Arc::new(ProgressState::with_journal(&["sc_per_loc"]));
            let suite = synthesize_suite_jobs_observed(&mtm, "sc_per_loc", &o, jobs, &progress);
            assert_eq!(suite.elts.len(), reference.elts.len(), "jobs {jobs}");
            for (a, b) in suite.elts.iter().zip(&reference.elts) {
                assert_eq!(a.program, b.program, "jobs {jobs}");
                assert_eq!(a.witness, b.witness, "jobs {jobs}");
                assert_eq!(a.violated, b.violated, "jobs {jobs}");
            }
            assert_eq!(suite.stats.executions, reference.stats.executions);
            let events = progress.take_journal();
            assert_eq!(
                events.first().map(|e| e.kind),
                Some(progress::JournalEventKind::RunStart),
                "jobs {jobs}"
            );
            assert_eq!(
                events.last().map(|e| e.kind),
                Some(progress::JournalEventKind::RunEnd),
                "jobs {jobs}"
            );
            // Every retired partition and batch left a span, and
            // timestamps never run backwards within... emission order is
            // per-lock-transition, so they are monotone overall.
            assert!(events
                .iter()
                .any(|e| e.kind == progress::JournalEventKind::PartitionRetired));
            assert!(events
                .iter()
                .any(|e| e.kind == progress::JournalEventKind::BatchExamined));
            assert!(events
                .iter()
                .any(|e| e.kind == progress::JournalEventKind::AxiomComplete));
            assert!(events.windows(2).all(|w| w[0].t_micros <= w[1].t_micros));
        }
    }

    /// A deadline-cut journaled run records the cut event, and the
    /// progress mirror carries the exact retired mass the manifest
    /// persists.
    #[test]
    fn journaled_deadline_cut_records_the_cut_event() {
        let mtm = small_mtm();
        let mut o = opts(6);
        o.timeout = Some(std::time::Duration::ZERO);
        let progress = std::sync::Arc::new(ProgressState::with_journal(&["sc_per_loc"]));
        let suite = synthesize_suite_jobs_observed(&mtm, "sc_per_loc", &o, 2, &progress);
        assert!(suite.stats.timed_out);
        let snap = progress.snapshot();
        assert!(snap.cut_at_partition.is_some());
        let events = progress.take_journal();
        assert!(
            events
                .iter()
                .any(|e| e.kind == progress::JournalEventKind::Cut),
            "cut runs journal their cut point"
        );
        // The retired mass in the snapshot is the sum of the retired
        // partitions' journaled masses — exact, not estimated.
        let journaled: u64 = events
            .iter()
            .filter(|e| e.kind == progress::JournalEventKind::PartitionRetired)
            .map(|e| e.b)
            .sum();
        assert_eq!(snap.mass_retired, journaled);
    }

    #[test]
    fn synthesize_all_jobs_covers_every_axiom() {
        let mtm = small_mtm();
        let (suites, distinct) = synthesize_all_jobs_with_union(&mtm, &opts(4), 2);
        assert_eq!(suites.len(), 2);
        assert!(suites.values().all(|s| !s.elts.is_empty()));
        // The streaming cross-suite union equals the batch computation.
        assert_eq!(
            distinct,
            transform_synth::unique_union(suites.values()).len()
        );
        let total: usize = suites.values().map(|s| s.elts.len()).sum();
        assert!(distinct <= total);
    }
}
