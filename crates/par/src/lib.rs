//! `transform-par` — the parallel synthesis orchestrator.
//!
//! The TransForm paper reports synthesis runtimes up to its one-week
//! timeout on the Alloy/Kodkod/MiniSat stack; the sequential engine in
//! [`transform_synth`] is the same single-threaded architecture. This
//! crate distributes that engine across worker threads while reproducing
//! its output *exactly*: for any worker count, the synthesized suite is
//! byte-identical to the sequential one, and every work counter aggregates
//! losslessly.
//!
//! # Pipeline
//!
//! The paper's Fig. 7 engine factors into three phases (see
//! [`transform_synth::engine`]), and this crate parallelizes the first
//! two:
//!
//! 1. **Plan** — program enumeration stays sequential (it is a tiny
//!    fraction of runtime), but canonical-key computation — the expensive
//!    part of symmetry reduction — fans out across workers
//!    ([`plan_par`]); the first-occurrence dedup scan then runs in
//!    enumeration order, so the plan equals the sequential one.
//! 2. **Examine** — plan items are grouped into [`shard::Shard`]s by
//!    *skeleton prefix* (programs whose first thread has the same shape)
//!    and distributed through a work-stealing [`shard::WorkQueue`]. Each
//!    shard runs on one [`transform_synth::Examiner`]; with the
//!    [`Backend::Relational`] backend that examiner owns one incremental
//!    SAT solver (`tsat` solving under assumptions) serving every program
//!    in the shard. Workers claim emitted ELT keys in a concurrent
//!    streaming dedup set ([`dedup::KeySet`]) as results stream in.
//! 3. **Merge** — per-item results are re-ordered by plan index and
//!    stitched into the suite by [`transform_synth::assemble_suite`];
//!    per-shard counters are kept and summed losslessly.
//!
//! Determinism holds because every per-item examination is a pure
//! function of the item: candidate executions are examined in a canonical
//! order rather than backend generation order, so not even shared-solver
//! learning can change which witness a program contributes.
//!
//! # Examples
//!
//! ```
//! use transform_core::spec::parse_mtm;
//! use transform_par::synthesize_suite_jobs;
//! use transform_synth::SynthOptions;
//!
//! let mtm = parse_mtm(
//!     "mtm x86t_elt {
//!        axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
//!      }",
//! ).expect("spec parses");
//! let mut opts = SynthOptions::new(4);
//! opts.enumeration.allow_fences = false;
//! opts.enumeration.allow_rmw = false;
//! let sequential = transform_synth::synthesize_suite(&mtm, "sc_per_loc", &opts);
//! let parallel = synthesize_suite_jobs(&mtm, "sc_per_loc", &opts, 4);
//! assert_eq!(sequential.elts.len(), parallel.elts.len());
//! ```

pub mod dedup;
pub mod shard;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use transform_core::axiom::Mtm;
use transform_synth::programs::programs_with_deadline;
use transform_synth::{
    assemble_suite, plan_from_keyed, plan_key, Examined, Examiner, ShardStats, Suite, SynthOptions,
    SynthPlan,
};

/// Shards per worker: enough granularity for stealing to balance uneven
/// shards without shrinking them into solver-reuse-defeating slivers.
const SHARDS_PER_WORKER: usize = 4;

/// The machine's available parallelism (the `--jobs` default).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parallel plan construction: enumeration stays sequential, canonical
/// keys are computed on `jobs` workers, and the dedup scan runs in
/// enumeration order — producing exactly the plan of
/// [`transform_synth::plan_suite`] when no deadline strikes. A deadline
/// that expires mid-keying makes the plan best-effort (workers race the
/// expiry flag, so which tail programs go unkeyed is timing-dependent),
/// exactly like a timed-out sequential run.
///
/// `jobs <= 1` delegates to [`transform_synth::plan_suite`].
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn plan_par(
    mtm: &Mtm,
    axiom: &str,
    opts: &SynthOptions,
    deadline: Option<Instant>,
    jobs: usize,
) -> SynthPlan {
    if jobs <= 1 {
        return transform_synth::plan_suite(mtm, axiom, opts, deadline);
    }
    let progs = programs_with_deadline(&opts.enumeration, deadline);
    if progs.is_empty() {
        let timed_out = deadline.is_some_and(|d| Instant::now() > d);
        return plan_from_keyed(mtm, axiom, Vec::new(), timed_out);
    }
    let expired = AtomicBool::new(deadline.is_some_and(|d| Instant::now() > d));
    // Keying honors the deadline like every other phase: once it passes,
    // remaining programs go unkeyed and drop out of the plan, exactly
    // like programs a timed-out sequential driver never reached.
    let key_within_deadline = |p: &transform_synth::programs::Program| {
        if expired.load(Ordering::Relaxed) {
            return None;
        }
        if deadline.is_some_and(|d| Instant::now() > d) {
            expired.store(true, Ordering::Relaxed);
            return None;
        }
        plan_key(p)
    };
    let chunk = progs.len().div_ceil(jobs.min(progs.len()));
    let chunks: Vec<&[transform_synth::programs::Program]> = progs.chunks(chunk).collect();
    let keyer = &key_within_deadline;
    let computed: Vec<Vec<Option<Vec<u64>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.iter().map(keyer).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("key worker does not panic"))
            .collect()
    });
    let keys: Vec<Option<Vec<u64>>> = computed.into_iter().flatten().collect();
    let keyed = progs.into_iter().zip(keys).collect();
    plan_from_keyed(mtm, axiom, keyed, expired.load(Ordering::Relaxed))
}

/// Synthesizes the per-axiom suite on `jobs` worker threads.
///
/// For any `jobs`, the resulting suite (programs, order, witnesses) is
/// byte-identical to [`transform_synth::synthesize_suite`], and the
/// `executions`/`forbidden`/`minimal` counters sum to the same totals;
/// only the per-shard breakdown and wall-clock differ. Runs that hit
/// `opts.timeout` are best-effort, exactly like the sequential engine.
///
/// # Panics
///
/// Panics when `axiom` is not part of `mtm`.
pub fn synthesize_suite_jobs(mtm: &Mtm, axiom: &str, opts: &SynthOptions, jobs: usize) -> Suite {
    let jobs = jobs.max(1);
    if jobs == 1 {
        return transform_synth::synthesize_suite(mtm, axiom, opts);
    }
    let start = Instant::now();
    let deadline = opts.timeout.map(|t| start + t);
    let plan = plan_par(mtm, axiom, opts, deadline, jobs);
    let shards = shard::make_shards(&plan.items, jobs * SHARDS_PER_WORKER);
    let queue = shard::WorkQueue::new(shards, jobs);
    let claimed = dedup::KeySet::new();
    let results: Mutex<Vec<(usize, Examined)>> = Mutex::new(Vec::with_capacity(plan.items.len()));
    let shard_stats: Mutex<Vec<ShardStats>> = Mutex::new(Vec::new());
    let timed_out = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let queue = &queue;
            let plan = &plan;
            let claimed = &claimed;
            let results = &results;
            let shard_stats = &shard_stats;
            let timed_out = &timed_out;
            scope.spawn(move || {
                let past_deadline = || deadline.is_some_and(|d| Instant::now() > d);
                while let Some(batch) = queue.next(worker) {
                    if past_deadline() {
                        timed_out.store(true, Ordering::Relaxed);
                        break;
                    }
                    // One examiner — and, for the relational backend, one
                    // incremental SAT solver — per shard.
                    let mut examiner = Examiner::new(mtm, axiom, opts.backend, plan.branch_co_pa);
                    let mut stats = ShardStats::new(batch.id);
                    let mut local = Vec::with_capacity(batch.items.len());
                    for &index in &batch.items {
                        if past_deadline() {
                            timed_out.store(true, Ordering::Relaxed);
                            break;
                        }
                        let item = &plan.items[index];
                        let mut examined = examiner.examine(&item.program);
                        stats.absorb(&examined);
                        if examined.witness.is_some() && !claimed.claim(&item.key) {
                            // The plan guarantees key uniqueness; dropping
                            // a duplicate witness (never its counters)
                            // keeps the merge correct even if a future
                            // enumerator breaks that invariant.
                            debug_assert!(false, "duplicate canonical key in plan");
                            examined.witness = None;
                        }
                        local.push((index, examined));
                    }
                    results
                        .lock()
                        .expect("results lock is never poisoned")
                        .extend(local);
                    shard_stats
                        .lock()
                        .expect("stats lock is never poisoned")
                        .push(stats);
                }
            });
        }
    });

    let mut shards = shard_stats
        .into_inner()
        .expect("stats lock is never poisoned");
    shards.sort_by_key(|s| s.shard);
    let results = results
        .into_inner()
        .expect("results lock is never poisoned");
    let hit_deadline = timed_out.load(Ordering::Relaxed);
    assemble_suite(axiom, &plan, results, shards, start.elapsed(), hit_deadline)
}

/// Synthesizes every per-axiom suite of `mtm` on `jobs` workers — the
/// parallel counterpart of [`transform_synth::synthesize_all`].
pub fn synthesize_all_jobs(mtm: &Mtm, opts: &SynthOptions, jobs: usize) -> BTreeMap<String, Suite> {
    synthesize_all_jobs_with_union(mtm, opts, jobs).0
}

/// Like [`synthesize_all_jobs`], additionally streaming every emitted
/// ELT's canonical key into one cross-suite [`dedup::KeySet`] as suites
/// complete. The second component is the number of distinct programs
/// across all per-axiom suites — the paper's headline unique-union count
/// ("140 unique ELTs"), available without a second pass over the suites.
pub fn synthesize_all_jobs_with_union(
    mtm: &Mtm,
    opts: &SynthOptions,
    jobs: usize,
) -> (BTreeMap<String, Suite>, usize) {
    let union = dedup::KeySet::new();
    let suites: BTreeMap<String, Suite> = mtm
        .axioms()
        .iter()
        .map(|ax| {
            let suite = synthesize_suite_jobs(mtm, &ax.name, opts, jobs);
            for elt in &suite.elts {
                union.claim(&transform_synth::canon::canonical_key(&elt.program));
            }
            (ax.name.clone(), suite)
        })
        .collect();
    let distinct = union.len();
    (suites, distinct)
}

/// Re-exported so callers of the parallel API can name the backend
/// without a direct `transform_synth` dependency.
pub use transform_synth::Backend as SynthBackend;

#[cfg(test)]
mod tests {
    use super::*;
    use transform_core::spec::parse_mtm;

    fn small_mtm() -> Mtm {
        parse_mtm(
            "mtm x86t_elt {
               axiom sc_per_loc: acyclic(rf | co | fr | po_loc)
               axiom invlpg:     acyclic(fr_va | ^po | remap)
             }",
        )
        .expect("spec parses")
    }

    fn opts(bound: usize) -> SynthOptions {
        let mut o = SynthOptions::new(bound);
        o.enumeration.allow_fences = false;
        o.enumeration.allow_rmw = false;
        o
    }

    #[test]
    fn plan_par_equals_sequential_plan() {
        let mtm = small_mtm();
        let o = opts(4);
        let sequential = transform_synth::plan_suite(&mtm, "invlpg", &o, None);
        for jobs in [1, 2, 8] {
            let parallel = plan_par(&mtm, "invlpg", &o, None, jobs);
            assert_eq!(sequential.programs, parallel.programs);
            assert_eq!(sequential.items.len(), parallel.items.len());
            for (a, b) in sequential.items.iter().zip(&parallel.items) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.key, b.key);
                assert_eq!(a.program, b.program);
            }
        }
    }

    #[test]
    fn parallel_suite_matches_sequential_engine() {
        let mtm = small_mtm();
        let o = opts(4);
        let sequential = transform_synth::synthesize_suite(&mtm, "sc_per_loc", &o);
        let parallel = synthesize_suite_jobs(&mtm, "sc_per_loc", &o, 4);
        assert_eq!(sequential.elts.len(), parallel.elts.len());
        for (a, b) in sequential.elts.iter().zip(&parallel.elts) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.witness, b.witness);
            assert_eq!(a.violated, b.violated);
        }
        assert_eq!(sequential.stats.executions, parallel.stats.executions);
        assert_eq!(sequential.stats.forbidden, parallel.stats.forbidden);
        assert_eq!(sequential.stats.minimal, parallel.stats.minimal);
        assert_eq!(sequential.stats.programs, parallel.stats.programs);
        // The parallel run actually sharded.
        assert!(parallel.stats.shards.len() > 1);
        let item_sum: usize = parallel.stats.shards.iter().map(|s| s.items).sum();
        assert_eq!(item_sum, sequential.stats.shards[0].items);
    }

    #[test]
    fn synthesize_all_jobs_covers_every_axiom() {
        let mtm = small_mtm();
        let (suites, distinct) = synthesize_all_jobs_with_union(&mtm, &opts(4), 2);
        assert_eq!(suites.len(), 2);
        assert!(suites.values().all(|s| !s.elts.is_empty()));
        // The streaming cross-suite union equals the batch computation.
        assert_eq!(
            distinct,
            transform_synth::unique_union(suites.values()).len()
        );
        let total: usize = suites.values().map(|s| s.elts.len()).sum();
        assert!(distinct <= total);
    }
}
